"""Thin shim so `pip install -e .` works without the `wheel` package.

All real metadata lives in pyproject.toml; this file only enables the
legacy editable-install path on minimal environments (setuptools
without wheel, no network for build isolation).
"""

from setuptools import setup

setup()
