"""Ablation: lock-before-worker vs ASP.NET's worker-before-lock ordering.

This reproduction adds one design element WSRF.NET 1.1 lacked — a
per-WS-Resource invocation lock (preventing lost updates in concurrent
load-modify-save).  Naively ordered (take the worker thread first, then
wait on the resource lock: exactly what a lock inside an ASP.NET handler
does), bursty notification traffic deadlocks the central machine's
worker pool: Notify handlers hold every thread while blocked on the
job-set lock whose holder needs a thread for its own nested calls.

The wrapper therefore acquires the resource lock *before* a worker
thread.  This ablation runs an identical job-set burst under both
orderings with a small (deadlock-prone) pool and reports how far each
gets within a fixed horizon.
"""

from __future__ import annotations

import pytest

from conftest import print_table

from repro.gridapp import FileRef, JobSpec, Testbed
from repro.osim.programs import make_compute_program
from repro.xmlx import NS, QName

UVA = NS.UVACG
HORIZON = 400.0
N_JOBS = 12


def _burst_run(lock_before_worker: bool):
    tb = Testbed(n_machines=3, seed=23, machine_speeds=[1.0, 1.0, 1.0])
    # A small pool makes the hazard reachable at this burst size (the
    # paper-era default of 25 threads merely pushes it out to larger
    # bursts).
    tb.central.iis._pool.free = 6
    tb.programs.register(make_compute_program("burst", 10.0, outputs={"o": b"1"}))
    if not lock_before_worker:
        # Revert to naive ordering: the wrapper stops managing the pool,
        # so IIS takes a worker first and the resource lock is awaited
        # while holding it.
        for wrapper in (tb.scheduler, tb.broker, tb.node_info):
            wrapper.manages_worker_pool = False
    client = tb.make_client()
    spec = client.new_job_set()
    exe = client.add_program_binary(tb.programs.get("burst"))
    for i in range(N_JOBS):
        spec.add(JobSpec(name=f"job{i:02d}", executable=FileRef(exe, "job.exe")))

    def scenario():
        jobset_epr, topic = yield from client.submit(spec)
        return jobset_epr, topic

    proc = tb.env.process(scenario())
    tb.env.run(until=proc)
    jobset_epr, topic = proc.value
    tb.env.run(until=HORIZON)
    rid = jobset_epr.get(QName(UVA, "ResourceID"))
    state = tb.scheduler.store.load("Scheduler", rid)
    phases = state[QName(UVA, "job_phase")]
    done = sum(1 for p in phases.values() if p == "done")
    stuck_workers = tb.central.iis.queued_requests
    return done, stuck_workers, state[QName(UVA, "status")]


def bench_ablation_lock_ordering(benchmark):
    def scenario():
        rows = []
        outcome = {}
        for label, ordered in (("lock-before-worker (ours)", True),
                               ("worker-before-lock (naive)", False)):
            done, queued, status = _burst_run(ordered)
            rows.append([label, f"{done}/{N_JOBS}", status, queued])
            outcome[ordered] = (done, status)
        return rows, outcome

    rows, outcome = benchmark.pedantic(scenario, rounds=1, iterations=1)
    print_table(
        f"ABLATION: {N_JOBS}-job burst, 6 worker threads, {HORIZON:g}s horizon",
        ["ordering", "jobs_done", "jobset_status", "requests_queued"],
        rows,
    )
    done_ours, status_ours = outcome[True]
    done_naive, status_naive = outcome[False]
    benchmark.extra_info["done_ours"] = done_ours
    benchmark.extra_info["done_naive"] = done_naive
    # Ours completes the burst; the naive ordering wedges partway.
    assert done_ours == N_JOBS and status_ours == "Completed"
    assert done_naive < N_JOBS
