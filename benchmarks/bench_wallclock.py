"""PROF: wall-clock profile of the Fig. 3 job set (docs/observability.md).

Unlike every other benchmark in this directory — which measure
*simulated* seconds — this one measures *host* seconds: where the
reproduction itself spends CPU while pushing the paper's workload
through the simulated grid. It emits ``BENCH_wallclock.json`` with
throughput meters (events/s, envelopes/s, store ops/s) and per-stage
self-time shares, which ``benchmarks/check_wallclock.py`` gates against
the committed baseline in CI.

Three invariants are asserted here rather than gated on timings:

- profiling must not perturb the simulation — the observability export
  of a profiled Fig. 3 run is byte-identical to an unprofiled one;
- the codec fast path (``PerfConfig.codec_only()``) must not perturb it
  either — traces stay byte-identical, timestamps included, and the
  profiler's call counters (envelopes parsed, store loads) are pinned
  to the unoptimized run's values;
- with profiling disabled the hot path must not even see wrapper
  frames (callers receive the impl generators directly).

The **gated** meters are measured with the codec fast path on — that is
the configuration the ratchet protects; the unoptimized meters are
reported alongside as ``meters_default``.
"""

from __future__ import annotations

import json
import pathlib

from conftest import print_table

from repro.gridapp import FileRef, JobSpec, Testbed
from repro.osim.programs import make_compute_program
from repro.perf import PerfConfig


def _make_testbed(n_machines, seed=11, observability=False, profile=False,
                  perf=None):
    tb = Testbed(n_machines=n_machines, seed=seed,
                 machine_speeds=[1.0] * n_machines,
                 observability=observability, profile=profile, perf=perf)
    tb.programs.register(
        make_compute_program("work", 30.0, outputs={"out": b"x"})
    )
    return tb


def _independent_spec(client, tb, n_jobs):
    spec = client.new_job_set()
    exe = client.add_program_binary(tb.programs.get("work"))
    for i in range(n_jobs):
        spec.add(JobSpec(name=f"job{i}", executable=FileRef(exe, "job.exe")))
    return spec


def _run_fig3(n_machines, n_jobs, observability=False, profile=False,
              perf=None):
    tb = _make_testbed(n_machines, observability=observability,
                       profile=profile, perf=perf)
    client = tb.make_client()
    outcome, _, _ = tb.run_job_set(client, _independent_spec(client, tb, n_jobs))
    assert outcome == "completed"
    tb.settle()
    return tb


def bench_wallclock_fig3_profile(benchmark):
    """Profile the Fig. 3 run (8 jobs, 4 machines) with and without the
    codec fast path, prove neither profiling nor the codec caches
    perturb simulated time, and emit ``BENCH_wallclock.json``."""

    def scenario():
        off = _run_fig3(4, 8, observability=True)
        on = _run_fig3(4, 8, observability=True, profile=True)
        codec = _run_fig3(4, 8, observability=True, profile=True,
                          perf=PerfConfig.codec_only())
        return off, on, codec

    off, on, codec = benchmark.pedantic(scenario, rounds=1, iterations=1)

    # Invariant 1: profiling never perturbs simulated-time behaviour.
    assert on.obs.export_json() == off.obs.export_json()
    assert on.env.now == off.env.now
    assert [(e.at, e.step, e.actor) for e in on.trace.events] == \
        [(e.at, e.step, e.actor) for e in off.trace.events]

    # Invariant 2: the codec fast path changes host CPU only — simulated
    # time, the full step trace (timestamps included) and the profiler's
    # call counters all match the unoptimized profiled run exactly.
    assert codec.env.now == on.env.now
    assert [(e.at, e.step, e.actor, e.detail) for e in codec.trace.events] == \
        [(e.at, e.step, e.actor, e.detail) for e in on.trace.events]

    snap_default = on.prof.snapshot()
    snap = codec.prof.snapshot()
    for s in (snap_default, snap):
        assert s["meta"]["open_regions"] == 0
        assert all(entry["path"][0] == "sim.dispatch" for entry in s["tree"])
    assert snap["counters"] == snap_default["counters"]
    # ... and the caches actually engaged.
    decode_hits = sum(
        getattr(w.store, "decode_cache").hits
        for w in [codec.scheduler, codec.broker, codec.node_info]
    )
    assert decode_hits > 0, "decode cache never hit on the Fig. 3 run"

    print_table(
        "PROF: throughput meters, Fig. 3 job set (host seconds)",
        ["meter", "codec_per_s", "default_per_s"],
        [[name, rate, snap_default["meters"][name]]
         for name, rate in sorted(snap["meters"].items())],
    )
    print_table(
        "PROF: per-stage self time, Fig. 3 job set (codec fast path on)",
        ["stage", "calls", "self_ms", "self_share"],
        [[s["stage"], s["calls"], s["self_s"] * 1000, s["self_share"]]
         for s in snap["stages"]],
    )

    # Scale sweep: meter stability as the grid grows (same job count).
    sweep = {}
    for n in (2, 4):
        tb = _run_fig3(n, 8, observability=True, profile=True,
                       perf=PerfConfig.codec_only())
        s = tb.prof.snapshot()
        sweep[n] = {
            "events": s["counters"]["events"],
            "events_per_s": s["meters"]["events_per_s"],
            "envelopes_per_s": s["meters"]["envelopes_per_s"],
            "busy_s": s["meta"]["busy_s"],
        }
    print_table(
        "PROF: sweep, 8 jobs across grid sizes",
        ["machines", "events", "events_per_s", "busy_s"],
        [[n, row["events"], row["events_per_s"], row["busy_s"]]
         for n, row in sorted(sweep.items())],
    )

    # Disabled-overhead differential: reported, never gated — host
    # timings are too noisy for a hard assert in a simulator this fast.
    import time

    def timed_plain_run():
        t0 = time.perf_counter()
        _run_fig3(4, 8)
        return time.perf_counter() - t0

    baseline_runs = sorted(timed_plain_run() for _ in range(3))
    plain_s = baseline_runs[len(baseline_runs) // 2]

    payload = {
        "figure": "wallclock",
        "wall_s": snap["meta"]["wall_s"],
        "busy_s": snap["meta"]["busy_s"],
        "counters": snap["counters"],
        # Gated meters: codec fast path ON (the ratcheted configuration).
        "meters": snap["meters"],
        # Reported meters: unoptimized profiled run, for before/after.
        "meters_default": snap_default["meters"],
        "busy_s_default": snap_default["meta"]["busy_s"],
        "stages": {
            s["stage"]: {"calls": s["calls"], "self_s": s["self_s"],
                         "self_share": s["self_share"]}
            for s in snap["stages"]
        },
        "stages_default": {
            s["stage"]: {"calls": s["calls"], "self_s": s["self_s"],
                         "self_share": s["self_share"]}
            for s in snap_default["stages"]
        },
        "sweep": {str(n): row for n, row in sweep.items()},
        "plain_run_s": plain_s,
    }
    out = pathlib.Path(__file__).resolve().parent.parent / "BENCH_wallclock.json"
    out.write_text(json.dumps(payload, sort_keys=True, indent=1),
                   encoding="utf-8")
    benchmark.extra_info.update(
        {"events_per_s": snap["meters"]["events_per_s"],
         "envelopes_per_s": snap["meters"]["envelopes_per_s"]}
    )


def bench_wallclock_disabled_is_unwrapped(benchmark):
    """With profiling off the dispatchers must hand back the impl
    generators themselves — no wrapper frame on the hot path."""
    from repro.net import Network
    from repro.obs import WallClockProfiler
    from repro.sim import Environment

    def scenario():
        env = Environment()
        net = Network(env)
        net.add_host("a")
        net.add_host("b")
        plain = net.request("a", "http://b/x", "payload")
        name_off = plain.gi_code.co_name
        plain.close()
        net.prof = WallClockProfiler()
        wrapped = net.request("a", "http://b/x", "payload")
        name_on = wrapped.gi_code.co_name
        wrapped.close()
        return name_off, name_on

    name_off, name_on = benchmark.pedantic(scenario, rounds=1, iterations=1)
    assert name_off == "_request_impl"
    assert name_on == "wrap"
