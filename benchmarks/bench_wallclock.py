"""PROF: wall-clock profile of the Fig. 3 job set (docs/observability.md).

Unlike every other benchmark in this directory — which measure
*simulated* seconds — this one measures *host* seconds: where the
reproduction itself spends CPU while pushing the paper's workload
through the simulated grid. It emits ``BENCH_wallclock.json`` with
throughput meters (events/s, envelopes/s, store ops/s) and per-stage
self-time shares, which ``benchmarks/check_wallclock.py`` gates against
the committed baseline in CI.

Two invariants are asserted here rather than gated on timings:

- profiling must not perturb the simulation — the observability export
  of a profiled Fig. 3 run is byte-identical to an unprofiled one;
- with profiling disabled the hot path must not even see wrapper
  frames (callers receive the impl generators directly).
"""

from __future__ import annotations

import json
import pathlib

from conftest import print_table

from repro.gridapp import FileRef, JobSpec, Testbed
from repro.osim.programs import make_compute_program


def _make_testbed(n_machines, seed=11, observability=False, profile=False):
    tb = Testbed(n_machines=n_machines, seed=seed,
                 machine_speeds=[1.0] * n_machines,
                 observability=observability, profile=profile)
    tb.programs.register(
        make_compute_program("work", 30.0, outputs={"out": b"x"})
    )
    return tb


def _independent_spec(client, tb, n_jobs):
    spec = client.new_job_set()
    exe = client.add_program_binary(tb.programs.get("work"))
    for i in range(n_jobs):
        spec.add(JobSpec(name=f"job{i}", executable=FileRef(exe, "job.exe")))
    return spec


def _run_fig3(n_machines, n_jobs, observability=False, profile=False):
    tb = _make_testbed(n_machines, observability=observability, profile=profile)
    client = tb.make_client()
    outcome, _, _ = tb.run_job_set(client, _independent_spec(client, tb, n_jobs))
    assert outcome == "completed"
    tb.settle()
    return tb


def bench_wallclock_fig3_profile(benchmark):
    """Profile the Fig. 3 run (8 jobs, 4 machines), prove the profiled
    run is byte-identical to the unprofiled one in simulated time, and
    emit ``BENCH_wallclock.json``."""

    def scenario():
        off = _run_fig3(4, 8, observability=True)
        on = _run_fig3(4, 8, observability=True, profile=True)
        return off, on

    off, on = benchmark.pedantic(scenario, rounds=1, iterations=1)

    # Invariant 1: profiling never perturbs simulated-time behaviour.
    assert on.obs.export_json() == off.obs.export_json()
    assert on.env.now == off.env.now
    assert [(e.at, e.step, e.actor) for e in on.trace.events] == \
        [(e.at, e.step, e.actor) for e in off.trace.events]

    snap = on.prof.snapshot()
    assert snap["meta"]["open_regions"] == 0
    assert all(entry["path"][0] == "sim.dispatch" for entry in snap["tree"])

    print_table(
        "PROF: throughput meters, Fig. 3 job set (host seconds)",
        ["meter", "per_s"],
        [[name, rate] for name, rate in sorted(snap["meters"].items())],
    )
    print_table(
        "PROF: per-stage self time, Fig. 3 job set",
        ["stage", "calls", "self_ms", "self_share"],
        [[s["stage"], s["calls"], s["self_s"] * 1000, s["self_share"]]
         for s in snap["stages"]],
    )

    # Scale sweep: meter stability as the grid grows (same job count).
    sweep = {}
    for n in (2, 4):
        tb = _run_fig3(n, 8, observability=True, profile=True)
        s = tb.prof.snapshot()
        sweep[n] = {
            "events": s["counters"]["events"],
            "events_per_s": s["meters"]["events_per_s"],
            "envelopes_per_s": s["meters"]["envelopes_per_s"],
            "busy_s": s["meta"]["busy_s"],
        }
    print_table(
        "PROF: sweep, 8 jobs across grid sizes",
        ["machines", "events", "events_per_s", "busy_s"],
        [[n, row["events"], row["events_per_s"], row["busy_s"]]
         for n, row in sorted(sweep.items())],
    )

    # Disabled-overhead differential: reported, never gated — host
    # timings are too noisy for a hard assert in a simulator this fast.
    import time

    def timed_plain_run():
        t0 = time.perf_counter()
        _run_fig3(4, 8)
        return time.perf_counter() - t0

    baseline_runs = sorted(timed_plain_run() for _ in range(3))
    plain_s = baseline_runs[len(baseline_runs) // 2]

    payload = {
        "figure": "wallclock",
        "wall_s": snap["meta"]["wall_s"],
        "busy_s": snap["meta"]["busy_s"],
        "counters": snap["counters"],
        "meters": snap["meters"],
        "stages": {
            s["stage"]: {"calls": s["calls"], "self_s": s["self_s"],
                         "self_share": s["self_share"]}
            for s in snap["stages"]
        },
        "sweep": {str(n): row for n, row in sweep.items()},
        "plain_run_s": plain_s,
    }
    out = pathlib.Path(__file__).resolve().parent.parent / "BENCH_wallclock.json"
    out.write_text(json.dumps(payload, sort_keys=True, indent=1),
                   encoding="utf-8")
    benchmark.extra_info.update(
        {"events_per_s": snap["meters"]["events_per_s"],
         "envelopes_per_s": snap["meters"]["envelopes_per_s"]}
    )


def bench_wallclock_disabled_is_unwrapped(benchmark):
    """With profiling off the dispatchers must hand back the impl
    generators themselves — no wrapper frame on the hot path."""
    from repro.net import Network
    from repro.obs import WallClockProfiler
    from repro.sim import Environment

    def scenario():
        env = Environment()
        net = Network(env)
        net.add_host("a")
        net.add_host("b")
        plain = net.request("a", "http://b/x", "payload")
        name_off = plain.gi_code.co_name
        plain.close()
        net.prof = WallClockProfiler()
        wrapped = net.request("a", "http://b/x", "payload")
        name_on = wrapped.gi_code.co_name
        wrapped.close()
        return name_off, name_on

    name_off, name_on = benchmark.pedantic(scenario, rounds=1, iterations=1)
    assert name_off == "_request_impl"
    assert name_on == "wrap"
