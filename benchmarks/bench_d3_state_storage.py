"""D-3: blob-in-relational vs XML database for WS-Resource state (§5).

"Saving a service's Resources as binary, unstructured data is effective
for loading and storing, but makes it very difficult to query them in
the database. ... we are currently experimenting with XML databases,
such as Yukon, because they provide the ability to store and run
queries over unstructured data."

This is real host-CPU work, so pytest-benchmark's timing IS the result:

- point load/save — the per-invocation path: the blob store wins or
  ties (serialize once vs rebuild a tree);
- cross-resource query — the blob store must reparse every blob; the
  XML store queries structure in place and wins by a growing factor.
"""

from __future__ import annotations

import pytest

from conftest import print_table

from repro.db import BlobResourceStore, XmlResourceStore
from repro.xmlx import NS, QName

UVA = NS.UVACG
N_RESOURCES = 300

_STATUS = QName(UVA, "Status")
_CPU = QName(UVA, "CpuTime")
_OWNER = QName(UVA, "Owner")
_LOG = QName(UVA, "Log")


def _state(i):
    return {
        _STATUS: "Running" if i % 4 else "Exited",
        _CPU: float(i) * 0.37,
        _OWNER: f"user{i % 7}",
        _LOG: "x" * 200,  # some bulk so (de)serialization is non-trivial
    }


def _filled(store_cls):
    store = store_cls()
    for i in range(N_RESOURCES):
        store.create("ES", f"job-{i:05d}", _state(i))
    return store


@pytest.mark.parametrize("store_cls", [BlobResourceStore, XmlResourceStore])
def bench_d3_point_load(benchmark, store_cls):
    store = _filled(store_cls)
    result = benchmark(store.load, "ES", "job-00150")
    assert result[_OWNER] == "user3"


@pytest.mark.parametrize("store_cls", [BlobResourceStore, XmlResourceStore])
def bench_d3_point_save(benchmark, store_cls):
    store = _filled(store_cls)
    state = _state(150)
    benchmark(store.save, "ES", "job-00150", state)


@pytest.mark.parametrize("store_cls", [BlobResourceStore, XmlResourceStore])
def bench_d3_scan_query(benchmark, store_cls):
    store = _filled(store_cls)
    hits = benchmark(store.scan_query, "ES", "Status[.='Exited']")
    assert len(hits) == N_RESOURCES // 4


def bench_d3_query_speedup_summary(benchmark):
    """The §5 shape in one table: the XML store's query advantage grows
    with population while point ops stay comparable."""
    import time

    def measure(fn, repeat=3):
        best = float("inf")
        for _ in range(repeat):
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
        return best

    def scenario():
        rows = []
        for population in (50, 200, 800):
            blob, xml = BlobResourceStore(), XmlResourceStore()
            for i in range(population):
                blob.create("ES", f"j{i:05d}", _state(i))
                xml.create("ES", f"j{i:05d}", _state(i))
            q = "Status[.='Exited']"
            t_blob = measure(lambda: blob.scan_query("ES", q))
            t_xml = measure(lambda: xml.scan_query("ES", q))
            assert [r for r, _ in blob.scan_query("ES", q)] == [
                r for r, _ in xml.scan_query("ES", q)
            ]
            rows.append([population, t_blob * 1000, t_xml * 1000, t_blob / t_xml])
        return rows

    rows = benchmark.pedantic(scenario, rounds=1, iterations=1)
    print_table(
        "D-3: cross-resource query, blob-reparse vs XML-in-place",
        ["resources", "blob_ms", "xml_ms", "xml_speedup"],
        rows,
    )
    benchmark.extra_info["speedup_at_800"] = rows[-1][3]
    # The XML store must win queries, and the advantage must be
    # sustained as data grows (margins are generous: these are host-CPU
    # timings and the suite may share the machine).
    assert all(row[3] > 1.5 for row in rows)
    assert rows[-1][3] >= rows[0][3] * 0.6
