"""D-4: brokered notification vs producer-managed subscriber lists.

§4.3: "While the web service generating the event could maintain its own
list of parties interested in receiving that event, it is more
convenient to use the Notification Broker service as a multicast
mechanism."

Sweep subscriber count; compare:

- **direct** — the producer sends one Notify per subscriber itself;
- **brokered** — the producer sends ONE Notify to the broker, which
  fans out.

Measured: the producer's wall-clock busy time per event (its NIC and
CPU are tied up for the whole fan-out in direct mode), total messages,
and last-subscriber delivery latency.  Expected shape: producer cost is
O(N) direct vs O(1) brokered; total messages N vs N+1; delivery latency
pays one extra hop through the broker.
"""

from __future__ import annotations

import pytest

from conftest import print_table, run_coroutine

from repro.net import Network
from repro.osim import Machine
from repro.sim import Environment
from repro.wsn import NotificationListener, attach_notification_producer
from repro.wsn.base_notification import build_notify_body, build_subscribe_body
from repro.wsn.broker import NotificationBrokerService
from repro.wsn.topics import FULL_DIALECT
from repro.wsrf import WsrfClient, deploy
from repro.xmlx import NS, Element, QName

UVA = NS.UVACG


def _fanout_run(n_subscribers, brokered):
    env = Environment()
    net = Network(env)
    producer_machine = Machine(net, "producer")
    broker_machine = Machine(net, "broker-host")
    broker = deploy(NotificationBrokerService, broker_machine, "Broker")
    attach_notification_producer(broker)
    net.add_host("setup-client")
    setup = WsrfClient(net, "setup-client")
    producer_client = WsrfClient(net, "producer")

    listeners = []
    for i in range(n_subscribers):
        net.add_host(f"sub{i}")
        listener = NotificationListener(net, f"sub{i}")
        listeners.append(listener)
        if brokered:
            run_coroutine(
                env,
                setup.invoke(
                    broker.service_epr(),
                    build_subscribe_body(listener.epr, "evt/**", FULL_DIALECT),
                ),
            )

    payload = Element(QName(UVA, "Event"), text="observation-42")
    body = build_notify_body("evt/tick", payload)
    net.stats.reset()

    def produce():
        start = env.now
        if brokered:
            yield from producer_client.invoke(
                broker.service_epr(), body, category="notify", one_way=True
            )
        else:
            for listener in listeners:
                yield from producer_client.invoke(
                    listener.epr, body, category="notify", one_way=True
                )
        return env.now - start

    producer_busy = run_coroutine(env, produce())
    env.run()  # drain deliveries
    last_delivery = max(
        (note.at for listener in listeners for note in listener.received),
        default=float("nan"),
    )
    delivered = sum(len(listener.received) for listener in listeners)
    assert delivered == n_subscribers, "every subscriber must get the event"
    return producer_busy, net.stats.by_category["notify"], last_delivery


def bench_d4_fanout_scaling(benchmark):
    def scenario():
        rows = []
        results = {}
        for n in (1, 4, 16, 64):
            direct_busy, direct_msgs, direct_last = _fanout_run(n, brokered=False)
            broker_busy, broker_msgs, broker_last = _fanout_run(n, brokered=True)
            rows.append([n, "direct", direct_busy * 1000, direct_msgs, direct_last * 1000])
            rows.append([n, "brokered", broker_busy * 1000, broker_msgs, broker_last * 1000])
            results[n] = (direct_busy, broker_busy, direct_msgs, broker_msgs)
        return rows, results

    rows, results = benchmark.pedantic(scenario, rounds=1, iterations=1)
    print_table(
        "D-4: one event to N subscribers",
        ["subscribers", "mode", "producer_busy_ms", "notify_msgs", "last_delivery_ms"],
        rows,
    )
    # Producer cost: O(N) direct, O(1) brokered.
    d1, b1 = results[1][0], results[1][1]
    d64, b64 = results[64][0], results[64][1]
    assert d64 / d1 > 16, "direct producer cost must grow with N"
    assert b64 == pytest.approx(b1, rel=0.2), "brokered producer cost is flat"
    # Messages: N vs N+1 (the producer's single Notify to the broker).
    assert results[64][2] == 64
    assert results[64][3] == 65
    benchmark.extra_info["direct_busy_64_ms"] = d64 * 1000
    benchmark.extra_info["brokered_busy_64_ms"] = b64 * 1000
