"""D-7: the Processor Utilization service's change threshold (§4.4).

"This service asynchronously notifies the NIS whenever the utilization
of the machine's processors changes by more than a configurable
amount."  The knob trades reporting traffic against catalog accuracy.
We sweep the threshold under a bursty load pattern and measure:

- report messages sent per machine;
- the NIS catalog's mean absolute utilization error (sampled against
  ground truth).

Expected shape: traffic falls monotonically as the threshold rises;
error grows; threshold 0 (always-report) is the traffic-heavy accuracy
ceiling — the paper's design point sits on the knee.
"""

from __future__ import annotations

import pytest

from conftest import print_table, run_coroutine

from repro.gridapp import Testbed
from repro.osim.programs import make_compute_program
from repro.xmlx import NS

SG = NS.WSRF_SG
HORIZON = 120.0


def _bursty_run(threshold, always=False, seed=13):
    tb = Testbed(
        n_machines=3,
        machine_speeds=[1.0, 1.0, 1.0],
        seed=seed,
        utilization_threshold=threshold,
        utilization_period=1.0,
        cores_per_machine=4,
    )
    for util in tb.utilization_services.values():
        util.always_report = always
    tb.programs.register(make_compute_program("burst", 6.0))
    env = tb.env

    # Bursty background load launched directly via ProcSpawn (we are
    # benchmarking the utilization plumbing, not the scheduler).  With
    # four cores, overlapping processes move utilization in 0.25 steps,
    # so different thresholds genuinely filter different deltas.
    def loadgen(machine, phase):
        machine.fs.mkdir("c:/load")
        machine.fs.write_file("c:/load/burst.exe", b"#!uva-program:burst\n")
        yield env.timeout(phase)
        durations = [5.0, 11.0, 3.0, 17.0, 7.0]
        i = 0
        while env.now < HORIZON - 10:
            yield from machine.procspawn.spawn(
                "c:/load/burst.exe", [], "griduser", "gridpw-2004", "c:/load"
            )
            # Processes overlap (we do not wait for completion), so the
            # number running drifts between 0 and 4.
            yield env.timeout(durations[i % len(durations)])
            i += 1

    for i, machine in enumerate(tb.machines):
        env.process(loadgen(machine, phase=1.5 * i))

    # Ground-truth sampling of catalog error.
    errors = []

    def auditor(env):
        client = tb.make_client(host_name="auditor")
        while env.now < HORIZON:
            yield env.timeout(2.0)
            catalog = yield from client.soap.call(
                tb.node_info.service_epr(), SG, "GetProcessors", category="audit"
            )
            truth = {m.name: m.utilization() for m in tb.machines}
            for entry in catalog:
                errors.append(abs(entry["utilization"] - truth[entry["name"]]))

    env.process(auditor(env))
    env.run(until=HORIZON)
    reports = sum(u.reports_sent for u in tb.utilization_services.values())
    mean_error = sum(errors) / len(errors) if errors else float("nan")
    return reports, mean_error


def bench_d7_threshold_sweep(benchmark):
    def scenario():
        rows = []
        series = []
        for label, threshold, always in (
            ("always (baseline)", 0.0, True),
            ("0.05", 0.05, False),
            ("0.30", 0.30, False),
            ("0.75", 0.75, False),
        ):
            reports, error = _bursty_run(threshold, always)
            rows.append([label, reports, error])
            series.append((reports, error))
        return rows, series

    rows, series = benchmark.pedantic(scenario, rounds=1, iterations=1)
    print_table(
        f"D-7: utilization threshold sweep ({HORIZON:g}s bursty load, 3 machines)",
        ["threshold", "reports_sent", "mean_catalog_error"],
        rows,
    )
    reports = [r for r, _ in series]
    errors = [e for _, e in series]
    benchmark.extra_info["reports_always"] = reports[0]
    benchmark.extra_info["reports_075"] = reports[-1]
    # Traffic falls monotonically with the threshold...
    assert reports[0] > reports[1] > reports[2] >= reports[3]
    # ...and the coarsest threshold is markedly less accurate than the
    # always-report ceiling.
    assert errors[-1] > errors[0]
    # The paper's design point (a small threshold) keeps most of the
    # accuracy at a fraction of the traffic.
    assert reports[1] < reports[0] / 2
    assert errors[1] < errors[-1]
