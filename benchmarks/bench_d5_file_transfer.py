"""D-5: file staging — HTTP vs WSE soap.tcp, blocking vs one-way (§4.1).

"Files can be transferred via HTTP, but this is not the preferred way
to move large files.  Instead, the FSS uses the Web Service Enhancements
(WSE) support for SOAP over TCP" and "it is ... inappropriate to have
blocking method calls when uploading to a remote machine."

Measured:

- transfer completion time across file sizes for the two transports
  (soap.tcp amortizes its session handshake and pays less framing, so
  its advantage is largest for many-file workloads and holds everywhere);
- the requester's *blocked time* for a staging request issued as a
  blocking RPC vs as the paper's one-way message.
"""

from __future__ import annotations

import pytest

from conftest import print_table, run_coroutine

from repro.gridapp.filesystem_service import FileSystemService, fetch_remote_file
from repro.net import Network
from repro.osim import FileContent, Machine
from repro.sim import Environment
from repro.wsrf import WsrfClient, deploy
from repro.xmlx import NS, QName

UVA = NS.UVACG

SIZES = [10_000, 100_000, 1_000_000, 10_000_000, 100_000_000]


def _two_fss():
    env = Environment()
    net = Network(env)
    src = Machine(net, "source")
    dst = Machine(net, "sink")
    for machine in (src, dst):
        machine.fs.mkdir("c:/uvacg")
        machine.users.add_user("u", "p")
    fss_src = deploy(FileSystemService, src, "FileSystem")
    fss_dst = deploy(FileSystemService, dst, "FileSystem")
    net.add_host("driver")
    client = WsrfClient(net, "driver")
    return env, net, src, dst, fss_src, fss_dst, client


class _TcpFileApp:
    """A soap.tcp Read endpoint serving the same files (WSE listener)."""

    def __init__(self, machine, directory):
        self.machine = machine
        self.directory = directory

    def handle(self, payload, ctx):
        from repro.gridapp.filesystem_service import content_to_wire
        from repro.soap import SoapEnvelope, to_typed_element, from_typed_element
        from repro.wsa import AddressingHeaders, EndpointReference
        from repro.xmlx import Element

        envelope = SoapEnvelope.deserialize(payload)
        filename = from_typed_element(envelope.body.require(QName(UVA, "filename")))
        content = self.machine.fs.read_file(f"{self.directory}/{filename}")
        response = Element(QName(UVA, "ReadResponse"))
        response.append(
            to_typed_element(QName(UVA, "ReadResult"), content_to_wire(content))
        )
        headers = AddressingHeaders(
            to_epr=EndpointReference("http://driver/anon"),
            action=envelope.action + "Response",
            relates_to=envelope.addressing.message_id,
        )
        yield self.machine.env.timeout(0)
        return SoapEnvelope(headers, response).serialize()


def bench_d5_transport_crossover(benchmark):
    def scenario():
        rows = []
        results = {}
        for size in SIZES:
            env, net, src, dst, fss_src, fss_dst, client = _two_fss()
            dir_epr = run_coroutine(
                env, client.call(fss_src.service_epr(), UVA, "CreateDirectory")
            )
            path = run_coroutine(
                env, client.get_resource_property(dir_epr, QName(UVA, "Path"))
            )
            src.fs.write_file(f"{path}/bulk.dat", FileContent.synthetic(size))
            src.host.bind(8081, _TcpFileApp(src, path))
            from repro.wsa import EndpointReference

            tcp_epr = EndpointReference("soap.tcp://source:8081/files")
            # Warm the soap.tcp session once (the paper's persistent
            # connection), then measure steady-state transfers.
            run_coroutine(
                env,
                fetch_remote_file(
                    WsrfClient(net, "sink"), net, "sink", tcp_epr, "bulk.dat", "warm"
                ),
            )
            times = {}
            for label, epr in (("http", dir_epr), ("soap.tcp", tcp_epr)):
                start = env.now
                content = run_coroutine(
                    env,
                    fetch_remote_file(
                        WsrfClient(net, "sink"), net, "sink", epr, "bulk.dat", label
                    ),
                )
                assert content.size == size
                times[label] = env.now - start
            rows.append(
                [size, times["http"] * 1000, times["soap.tcp"] * 1000,
                 times["http"] / times["soap.tcp"]]
            )
            results[size] = times
        return rows, results

    rows, results = benchmark.pedantic(scenario, rounds=1, iterations=1)
    print_table(
        "D-5: single-file transfer time by transport",
        ["bytes", "http_ms", "soaptcp_ms", "http/soaptcp"],
        rows,
    )
    # soap.tcp wins at every size (no per-request handshake, less
    # framing); for huge files both converge to wire bandwidth.
    for size in SIZES:
        assert results[size]["soap.tcp"] <= results[size]["http"]
    ratio_small = results[SIZES[0]]["http"] / results[SIZES[0]]["soap.tcp"]
    ratio_large = results[SIZES[-1]]["http"] / results[SIZES[-1]]["soap.tcp"]
    assert ratio_small > ratio_large  # advantage is proportionally larger
    assert ratio_large == pytest.approx(1.0, rel=0.05)  # bandwidth-bound
    benchmark.extra_info["ratio_small"] = ratio_small
    benchmark.extra_info["ratio_large"] = ratio_large


def bench_d5_blocking_vs_oneway_staging(benchmark):
    """The ES asks the FSS to stage N files: how long is the ES blocked?"""
    N_FILES = 8
    SIZE = 5_000_000

    def scenario():
        out = {}
        for mode in ("blocking", "one-way"):
            env, net, src, dst, fss_src, fss_dst, client = _two_fss()
            src_dir = run_coroutine(
                env, client.call(fss_src.service_epr(), UVA, "CreateDirectory")
            )
            src_path = run_coroutine(
                env, client.get_resource_property(src_dir, QName(UVA, "Path"))
            )
            for i in range(N_FILES):
                src.fs.write_file(f"{src_path}/f{i}", FileContent.synthetic(SIZE))
            dst_dir = run_coroutine(
                env, client.call(fss_dst.service_epr(), UVA, "CreateDirectory")
            )
            files = [
                {"source_epr": src_dir, "filename": f"f{i}", "jobname": f"f{i}"}
                for i in range(N_FILES)
            ]
            requester = WsrfClient(net, "driver")
            from repro.wsa import EndpointReference

            class _Sink:  # absorbs the UploadComplete one-way message
                def handle(self, payload, ctx):
                    yield env.timeout(0)

            net.host("driver").bind(7999, _Sink())
            notify = EndpointReference("http://driver:7999/done")
            start = env.now

            def issue():
                yield from requester.call(
                    dst_dir, UVA, "Upload",
                    {"files": files, "notify_epr": notify, "token": "t"},
                    category="upload",
                    one_way=(mode == "one-way"),
                )
                return env.now - start

            blocked = run_coroutine(env, issue())
            try:
                env.run()  # drain the actual staging
            except Exception:
                pass  # the completion notify has no listener; that's fine
            out[mode] = blocked
        return out

    blocked = benchmark.pedantic(scenario, rounds=1, iterations=1)
    print_table(
        f"D-5: requester blocked time for staging {N_FILES}x{SIZE//1_000_000}MB",
        ["mode", "blocked_s"],
        [[mode, v] for mode, v in blocked.items()],
    )
    benchmark.extra_info.update({k: v for k, v in blocked.items()})
    # One-way returns in milliseconds; blocking waits for the whole staging.
    assert blocked["one-way"] < 0.1
    assert blocked["blocking"] > blocked["one-way"] * 50
