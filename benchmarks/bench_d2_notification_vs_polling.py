"""D-2: WS-Notification vs polling for job status tracking.

§5: "notification may help in keeping the client's and service's view
of the resources represented by those EPRs consistent".  A client wants
to know when its job exits.  Two strategies:

- **poll** — GetResourceProperty(Status) every *p* seconds (the only
  option pre-WSN);
- **notify** — subscribe once at the broker; the ES pushes JobExited.

Measured: detection staleness (time from actual exit to client
awareness) and the number of status messages on the wire.  Expected
shape: polling trades staleness against traffic along its period sweep;
notification beats the entire polling frontier (sub-polling staleness at
O(1) messages).
"""

from __future__ import annotations

import pytest

from conftest import print_table, run_coroutine

from repro.gridapp import FileRef, JobSpec, Testbed
from repro.gridapp.execution_service import parse_job_event
from repro.osim.programs import make_compute_program
from repro.xmlx import NS, QName

UVA = NS.UVACG
JOB_SECONDS = 60.0


def _setup():
    tb = Testbed(n_machines=2, seed=3, start_utilization_services=False)
    tb.programs.register(
        make_compute_program("tracked", JOB_SECONDS, outputs={"out": b"1"})
    )
    client = tb.make_client()
    spec = client.new_job_set()
    exe = client.add_program_binary(tb.programs.get("tracked"))
    spec.add(JobSpec(name="job1", executable=FileRef(exe, "job.exe")))
    return tb, client, spec


def _run_with_polling(period):
    """Client polls the job's Status RP; returns (staleness, messages)."""
    tb, client, spec = _setup()
    env = tb.env

    def scenario():
        jobset_epr, topic = yield from client.submit(spec)
        # Wait for the job EPR announcement.
        while not any(
            parse_job_event(n.payload).get("kind") == "JobStarted"
            for n in client.listener.received
        ):
            yield env.timeout(0.5)
        job_epr = next(
            parse_job_event(n.payload)["job_epr"]
            for n in client.listener.received
            if parse_job_event(n.payload).get("kind") == "JobStarted"
        )
        tb.network.stats.reset()
        polls = 0
        while True:
            status = yield from client.soap.get_resource_property(
                job_epr, QName(UVA, "Status"), category="status-poll"
            )
            polls += 1
            if status in ("Exited", "Killed"):
                detected_at = env.now
                break
            yield env.timeout(period)
        # Ground truth: the process's actual exit instant.
        machine = next(m for m in tb.machines if m.procspawn.processes)
        exited_at = machine.procspawn.processes[0].exited_at
        return detected_at - exited_at, polls

    return tb.run(scenario())


def _run_with_notification():
    tb, client, spec = _setup()
    env = tb.env

    def scenario():
        tb.network.stats.reset()
        jobset_epr, topic = yield from client.submit(spec)
        outcome = yield from client.wait_for_completion(topic)
        detected_at = next(
            n.at
            for n in client.listener.received
            if parse_job_event(n.payload).get("kind") == "JobExited"
        )
        machine = next(m for m in tb.machines if m.procspawn.processes)
        exited_at = machine.procspawn.processes[0].exited_at
        status_messages = tb.network.stats.by_category.get("notify", 0)
        return detected_at - exited_at, status_messages

    return tb.run(scenario())


def bench_d2_staleness_vs_traffic(benchmark):
    def scenario():
        rows = []
        for period in (1.0, 5.0, 15.0, 60.0):
            staleness, polls = _run_with_polling(period)
            rows.append(
                [f"poll @ {period:g}s", staleness, polls * 2]  # req+resp
            )
        note_staleness, note_msgs = _run_with_notification()
        rows.append(["WS-Notification", note_staleness, note_msgs])
        return rows

    rows = benchmark.pedantic(scenario, rounds=1, iterations=1)
    print_table(
        "D-2: job-exit detection staleness vs status traffic "
        f"({JOB_SECONDS:g}s job)",
        ["strategy", "staleness_s", "status_messages"],
        rows,
    )
    by_name = {row[0]: row for row in rows}
    note = by_name["WS-Notification"]
    benchmark.extra_info["notify_staleness_s"] = note[1]
    benchmark.extra_info["notify_messages"] = note[2]
    # Polling: staleness grows with period, traffic shrinks.
    assert by_name["poll @ 1s"][1] < by_name["poll @ 60s"][1]
    assert by_name["poll @ 1s"][2] > by_name["poll @ 60s"][2]
    # Notification dominates the polling frontier: staleness far below
    # even 1 s polling, with traffic that is O(lifecycle events) — a
    # constant (~12 messages: created/started/exited/completed fanned to
    # scheduler + client) regardless of how long the job runs, where
    # polling traffic grows with duration/period.
    assert note[1] < by_name["poll @ 1s"][1] / 10
    assert note[2] < by_name["poll @ 1s"][2]
    assert note[2] <= 16
    # And the client still learned the truth promptly (sub-100 ms).
    assert note[1] < 0.1
