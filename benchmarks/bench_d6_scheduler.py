"""D-6: the Scheduler's placement algorithm vs baselines (§4.5).

"A straightforward algorithm chooses the fastest, most available
machine."  We sweep that policy against random and round-robin
placement on a heterogeneous grid (speeds 1x..2.5x) for two workload
shapes:

- a bag of independent equal jobs (placement quality shows up as load
  balance across heterogeneity);
- a sequence of job sets arriving over time (availability-awareness
  shows up as avoiding busy machines).

Expected shape: "best" (fastest-most-available) beats random and
round-robin on makespan; the advantage grows with heterogeneity.
"""

from __future__ import annotations

import pytest

from conftest import print_table

from repro.gridapp import FileRef, JobSpec, Testbed
from repro.osim.programs import make_compute_program

SPEEDS = [1.0, 1.3, 1.8, 2.5]


def _run_bag(policy, n_jobs=12, work=40.0, speeds=SPEEDS, seed=5):
    tb = Testbed(
        n_machines=len(speeds),
        machine_speeds=speeds,
        seed=seed,
        scheduling_policy=policy,
        utilization_period=0.5,
    )
    tb.programs.register(make_compute_program("unit", work, outputs={"o": b"1"}))
    client = tb.make_client()
    spec = client.new_job_set()
    exe = client.add_program_binary(tb.programs.get("unit"))
    for i in range(n_jobs):
        spec.add(JobSpec(name=f"job{i:02d}", executable=FileRef(exe, "job.exe")))
    start = tb.env.now
    outcome, _, _ = tb.run_job_set(client, spec)
    assert outcome == "completed"
    return tb.env.now - start


def bench_d6_policy_makespan(benchmark):
    def scenario():
        rows = []
        makespans = {}
        for policy in ("best", "roundrobin", "random"):
            makespan = _run_bag(policy)
            makespans[policy] = makespan
            rows.append([policy, makespan])
        return rows, makespans

    rows, makespans = benchmark.pedantic(scenario, rounds=1, iterations=1)
    print_table(
        "D-6: 12 equal jobs on a 1.0x-2.5x heterogeneous grid (makespan, s)",
        ["policy", "makespan_s"],
        rows,
    )
    benchmark.extra_info.update(makespans)
    assert makespans["best"] <= makespans["roundrobin"]
    assert makespans["best"] <= makespans["random"]


def bench_d6_heterogeneity_sweep(benchmark):
    """The 'best' policy's edge over round-robin grows with speed spread."""

    def scenario():
        rows = []
        edges = []
        for spread, speeds in (
            ("none (all 1.0x)", [1.0, 1.0, 1.0, 1.0]),
            ("mild (1.0-1.5x)", [1.0, 1.16, 1.33, 1.5]),
            ("strong (1.0-3.0x)", [1.0, 1.66, 2.33, 3.0]),
        ):
            best = _run_bag("best", speeds=speeds)
            rr = _run_bag("roundrobin", speeds=speeds)
            rows.append([spread, best, rr, rr / best])
            edges.append(rr / best)
        return rows, edges

    rows, edges = benchmark.pedantic(scenario, rounds=1, iterations=1)
    print_table(
        "D-6: policy edge vs machine heterogeneity",
        ["heterogeneity", "best_s", "roundrobin_s", "rr/best"],
        rows,
    )
    benchmark.extra_info["edge_none"] = edges[0]
    benchmark.extra_info["edge_strong"] = edges[-1]
    # With identical machines the policies tie; with strong heterogeneity
    # fastest-most-available clearly wins.
    assert edges[0] == pytest.approx(1.0, rel=0.10)
    assert edges[-1] > 1.15
    assert edges[-1] > edges[0]


def bench_d6_dependency_chain_overhead(benchmark):
    """Chain scheduling cost: per-hop overhead (staging + notification +
    dispatch) on top of pure compute, as chain length grows."""

    def scenario():
        rows = []
        per_hop = []
        for length in (2, 4, 8):
            tb = Testbed(n_machines=3, seed=9, machine_speeds=[1.0, 1.0, 1.0])
            tb.programs.register(
                make_compute_program("hop", 5.0, outputs={"out": b"x"})
            )
            client = tb.make_client()
            spec = client.new_job_set()
            exe = client.add_program_binary(tb.programs.get("hop"))
            for i in range(length):
                inputs = [] if i == 0 else [FileRef(f"job{i-1}://out", "prev")]
                spec.add(
                    JobSpec(name=f"job{i}", executable=FileRef(exe, "job.exe"),
                            inputs=inputs, outputs=["out"])
                )
            start = tb.env.now
            outcome, _, _ = tb.run_job_set(client, spec)
            assert outcome == "completed"
            makespan = tb.env.now - start
            compute = 5.0 * length
            overhead = (makespan - compute) / length
            rows.append([length, makespan, compute, overhead * 1000])
            per_hop.append(overhead)
        return rows, per_hop

    rows, per_hop = benchmark.pedantic(scenario, rounds=1, iterations=1)
    print_table(
        "D-6: chain orchestration overhead per hop",
        ["chain_length", "makespan_s", "pure_compute_s", "overhead_ms_per_hop"],
        rows,
    )
    benchmark.extra_info["overhead_ms_per_hop"] = per_hop[-1] * 1000
    # Orchestration overhead per hop is roughly constant (the pipeline
    # scales), and far smaller than the jobs themselves.
    assert per_hop[-1] == pytest.approx(per_hop[0], rel=0.5)
    assert per_hop[-1] < 1.0
