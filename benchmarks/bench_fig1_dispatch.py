"""FIG-1: the WSRF.NET wrapper dispatch pipeline (paper Fig. 1).

Measures what the WSRF layer costs per invocation by comparing three
deployments on identical simulated hardware:

- ``plain``     — a bare ASP.NET web method (IIS dispatch only);
- ``wsrf-ro``   — a WSRF-wrapped method that reads resource state
                  (EPR resolution + DB load);
- ``wsrf-rw``   — a WSRF-wrapped method that mutates resource state
                  (adds the DB save).

The paper's Fig. 1 narrative is exactly this pipeline: IIS dispatch →
wrapper → EPR resolution → state load → method → state save →
serialize.  Expected shape: a constant per-call overhead dominated by
the two database accesses, amortized and independent of resource count.
"""

from __future__ import annotations

import pytest

from conftest import print_table, run_coroutine

from repro.net import Network
from repro.osim import Machine
from repro.sim import Environment
from repro.wsrf import (
    GetResourcePropertyPortType,
    Resource,
    ResourceProperty,
    ServiceSkeleton,
    WebMethod,
    WSRFPortType,
    WsrfClient,
    deploy,
)
from repro.xmlx import NS

UVA = NS.UVACG
CALLS = 50


@WSRFPortType(GetResourcePropertyPortType)
class StatefulService(ServiceSkeleton):
    value = Resource(default=0)

    @WebMethod(requires_resource=False)
    def Create(self):
        return self.epr_for(self.create_resource(value=0))

    @WebMethod
    def ReadValue(self) -> int:
        return self.value

    @WebMethod
    def Increment(self) -> int:
        self.value = self.value + 1
        return self.value


class PlainApp:
    """A bare web method: what ASP.NET alone would cost."""

    def __init__(self, env):
        self.env = env

    def handle_soap(self, payload, ctx):
        yield self.env.timeout(0)
        return payload  # echo; the wire cost is symmetric with WSRF calls


def _fabric():
    env = Environment()
    net = Network(env)
    machine = Machine(net, "server")
    net.add_host("client")
    client = WsrfClient(net, "client")
    return env, net, machine, client


def _mean_simulated_latency(env, one_call, calls=CALLS) -> float:
    def driver():
        start = env.now
        for _ in range(calls):
            yield from one_call()
        return (env.now - start) / calls

    return run_coroutine(env, driver())


def _scenario(perf=None):
    """Returns (rows, latencies dict in simulated ms)."""
    env, net, machine, client = _fabric()
    wrapper = deploy(StatefulService, machine, "Stateful", perf=perf)
    machine.iis.register_app("Plain", PlainApp(env))
    epr = run_coroutine(env, client.call(wrapper.service_epr(), UVA, "Create"))

    def plain_call():
        yield from net.request("client", "http://server:80/Plain", "x" * 400)

    def ro_call():
        yield from client.call(epr, UVA, "ReadValue")

    def rw_call():
        yield from client.call(epr, UVA, "Increment")

    plain = _mean_simulated_latency(env, plain_call)
    ro = _mean_simulated_latency(env, ro_call)
    rw = _mean_simulated_latency(env, rw_call)
    return env, machine, {"plain": plain, "wsrf-ro": ro, "wsrf-rw": rw}


def bench_fig1_wrapper_overhead(benchmark):
    env, machine, lat = benchmark.pedantic(_scenario, rounds=1, iterations=1)
    db = machine.params.db_access_s
    rows = [
        ["plain web method", lat["plain"] * 1000, 0.0],
        ["WSRF read-only", lat["wsrf-ro"] * 1000, (lat["wsrf-ro"] - lat["plain"]) * 1000],
        ["WSRF read-write", lat["wsrf-rw"] * 1000, (lat["wsrf-rw"] - lat["plain"]) * 1000],
    ]
    print_table(
        "FIG-1: per-invocation dispatch cost (simulated ms)",
        ["deployment", "latency_ms", "wsrf_overhead_ms"],
        rows,
    )
    benchmark.extra_info.update({f"{k}_ms": v * 1000 for k, v in lat.items()})
    # Shape: WSRF adds a strictly positive, bounded overhead; the
    # read-write path pays more than read-only (the extra DB save).
    assert lat["plain"] < lat["wsrf-ro"] < lat["wsrf-rw"]
    # Overhead is on the order of the DB accesses, not a multiple of the
    # whole call (the §5 claim that standard plumbing is affordable).
    assert lat["wsrf-rw"] - lat["wsrf-ro"] == pytest.approx(db, rel=0.5)
    assert lat["wsrf-rw"] < 3 * lat["plain"]


def bench_fig1_perf_layer(benchmark):
    """The hot-path performance layer (docs/performance.md): with
    ``PerfConfig()`` the read path sheds its DB load (state cache) while
    the write path keeps the full pipeline; with the layer off the
    numbers stay exactly at the EXPERIMENTS.md baseline."""
    from repro.perf import PerfConfig

    def scenario():
        _, machine, lat_off = _scenario()
        _, _, lat_on = _scenario(PerfConfig())
        return machine, lat_off, lat_on

    machine, lat_off, lat_on = benchmark.pedantic(scenario, rounds=1, iterations=1)
    db = machine.params.db_access_s
    rows = [
        [name, lat_off[name] * 1000, lat_on[name] * 1000,
         (lat_off[name] - lat_on[name]) * 1000]
        for name in ("plain", "wsrf-ro", "wsrf-rw")
    ]
    print_table(
        "FIG-1: dispatch cost with the perf layer off/on (simulated ms)",
        ["deployment", "off_ms", "on_ms", "saved_ms"],
        rows,
    )
    benchmark.extra_info.update(
        {f"{k}_perf_ms": v * 1000 for k, v in lat_on.items()}
    )
    # Guard 1 — default off is the paper-shape baseline, to the
    # EXPERIMENTS.md figure (5.79 / 6.70 / 7.50 ms).
    assert lat_off["plain"] * 1000 == pytest.approx(5.79, abs=0.005)
    assert lat_off["wsrf-ro"] * 1000 == pytest.approx(6.70, abs=0.005)
    assert lat_off["wsrf-rw"] * 1000 == pytest.approx(7.50, abs=0.005)
    # Guard 2 — caching drops the read-only dispatch below the 6.70 ms
    # baseline by exactly the elided DB load.
    assert lat_on["wsrf-ro"] < lat_off["wsrf-ro"]
    assert lat_on["wsrf-ro"] * 1000 < 6.70
    assert lat_off["wsrf-ro"] - lat_on["wsrf-ro"] == pytest.approx(db, rel=1e-6)
    # Guard 3 — writes still pay the save; only the load is cached.
    assert lat_on["wsrf-rw"] < lat_off["wsrf-rw"]
    assert lat_off["wsrf-rw"] - lat_on["wsrf-rw"] == pytest.approx(db, rel=1e-6)
    # The plain path is untouched by a WSRF-layer optimization.
    assert lat_on["plain"] == lat_off["plain"]


def bench_fig1_observability_overhead(benchmark):
    """Observability is free in simulated time: attaching repro.obs must
    not change any measured latency (spans are recorded around the
    existing timeouts, never adding their own)."""

    def scenario():
        out = {}
        for observed in (False, True):
            env, net, machine, client = _fabric()
            if observed:
                from repro.obs import Observability

                Observability(env).attach(net)
            wrapper = deploy(StatefulService, machine, "Stateful")
            epr = run_coroutine(
                env, client.call(wrapper.service_epr(), UVA, "Create")
            )

            def call(epr=epr, client=client):
                yield from client.call(epr, UVA, "Increment")

            out[observed] = _mean_simulated_latency(env, call)
        return out

    latencies = benchmark.pedantic(scenario, rounds=1, iterations=1)
    print_table(
        "FIG-1: dispatch latency with observability off/on (simulated ms)",
        ["observability", "latency_ms", "added_ms"],
        [
            ["disabled", latencies[False] * 1000, 0.0],
            ["enabled", latencies[True] * 1000,
             (latencies[True] - latencies[False]) * 1000],
        ],
    )
    benchmark.extra_info["obs_added_ms"] = (
        latencies[True] - latencies[False]
    ) * 1000
    # The acceptance bar is exact: 0% added simulated latency.
    assert latencies[True] == latencies[False]


def bench_fig1_overhead_constant_in_resource_count(benchmark):
    """EPR resolution is an indexed point lookup: latency must not grow
    with the number of WS-Resources in the database."""

    def scenario():
        env, net, machine, client = _fabric()
        wrapper = deploy(StatefulService, machine, "Stateful")
        out = {}
        for population in (1, 100, 1000):
            while len(wrapper.resource_ids()) < population:
                run_coroutine(env, client.call(wrapper.service_epr(), UVA, "Create"))
            epr = wrapper.epr_for(wrapper.resource_ids()[0])

            def call(epr=epr):
                yield from client.call(epr, UVA, "ReadValue")

            out[population] = _mean_simulated_latency(env, call, calls=20)
        return out

    latencies = benchmark.pedantic(scenario, rounds=1, iterations=1)
    print_table(
        "FIG-1: dispatch latency vs resource population",
        ["resources", "latency_ms"],
        [[n, v * 1000] for n, v in latencies.items()],
    )
    benchmark.extra_info.update({f"pop{n}_ms": v * 1000 for n, v in latencies.items()})
    assert latencies[1000] == pytest.approx(latencies[1], rel=0.05)
