"""D-8: client-side EPR state and rediscovery (§5's coupling discussion).

"Further exploration is needed to address issues such as the amount of
state (in the form of EPRs) that the client is (or can be) expected to
maintain.  How durable does that client-side information need to be
(e.g., should it survive client shutdown?) and how a client might
possibly rediscover their resources should their EPRs be lost."

Quantified:

- the client's EPR inventory (count and serialized bytes) as job-set
  size grows — the "tightening" of loose coupling;
- recovery: a client that lost everything but the Scheduler's service
  address rediscovers its job set (and every job's directory EPR) via
  QueryResourceProperties, and the cost of that rediscovery.
"""

from __future__ import annotations

import pytest

from conftest import print_table, run_coroutine

from repro.gridapp import FileRef, JobSpec, Testbed
from repro.gridapp.execution_service import parse_job_event
from repro.osim.programs import make_compute_program
from repro.wsa import EndpointReference
from repro.xmlx import NS, QName, to_string

UVA = NS.UVACG


def _run_jobset(n_jobs, seed=21):
    tb = Testbed(n_machines=3, seed=seed, machine_speeds=[1.0, 1.5, 2.0])
    tb.programs.register(make_compute_program("tiny", 1.0, outputs={"o": b"1"}))
    client = tb.make_client()
    spec = client.new_job_set()
    exe = client.add_program_binary(tb.programs.get("tiny"))
    for i in range(n_jobs):
        spec.add(JobSpec(name=f"job{i:02d}", executable=FileRef(exe, "job.exe")))
    outcome, jobset_epr, topic = tb.run_job_set(client, spec)
    assert outcome == "completed"
    tb.settle(5.0)
    return tb, client, jobset_epr, topic


def _client_epr_inventory(client, jobset_epr):
    """Every EPR the client ends up holding for one job set."""
    eprs = {jobset_epr}
    for note in client.listener.received:
        event = parse_job_event(note.payload)
        for key in ("job_epr", "dir_epr"):
            if key in event:
                eprs.add(event[key])
    return eprs


def bench_d8_epr_inventory_growth(benchmark):
    def scenario():
        rows = []
        counts = {}
        for n_jobs in (1, 4, 16):
            tb, client, jobset_epr, topic = _run_jobset(n_jobs)
            eprs = _client_epr_inventory(client, jobset_epr)
            total_bytes = sum(len(to_string(e.to_xml())) for e in eprs)
            rows.append([n_jobs, len(eprs), total_bytes])
            counts[n_jobs] = len(eprs)
        return rows, counts

    rows, counts = benchmark.pedantic(scenario, rounds=1, iterations=1)
    print_table(
        "D-8: client-held EPRs per job set",
        ["jobs", "eprs_held", "serialized_bytes"],
        rows,
    )
    benchmark.extra_info.update({f"eprs_{n}": c for n, c in counts.items()})
    # The client's state grows linearly: 1 job-set EPR + ~2 per job
    # (job + directory) — exactly the §5 "tightening" concern.
    assert counts[16] - counts[4] == pytest.approx(2 * 12, abs=4)


def bench_d8_rediscovery_after_epr_loss(benchmark):
    """Client restart: rebuild every EPR from the service address alone."""

    def scenario():
        tb, client, jobset_epr, topic = _run_jobset(4)
        lost = _client_epr_inventory(client, jobset_epr)
        env = tb.env

        def recover():
            # The client retained only the Scheduler's address (it is in
            # the service's WSDL) — not one EPR.
            scheduler_address = tb.scheduler.address
            start = env.now
            recovered = set()
            # Each job set is a WS-Resource of the Scheduler service; its
            # ids are discoverable server-side, and each jobset's RP doc
            # carries its topic/status.  Walk them and query state.
            for rid in tb.scheduler.resource_ids():
                if rid.startswith("sub-"):
                    continue  # broker subscriptions, not job sets
                epr = EndpointReference(
                    scheduler_address, {QName(UVA, "ResourceID"): rid}
                )
                try:
                    found_topic = yield from client.soap.get_resource_property(
                        epr, QName(UVA, "Topic")
                    )
                except Exception:
                    continue
                if found_topic != topic:
                    continue
                recovered.add(epr)
                state = tb.scheduler.store.load("Scheduler", rid)
                for mapping_key in ("job_eprs", "job_dirs"):
                    mapping = state.get(QName(UVA, mapping_key)) or {}
                    recovered.update(mapping.values())
            return recovered, env.now - start

        recovered, elapsed = run_coroutine(env, recover())
        return lost, recovered, elapsed

    lost, recovered, elapsed = benchmark.pedantic(scenario, rounds=1, iterations=1)
    print_table(
        "D-8: rediscovery after total client EPR loss (4-job set)",
        ["eprs_lost", "eprs_recovered", "recovery_time_ms"],
        [[len(lost), len(recovered), elapsed * 1000]],
    )
    benchmark.extra_info["recovery_ms"] = elapsed * 1000
    # Everything the client held is recoverable from durable server state.
    assert lost <= recovered
    assert elapsed < 1.0
