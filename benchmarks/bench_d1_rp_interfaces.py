"""D-1: standard Resource Property interfaces vs per-service custom proxies.

§5: "Not only do clients not have to create these interfaces themselves
(i.e., generate proxies), but there is potential to develop higher-level
interfaces to standard Resource Properties ... provided to all clients
and work on all services, not just service/client pairs that had agreed
upon their own specific interfaces."

Quantified two ways:

- *generality*: one generic client routine reads state from N unrelated
  services; the custom-proxy approach needs one hand-written proxy class
  per service (client code artifacts counted);
- *cost parity*: the generic path costs the same wire time as the
  custom path, so generality is free.
"""

from __future__ import annotations

import inspect

import pytest

from conftest import print_table, run_coroutine

from repro.net import Network
from repro.osim import Machine
from repro.sim import Environment
from repro.wsrf import (
    GetResourcePropertyPortType,
    Resource,
    ResourceProperty,
    ServiceSkeleton,
    WebMethod,
    WSRFPortType,
    WsrfClient,
    deploy,
)
from repro.xmlx import NS, QName

UVA = NS.UVACG


def _make_service(idx):
    """N distinct service classes, each with its own state shape."""

    @WSRFPortType(GetResourcePropertyPortType)
    class Service(ServiceSkeleton):
        data = Resource(default=f"value-{idx}")

        @ResourceProperty(qname=QName(UVA, f"Prop{idx}"))
        @property
        def Prop(self):
            return self.data

        @WebMethod(requires_resource=False)
        def Create(self):
            return self.epr_for(self.create_resource())

        @WebMethod
        def CustomGet(self):
            return self.data

    Service.__name__ = f"Service{idx}"
    return Service


class CustomProxyBase:
    """What clients write per service without standard RP interfaces."""

    def __init__(self, client, epr):
        self.client = client
        self.epr = epr

    def get(self):
        return self.client.call(self.epr, UVA, "CustomGet")


def bench_d1_generic_vs_custom(benchmark):
    N_SERVICES = 5

    def scenario():
        env = Environment()
        net = Network(env)
        machine = Machine(net, "server")
        net.add_host("client")
        client = WsrfClient(net, "client")
        eprs = []
        for i in range(N_SERVICES):
            wrapper = deploy(_make_service(i), machine, f"Svc{i}")
            eprs.append(
                (i, run_coroutine(env, client.call(wrapper.service_epr(), UVA, "Create")))
            )

        # Generic path: ONE routine works against every service.
        def generic():
            start = env.now
            values = []
            for i, epr in eprs:
                value = yield from client.get_resource_property(
                    epr, QName(UVA, f"Prop{i}")
                )
                values.append(value)
            return values, env.now - start

        generic_values, generic_time = run_coroutine(env, generic())

        # Custom path: one proxy class per service (here one shared class
        # only because every generated service happens to use the same
        # method name; in general it is N classes — that is the point).
        def custom():
            start = env.now
            values = []
            for i, epr in eprs:
                proxy = CustomProxyBase(client, epr)
                value = yield from proxy.get()
                values.append(value)
            return values, env.now - start

        custom_values, custom_time = run_coroutine(env, custom())
        assert generic_values == custom_values
        return generic_time, custom_time

    generic_time, custom_time = benchmark.pedantic(scenario, rounds=1, iterations=1)
    proxy_loc = len(inspect.getsource(CustomProxyBase).splitlines())
    rows = [
        ["generic RP tooling", generic_time * 1000 / 5, 0],
        ["custom proxies", custom_time * 1000 / 5, proxy_loc * 5],
    ]
    print_table(
        "D-1: reading state from 5 unrelated services",
        ["approach", "ms_per_service", "client_proxy_loc"],
        rows,
    )
    benchmark.extra_info["generic_ms"] = generic_time * 1000
    benchmark.extra_info["custom_ms"] = custom_time * 1000
    # Cost parity: generality is free on the wire.
    assert generic_time == pytest.approx(custom_time, rel=0.15)
