"""DUR: crash-restart recovery cost on the testbed (docs/durability.md).

A mid-run host bounce — of a worker node, then of the central machine
(broker + scheduler) — against an undisturbed control run of the same
job set.  The job set must complete in every case; the metrics are the
*recovery overhead* in simulated seconds (makespan delta vs. the
control) and the amount of re-dispatch work the watchdog / readoption
path performed.  Emits ``BENCH_restart.json`` for the CI artifact
trail.
"""

from __future__ import annotations

import json
import pathlib

from conftest import print_table

from repro.gridapp import FaultToleranceConfig, FileRef, JobSpec, Testbed
from repro.net import RetryPolicy
from repro.osim.programs import make_compute_program

#: the bounce keeps the host dark this long (simulated seconds)
DOWN_FOR = 5.0

#: restart survival needs a retry budget that outlasts the down window
RESTART_RETRY = RetryPolicy(
    max_attempts=8, base_delay_s=0.5, backoff_factor=2.0,
    max_delay_s=3.0, timeout_s=30.0,
)


def _make_testbed():
    tb = Testbed(
        n_machines=4,
        seed=11,
        machine_speeds=[1.0] * 4,
        retry_policy=RESTART_RETRY,
        fault_tolerance=FaultToleranceConfig(
            watchdog_period=5.0, stuck_after=20.0
        ),
        broker_redelivery=RESTART_RETRY,
    )
    tb.programs.register(
        make_compute_program("work", 10.0, outputs={"out.dat": b"x"})
    )
    return tb


def _spec(client, tb, n_jobs=8):
    spec = client.new_job_set()
    exe = client.add_program_binary(tb.programs.get("work"))
    for i in range(n_jobs):
        spec.add(JobSpec(name=f"job{i:02d}", executable=FileRef(exe, "job.exe")))
    return spec


def _run(bounce=None, at=8.0):
    """One job-set run; ``bounce`` names the host to crash at ``at``."""
    tb = _make_testbed()
    client = tb.make_client()
    if bounce is not None:
        tb.restart_host(bounce, at=at, down_for=DOWN_FOR)
    spec = _spec(client, tb)
    start = tb.env.now
    outcome, _, _ = tb.run(
        client.run_job_set_polled(spec, period=3.0, give_up_after=2000.0)
    )
    makespan = tb.env.now - start
    tb.settle()
    restarts = sum(
        getattr(w, "restarts", 0)
        for w in [tb.scheduler, tb.broker, tb.node_info]
        + list(tb.fss.values()) + list(tb.es.values())
    )
    return {
        "outcome": outcome,
        "makespan_s": makespan,
        "restarts": restarts,
        "redispatched_jobs": getattr(tb.scheduler, "recoveries_announced", 0),
        "jobsets_readopted": getattr(tb.scheduler, "jobsets_readopted", 0),
    }


def bench_restart_recovery(benchmark):
    """Control vs. node bounce vs. central bounce: all three complete;
    the bounced runs pay a bounded recovery overhead and show actual
    recovery work (a wrapper restart, plus watchdog re-dispatch or
    jobset readoption)."""

    def scenario():
        return {
            "control": _run(),
            "node-bounce": _run(bounce="node01", at=8.0),
            "central-bounce": _run(bounce="uvacg-central", at=8.0),
        }

    runs = benchmark.pedantic(scenario, rounds=1, iterations=1)
    control = runs["control"]["makespan_s"]

    rows = []
    for name, run in runs.items():
        assert run["outcome"] == "completed", name
        rows.append([
            name, run["makespan_s"], run["makespan_s"] - control,
            run["restarts"], run["redispatched_jobs"],
            run["jobsets_readopted"],
        ])
    print_table(
        "DUR: job-set makespan under a mid-run host bounce (simulated s)",
        ["run", "makespan_s", "recovery_overhead_s", "restarts",
         "redispatched_jobs", "jobsets_readopted"],
        rows,
    )

    # The control run is undisturbed; every bounced run restarted
    # something and performed at least one piece of recovery work.
    assert runs["control"]["restarts"] == 0
    assert runs["control"]["redispatched_jobs"] == 0
    assert runs["node-bounce"]["restarts"] >= 1
    assert runs["node-bounce"]["redispatched_jobs"] >= 1
    assert runs["central-bounce"]["restarts"] >= 2  # broker + scheduler
    assert runs["central-bounce"]["jobsets_readopted"] >= 1
    for name in ("node-bounce", "central-bounce"):
        overhead = runs[name]["makespan_s"] - control
        assert overhead >= 0.0, name
        # Recovery is bounded: the watchdog notices within one or two
        # periods of the bounce; well under a minute of simulated time.
        assert overhead <= 60.0, name

    payload = {
        "experiment": "restart",
        "down_for_s": DOWN_FOR,
        "runs": {
            name: {
                "makespan_s": run["makespan_s"],
                "recovery_overhead_s": run["makespan_s"] - control,
                "restarts": run["restarts"],
                "redispatched_jobs": run["redispatched_jobs"],
                "jobsets_readopted": run["jobsets_readopted"],
            }
            for name, run in runs.items()
        },
    }
    out = pathlib.Path(__file__).resolve().parent.parent / "BENCH_restart.json"
    out.write_text(json.dumps(payload, sort_keys=True, indent=1),
                   encoding="utf-8")
    benchmark.extra_info.update({
        f"{name}_makespan_s": run["makespan_s"] for name, run in runs.items()
    })
