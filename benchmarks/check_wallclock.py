"""CI gate: compare BENCH_wallclock.json against the committed baseline.

The gate is a ratchet, enforced in **both** directions:

- a drop of more than ``--tolerance`` (default 30%) below the baseline
  fails — the hot path regressed (an always-on profiler, a quadratic
  store scan);
- a gain of more than ``--max-gain`` (default 100%) above the baseline
  *also* fails — the hot path got dramatically faster, and the ratchet
  is no longer protecting anything.  The fix is deliberate: re-run the
  benchmark and commit the fresh ``BENCH_wallclock.json`` as the new
  ``BENCH_wallclock_baseline.json``, so the next accidental slowdown is
  measured against the speed actually achieved.

Wall-clock rates are host-dependent, so both bounds are deliberately
wide — they exist to catch order-of-magnitude accidents, not jitter.

Usage::

    python benchmarks/check_wallclock.py BENCH_wallclock.json \
        [--baseline benchmarks/BENCH_wallclock_baseline.json] \
        [--tolerance 0.30] [--max-gain 1.00]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

DEFAULT_BASELINE = pathlib.Path(__file__).resolve().parent / (
    "BENCH_wallclock_baseline.json"
)

#: meters gated against the baseline (each with the same tolerance)
GATED_METERS = ("events_per_s", "envelopes_per_s")


def load(path: pathlib.Path) -> dict:
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except OSError as exc:
        sys.exit(f"error: cannot read {str(path)!r}: {exc.strerror or exc}")
    except ValueError as exc:
        sys.exit(f"error: {str(path)!r} is not valid JSON: {exc}")
    if "meters" not in payload:
        sys.exit(f"error: {str(path)!r} has no 'meters' section")
    return payload


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", type=pathlib.Path,
                        help="BENCH_wallclock.json from this run")
    parser.add_argument("--baseline", type=pathlib.Path,
                        default=DEFAULT_BASELINE,
                        help="committed baseline (default: %(default)s)")
    parser.add_argument("--tolerance", type=float, default=0.30,
                        help="max allowed fractional regression "
                             "(default: %(default)s)")
    parser.add_argument("--max-gain", type=float, default=1.00,
                        help="max allowed fractional improvement before the "
                             "baseline must be refreshed (default: %(default)s)")
    args = parser.parse_args(argv)

    current = load(args.current)
    baseline = load(args.baseline)

    failures = []
    for meter in GATED_METERS:
        base = baseline["meters"].get(meter)
        now = current["meters"].get(meter)
        if base is None or now is None:
            failures.append(f"{meter}: missing from "
                            f"{'baseline' if base is None else 'current'}")
            continue
        change = (now - base) / base
        status = "FAIL" if (change < -args.tolerance or change > args.max_gain) else "ok"
        print(f"{status:>4}  {meter:<18} baseline={base:>12.1f}  "
              f"current={now:>12.1f}  change={change:+.1%}")
        if change < -args.tolerance:
            failures.append(
                f"{meter} regressed {-change:.1%} "
                f"(limit {args.tolerance:.0%}): {base:.1f} -> {now:.1f}"
            )
        elif change > args.max_gain:
            failures.append(
                f"{meter} improved {change:.1%} (limit {args.max_gain:.0%}): "
                f"{base:.1f} -> {now:.1f} — the ratchet is stale; refresh "
                "benchmarks/BENCH_wallclock_baseline.json deliberately"
            )

    if failures:
        print("\nwall-clock benchmark gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\nwall-clock benchmark gate passed "
          f"(tolerance {args.tolerance:.0%}, max gain {args.max_gain:.0%})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
