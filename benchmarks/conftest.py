"""Shared helpers for the benchmark harness.

Each ``bench_*.py`` file regenerates one experiment from DESIGN.md's
index.  pytest-benchmark measures the real (host) execution time of the
experiment; the *simulated* metrics — latency in simulated milliseconds,
message counts, makespans — are the reproduction's results.  They are
printed as tables (``-s`` to see them) and attached to the benchmark
record via ``benchmark.extra_info`` so ``--benchmark-json`` captures
them, and the qualitative shape the paper claims is asserted.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import pytest


def print_table(title: str, headers: Sequence[str], rows: List[Sequence]) -> None:
    """Render one experiment table to stdout."""
    widths = [
        max(len(str(h)), *(len(_fmt(r[i])) for r in rows)) if rows else len(str(h))
        for i, h in enumerate(headers)
    ]
    line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    print(f"\n== {title} ==")
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(_fmt(v).ljust(w) for v, w in zip(row, widths)))


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.1f}"
        if abs(value) >= 1:
            return f"{value:.3f}"
        return f"{value:.6f}"
    return str(value)


def run_coroutine(env, gen):
    """Drive a simulation coroutine to completion; return its value."""
    proc = env.process(gen)
    env.run(until=proc)
    return proc.value


@pytest.fixture()
def table():
    return print_table
