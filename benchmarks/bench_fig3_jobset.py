"""FIG-3: end-to-end job set execution on the testbed (paper Fig. 3, §4.6).

Runs the full ten-step pipeline and reports:

- the numbered step trace (the figure's arrows, asserted in order);
- job set makespan as the grid grows (independent jobs: more machines →
  shorter makespan, until the job count binds);
- makespan of a dependency chain (serialization floor: machines can't
  help a chain).
"""

from __future__ import annotations

import json
import pathlib

import pytest

from conftest import print_table

from repro.gridapp import FileRef, JobSpec, Testbed
from repro.osim.programs import make_compute_program


def _make_testbed(n_machines, seed=11, observability=False, perf=None):
    tb = Testbed(n_machines=n_machines, seed=seed,
                 machine_speeds=[1.0] * n_machines,
                 observability=observability, perf=perf)
    tb.programs.register(
        make_compute_program("work", 30.0, outputs={"out": b"x"})
    )
    tb.programs.register(
        make_compute_program("chain", 10.0, outputs={"out": b"x"})
    )
    return tb


def _independent_spec(client, tb, n_jobs):
    spec = client.new_job_set()
    exe = client.add_program_binary(tb.programs.get("work"))
    for i in range(n_jobs):
        spec.add(JobSpec(name=f"job{i}", executable=FileRef(exe, "job.exe")))
    return spec


def _chain_spec(client, tb, n_jobs):
    spec = client.new_job_set()
    exe = client.add_program_binary(tb.programs.get("chain"))
    for i in range(n_jobs):
        inputs = [] if i == 0 else [FileRef(f"job{i-1}://out", "prev.dat")]
        spec.add(
            JobSpec(name=f"job{i}", executable=FileRef(exe, "job.exe"),
                    inputs=inputs, outputs=["out"])
        )
    return spec


def bench_fig3_ten_step_trace(benchmark):
    """The §4.6 walkthrough: all ten steps occur, causally ordered."""

    def scenario():
        tb = _make_testbed(3)
        client = tb.make_client()
        outcome, _, _ = tb.run_job_set(client, _chain_spec(client, tb, 2))
        tb.settle()
        return tb, outcome

    tb, outcome = benchmark.pedantic(scenario, rounds=1, iterations=1)
    assert outcome == "completed"
    steps = tb.trace.first_occurrence_order()
    print_table(
        "FIG-3: first occurrence of each numbered step",
        ["order", "step", "actor", "at_s"],
        [
            [i + 1, s, tb.trace.events_for_step(s)[0].actor,
             tb.trace.events_for_step(s)[0].at]
            for i, s in enumerate(steps)
        ],
    )
    assert set(tb.trace.steps()) == {1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
    backbone = [s for s in steps if s in (1, 2, 3, 4, 5, 7, 8, 10)]
    assert backbone == [1, 2, 3, 4, 5, 7, 8, 10]
    benchmark.extra_info["steps"] = steps


def bench_fig3_makespan_vs_machines(benchmark):
    """8 independent jobs across 1/2/4/8 machines: near-linear speedup."""

    def scenario():
        makespans = {}
        for n in (1, 2, 4, 8):
            tb = _make_testbed(n)
            client = tb.make_client()
            start = tb.env.now
            outcome, _, _ = tb.run_job_set(client, _independent_spec(client, tb, 8))
            assert outcome == "completed"
            makespans[n] = tb.env.now - start
        return makespans

    makespans = benchmark.pedantic(scenario, rounds=1, iterations=1)
    rows = [[n, m, makespans[1] / m] for n, m in makespans.items()]
    print_table(
        "FIG-3: makespan of 8 independent jobs (simulated s)",
        ["machines", "makespan_s", "speedup"],
        rows,
    )
    benchmark.extra_info.update({f"m{n}": v for n, v in makespans.items()})
    assert makespans[1] > makespans[2] > makespans[4] > makespans[8]
    # Near-linear until the job count binds: 8 jobs on 8 machines should
    # run ≥ 4x faster than on one.
    assert makespans[1] / makespans[8] > 4.0


def bench_fig3_observed_jobset(benchmark):
    """FIG-3 with observability on: emit ``BENCH_fig3.json`` (makespan,
    message counts, Fig. 1 dispatch-stage latencies) for the CI artifact
    trail, and hold the stage-sum acceptance bar on a real workload."""

    def scenario():
        tb = _make_testbed(4, observability=True)
        client = tb.make_client()
        start = tb.env.now
        outcome, _, _ = tb.run_job_set(client, _independent_spec(client, tb, 8))
        assert outcome == "completed"
        makespan = tb.env.now - start
        tb.settle()
        return tb, makespan

    tb, makespan = benchmark.pedantic(scenario, rounds=1, iterations=1)
    obs = tb.obs
    reg = obs.collect()
    rec = obs.spans
    assert rec.open_spans() == []

    dispatches = rec.named("wsrf.dispatch")
    worst_rel = 0.0
    for dispatch in dispatches:
        stages = sum(
            s.duration for s in rec.children(dispatch)
            if s.name.startswith("wsrf.dispatch.")
        )
        worst_rel = max(worst_rel, abs(stages - dispatch.duration) / dispatch.duration)
    # Acceptance: Fig. 1 stages sum to within 5% of each dispatch latency.
    assert worst_rel <= 0.05

    # Aggregate over the per-service label splits (worst quantiles seen).
    by_stage = {}
    for name, _labels, metric in reg.query("wsrf.dispatch*_s"):
        agg = by_stage.setdefault(name, {"count": 0, "p50": 0.0, "p95": 0.0,
                                         "max": 0.0})
        agg["count"] += metric.count
        agg["p50"] = max(agg["p50"], metric.p50)
        agg["p95"] = max(agg["p95"], metric.p95)
        agg["max"] = max(agg["max"], metric.max)
    stage_rows = [
        [name, agg["count"], agg["p50"] * 1000, agg["p95"] * 1000,
         agg["max"] * 1000]
        for name, agg in sorted(by_stage.items())
    ]
    assert stage_rows, "observed run must record dispatch-stage histograms"
    print_table(
        "FIG-3: dispatch-stage latencies, observed run (simulated ms)",
        ["stage", "count", "p50_ms", "p95_ms", "max_ms"],
        stage_rows,
    )

    payload = {
        "figure": "fig3",
        "makespan_s": makespan,
        "messages": int(reg.value("net.messages")),
        "bytes": int(reg.value("net.bytes")),
        "dispatches": len(dispatches),
        "stage_sum_worst_rel_err": worst_rel,
        "stages": {
            row[0]: {"count": row[1], "p50_ms": row[2],
                     "p95_ms": row[3], "max_ms": row[4]}
            for row in stage_rows
        },
    }
    out = pathlib.Path(__file__).resolve().parent.parent / "BENCH_fig3.json"
    out.write_text(json.dumps(payload, sort_keys=True, indent=1), encoding="utf-8")
    benchmark.extra_info.update(
        {"makespan_s": makespan, "messages": payload["messages"]}
    )


def bench_fig3_perf_jobset(benchmark):
    """FIG-3 with the hot-path performance layer on vs. off: the
    default run must stay byte-identical to the pinned BENCH_fig3.json
    shape, the perf run must cut central messages by >= 20% and elide
    DB save stages; emits ``BENCH_fig3_perf.json`` for the CI artifact
    trail (docs/performance.md)."""
    from repro.gridapp import PerfConfig

    def run_observed(perf):
        tb = _make_testbed(4, observability=True, perf=perf)
        client = tb.make_client()
        start = tb.env.now
        outcome, _, _ = tb.run_job_set(client, _independent_spec(client, tb, 8))
        assert outcome == "completed"
        makespan = tb.env.now - start
        tb.settle()
        reg = tb.obs.collect()
        stage_counts = {}
        for name, _labels, metric in reg.query("wsrf.dispatch*_s"):
            stage_counts[name] = stage_counts.get(name, 0) + metric.count
        return {
            "makespan_s": makespan,
            "messages": int(reg.value("net.messages")),
            "bytes": int(reg.value("net.bytes")),
            "dispatches": len(tb.obs.spans.named("wsrf.dispatch")),
            "stage_counts": stage_counts,
        }

    def scenario():
        return run_observed(None), run_observed(PerfConfig())

    off, on = benchmark.pedantic(scenario, rounds=1, iterations=1)
    saving = 1.0 - on["messages"] / off["messages"]
    print_table(
        "FIG-3: 8-job set with the perf layer off/on",
        ["metric", "off", "on"],
        [
            ["makespan_s", off["makespan_s"], on["makespan_s"]],
            ["central messages", off["messages"], on["messages"]],
            ["bytes", off["bytes"], on["bytes"]],
            ["dispatches", off["dispatches"], on["dispatches"]],
            ["db_save stages",
             off["stage_counts"].get("wsrf.dispatch.db_save_s", 0),
             on["stage_counts"].get("wsrf.dispatch.db_save_s", 0)],
        ],
    )
    benchmark.extra_info.update(
        {"messages_off": off["messages"], "messages_on": on["messages"],
         "message_saving": saving}
    )

    # Guard 1 — default off is exactly the pinned BENCH_fig3.json shape.
    assert off["messages"] == 190
    assert off["dispatches"] == 114
    assert off["makespan_s"] == pytest.approx(60.206302819999976, rel=1e-9)
    assert (
        off["stage_counts"]["wsrf.dispatch.db_save_s"] == off["dispatches"]
    ), "without elision every dispatch records a db_save stage"
    # Guard 2 — batching + NIS pass caching cut central messages >= 20%.
    assert on["messages"] <= 0.8 * off["messages"], saving
    # Guard 3 — write elision removes db_save stages outright.
    assert (
        on["stage_counts"]["wsrf.dispatch.db_save_s"]
        < off["stage_counts"]["wsrf.dispatch.db_save_s"]
    )
    # The job-set itself finishes in essentially the same simulated time
    # (the work dominates; the layer trims plumbing, not compute).
    assert on["makespan_s"] == pytest.approx(off["makespan_s"], rel=0.01)

    payload = {
        "figure": "fig3-perf",
        "off": off,
        "on": on,
        "message_saving": saving,
    }
    out = pathlib.Path(__file__).resolve().parent.parent / "BENCH_fig3_perf.json"
    out.write_text(json.dumps(payload, sort_keys=True, indent=1), encoding="utf-8")


def bench_fig3_chain_not_parallelizable(benchmark):
    """A 4-job dependency chain gains nothing from extra machines."""

    def scenario():
        out = {}
        for n in (1, 4):
            tb = _make_testbed(n)
            client = tb.make_client()
            start = tb.env.now
            outcome, _, _ = tb.run_job_set(client, _chain_spec(client, tb, 4))
            assert outcome == "completed"
            out[n] = tb.env.now - start
        return out

    makespans = benchmark.pedantic(scenario, rounds=1, iterations=1)
    print_table(
        "FIG-3: makespan of a 4-job chain (simulated s)",
        ["machines", "makespan_s"],
        [[n, v] for n, v in makespans.items()],
    )
    assert makespans[4] == pytest.approx(makespans[1], rel=0.10)
