"""FIG-3: end-to-end job set execution on the testbed (paper Fig. 3, §4.6).

Runs the full ten-step pipeline and reports:

- the numbered step trace (the figure's arrows, asserted in order);
- job set makespan as the grid grows (independent jobs: more machines →
  shorter makespan, until the job count binds);
- makespan of a dependency chain (serialization floor: machines can't
  help a chain).
"""

from __future__ import annotations

import pytest

from conftest import print_table

from repro.gridapp import FileRef, JobSpec, Testbed
from repro.osim.programs import make_compute_program


def _make_testbed(n_machines, seed=11):
    tb = Testbed(n_machines=n_machines, seed=seed,
                 machine_speeds=[1.0] * n_machines)
    tb.programs.register(
        make_compute_program("work", 30.0, outputs={"out": b"x"})
    )
    tb.programs.register(
        make_compute_program("chain", 10.0, outputs={"out": b"x"})
    )
    return tb


def _independent_spec(client, tb, n_jobs):
    spec = client.new_job_set()
    exe = client.add_program_binary(tb.programs.get("work"))
    for i in range(n_jobs):
        spec.add(JobSpec(name=f"job{i}", executable=FileRef(exe, "job.exe")))
    return spec


def _chain_spec(client, tb, n_jobs):
    spec = client.new_job_set()
    exe = client.add_program_binary(tb.programs.get("chain"))
    for i in range(n_jobs):
        inputs = [] if i == 0 else [FileRef(f"job{i-1}://out", "prev.dat")]
        spec.add(
            JobSpec(name=f"job{i}", executable=FileRef(exe, "job.exe"),
                    inputs=inputs, outputs=["out"])
        )
    return spec


def bench_fig3_ten_step_trace(benchmark):
    """The §4.6 walkthrough: all ten steps occur, causally ordered."""

    def scenario():
        tb = _make_testbed(3)
        client = tb.make_client()
        outcome, _, _ = tb.run_job_set(client, _chain_spec(client, tb, 2))
        tb.settle()
        return tb, outcome

    tb, outcome = benchmark.pedantic(scenario, rounds=1, iterations=1)
    assert outcome == "completed"
    steps = tb.trace.first_occurrence_order()
    print_table(
        "FIG-3: first occurrence of each numbered step",
        ["order", "step", "actor", "at_s"],
        [
            [i + 1, s, tb.trace.events_for_step(s)[0].actor,
             tb.trace.events_for_step(s)[0].at]
            for i, s in enumerate(steps)
        ],
    )
    assert set(tb.trace.steps()) == {1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
    backbone = [s for s in steps if s in (1, 2, 3, 4, 5, 7, 8, 10)]
    assert backbone == [1, 2, 3, 4, 5, 7, 8, 10]
    benchmark.extra_info["steps"] = steps


def bench_fig3_makespan_vs_machines(benchmark):
    """8 independent jobs across 1/2/4/8 machines: near-linear speedup."""

    def scenario():
        makespans = {}
        for n in (1, 2, 4, 8):
            tb = _make_testbed(n)
            client = tb.make_client()
            start = tb.env.now
            outcome, _, _ = tb.run_job_set(client, _independent_spec(client, tb, 8))
            assert outcome == "completed"
            makespans[n] = tb.env.now - start
        return makespans

    makespans = benchmark.pedantic(scenario, rounds=1, iterations=1)
    rows = [[n, m, makespans[1] / m] for n, m in makespans.items()]
    print_table(
        "FIG-3: makespan of 8 independent jobs (simulated s)",
        ["machines", "makespan_s", "speedup"],
        rows,
    )
    benchmark.extra_info.update({f"m{n}": v for n, v in makespans.items()})
    assert makespans[1] > makespans[2] > makespans[4] > makespans[8]
    # Near-linear until the job count binds: 8 jobs on 8 machines should
    # run ≥ 4x faster than on one.
    assert makespans[1] / makespans[8] > 4.0


def bench_fig3_chain_not_parallelizable(benchmark):
    """A 4-job dependency chain gains nothing from extra machines."""

    def scenario():
        out = {}
        for n in (1, 4):
            tb = _make_testbed(n)
            client = tb.make_client()
            start = tb.env.now
            outcome, _, _ = tb.run_job_set(client, _chain_spec(client, tb, 4))
            assert outcome == "completed"
            out[n] = tb.env.now - start
        return out

    makespans = benchmark.pedantic(scenario, rounds=1, iterations=1)
    print_table(
        "FIG-3: makespan of a 4-job chain (simulated s)",
        ["machines", "makespan_s"],
        [[n, v] for n, v in makespans.items()],
    )
    assert makespans[4] == pytest.approx(makespans[1], rel=0.10)
