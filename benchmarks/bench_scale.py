"""Scale behaviour: IIS worker-pool saturation and grid-size sweeps.

Two system-level shapes that bound the architecture the paper built:

- the ASP.NET worker pool is a throughput knee: offered load beyond the
  pool size queues, and latency grows linearly with queue depth;
- the centralized Scheduler/Broker/NIS machine is the scaling
  bottleneck: job-set makespan stays flat as the grid grows (good),
  but central message volume grows linearly with job count (the cost
  of the centralized §4 design).
"""

from __future__ import annotations

import json
import pathlib

import pytest

from conftest import print_table, run_coroutine

from repro.gridapp import FileRef, HashRing, JobSpec, Testbed
from repro.net import Network
from repro.osim import Machine, MachineParams
from repro.osim.programs import make_compute_program
from repro.sim import Environment


class _FixedWorkApp:
    """A handler that burns a fixed service time per request."""

    SERVICE_TIME = 0.050

    def __init__(self, env):
        self.env = env

    def handle_soap(self, payload, ctx):
        yield self.env.timeout(self.SERVICE_TIME)
        return "done"


def _p95(samples):
    ordered = sorted(samples)
    return ordered[int(round(0.95 * (len(ordered) - 1)))]


def bench_scale_worker_pool_knee(benchmark):
    """Response time (mean and p95) and IIS queue depth vs concurrent
    clients, 4-thread pool: latency grows linearly with queue depth."""

    SAMPLE_PERIOD = 0.010

    def scenario():
        rows = []
        series = {}
        p95s = {}
        depth_series = {}
        for concurrency in (1, 2, 4, 8, 16):
            env = Environment()
            net = Network(env)
            machine = Machine(net, "server", params=MachineParams(iis_workers=4))
            machine.iis.register_app("Work", _FixedWorkApp(env))
            latencies = []
            depths = []
            done = []

            def one_client(env, index):
                net.add_host(f"c{index}")
                for _ in range(5):
                    start = env.now
                    yield from net.request(f"c{index}", "http://server:80/Work", "x")
                    latencies.append(env.now - start)
                done.append(index)

            def sample_queue(env, concurrency=concurrency):
                while len(done) < concurrency:
                    depths.append(machine.iis.queued_requests)
                    yield env.timeout(SAMPLE_PERIOD)

            procs = [env.process(one_client(env, i)) for i in range(concurrency)]
            env.process(sample_queue(env))
            env.run()
            mean = sum(latencies) / len(latencies)
            p95 = _p95(latencies)
            rows.append(
                [concurrency, mean * 1000, p95 * 1000, max(depths)]
            )
            series[concurrency] = mean
            p95s[concurrency] = p95
            depth_series[concurrency] = depths
        return rows, series, p95s, depth_series

    rows, series, p95s, depth_series = benchmark.pedantic(
        scenario, rounds=1, iterations=1
    )
    print_table(
        "SCALE: response time vs concurrency (4 ASP.NET workers, 50ms service)",
        ["concurrent clients", "mean_response_ms", "p95_response_ms", "max_queue_depth"],
        rows,
    )
    print_table(
        "SCALE: IIS queue depth over time (samples every 10ms)",
        ["concurrent clients", "queue depth series"],
        [
            [c, " ".join(str(d) for d in depths)]
            for c, depths in depth_series.items()
        ],
    )
    benchmark.extra_info.update({f"c{k}_ms": v * 1000 for k, v in series.items()})
    benchmark.extra_info.update({f"c{k}_p95_ms": v * 1000 for k, v in p95s.items()})
    # Below the pool size latency is flat; beyond it, it grows ~linearly
    # with the over-subscription factor.
    assert series[4] < series[1] * 1.5
    assert series[16] > series[4] * 2.5
    # The tail tells the same story: p95 at 4x over-subscription is
    # several service times, and never below the mean.
    assert p95s[16] > p95s[4] * 2.5
    assert all(p95s[c] >= series[c] for c in p95s)
    # The latency knee is queueing, visibly: no queue at or below the
    # pool size, a deep one at 4x over-subscription.
    assert max(depth_series[1]) == 0
    assert max(depth_series[16]) > max(depth_series[4]) + 4


def bench_scale_federation_knee(benchmark):
    """Worker-pool knee vs zone count: sharding clients across federated
    zone servers by consistent hash moves the saturation knee right.

    Each zone is one 4-worker IIS front-end; clients are routed to the
    zone that owns their id on the :class:`HashRing` (the same ring the
    federated Testbed uses to shard job sets, docs/federation.md).  The
    knee for a zone count is the largest swept concurrency whose mean
    response time stays within 1.5x of that configuration's unloaded
    mean.  Emits ``BENCH_federation.json`` for the CI artifact
    (`bench-federation` job).
    """

    SWEEP = (1, 2, 4, 8, 16, 32)
    KNEE_FACTOR = 1.5

    def scenario():
        rows = []
        knees = {}
        all_series = {}
        for n_zones in (1, 2, 4):
            zones = [f"z{z:02d}" for z in range(n_zones)]
            ring = HashRing(zones)
            series = {}
            for concurrency in SWEEP:
                env = Environment()
                net = Network(env)
                for zone in zones:
                    machine = Machine(
                        net, zone, params=MachineParams(iis_workers=4)
                    )
                    machine.iis.register_app("Work", _FixedWorkApp(env))
                latencies = []

                def one_client(env, index):
                    net.add_host(f"c{index}")
                    zone = ring.owner(f"c{index}")
                    for _ in range(5):
                        start = env.now
                        yield from net.request(
                            f"c{index}", f"http://{zone}:80/Work", "x"
                        )
                        latencies.append(env.now - start)

                for i in range(concurrency):
                    env.process(one_client(env, i))
                env.run()
                series[concurrency] = sum(latencies) / len(latencies)
            threshold = KNEE_FACTOR * series[SWEEP[0]]
            knee = max(c for c in SWEEP if series[c] <= threshold)
            knees[n_zones] = knee
            all_series[n_zones] = series
            rows.append(
                [n_zones, knee]
                + [series[c] * 1000 for c in SWEEP]
            )
        return rows, knees, all_series

    rows, knees, all_series = benchmark.pedantic(scenario, rounds=1, iterations=1)
    print_table(
        "SCALE: federation knee (4 ASP.NET workers/zone, 50ms service)",
        ["zones", "knee"] + [f"c{c}_mean_ms" for c in SWEEP],
        rows,
    )
    benchmark.extra_info.update({f"z{k}_knee": v for k, v in knees.items()})
    out = pathlib.Path(__file__).resolve().parent.parent / "BENCH_federation.json"
    out.write_text(
        json.dumps(
            {
                "sweep": list(SWEEP),
                "knee_factor": KNEE_FACTOR,
                "zones": {
                    str(z): {
                        "knee": knees[z],
                        "mean_response_ms": {
                            str(c): all_series[z][c] * 1000 for c in SWEEP
                        },
                    }
                    for z in knees
                },
            },
            indent=2,
        )
        + "\n"
    )
    # The knee-position gate: adding a second zone moves the saturation
    # knee to strictly higher concurrency, and more zones never move it
    # back left.  One zone saturates at its 4-worker pool size.
    assert knees[1] == 4
    assert knees[2] > knees[1]
    assert knees[4] >= knees[2]
    # Sharding only helps at the knee, not below it: unloaded response
    # time is the same regardless of zone count.
    assert all_series[2][1] == pytest.approx(all_series[1][1], rel=0.05)


def bench_scale_grid_size(benchmark):
    """Fixed per-machine load (2 jobs each) as the grid grows."""

    def scenario():
        rows = []
        makespans = {}
        msg_per_job = {}
        for n_machines in (4, 8, 16):
            n_jobs = 2 * n_machines
            tb = Testbed(
                n_machines=n_machines,
                machine_speeds=[1.0] * n_machines,
                seed=47,
                start_utilization_services=False,  # isolate job traffic
            )
            tb.programs.register(
                make_compute_program("unit", 20.0, outputs={"o": b"1"})
            )
            client = tb.make_client()
            spec = client.new_job_set()
            exe = client.add_program_binary(tb.programs.get("unit"))
            for i in range(n_jobs):
                spec.add(JobSpec(name=f"j{i:03d}", executable=FileRef(exe, "job.exe")))
            tb.network.stats.reset()
            start = tb.env.now
            outcome, _, _ = tb.run_job_set(client, spec)
            assert outcome == "completed"
            makespan = tb.env.now - start
            messages = tb.network.stats.messages
            rows.append([n_machines, n_jobs, makespan, messages, messages / n_jobs])
            makespans[n_machines] = makespan
            msg_per_job[n_machines] = messages / n_jobs
        return rows, makespans, msg_per_job

    rows, makespans, msg_per_job = benchmark.pedantic(scenario, rounds=1, iterations=1)
    print_table(
        "SCALE: weak scaling (2 jobs/machine, 20s jobs)",
        ["machines", "jobs", "makespan_s", "total_messages", "messages_per_job"],
        rows,
    )
    benchmark.extra_info.update({f"m{k}": v for k, v in makespans.items()})
    # Weak scaling holds: makespan roughly flat as machines and jobs
    # grow together (sequential dispatch adds a small linear term)...
    assert makespans[16] < makespans[4] * 1.5
    # ...and the per-job message cost of the centralized design is
    # constant (total central traffic grows linearly with jobs).
    assert msg_per_job[16] == pytest.approx(msg_per_job[4], rel=0.25)
