"""FIG-2: the attribute programming model (paper Fig. 2's MyServ).

Recreates MyServ exactly and measures the cost of each state-access path
the programming model provides:

- ``GetResourceProperty`` — the standard WSRF interface;
- ``GetMultipleResourceProperties`` — batched standard interface;
- ``QueryResourceProperties`` — XPath over the RP document;
- a custom author-written getter method (what a service/client pair
  would agree on without WSRF).

Expected shape: the standard interfaces cost the same as a custom
method (they ride the identical pipeline), batching N properties in one
GetMultiple beats N GetResourceProperty calls, and Query pays a premium
for building + searching the RP document.
"""

from __future__ import annotations

import pytest

from conftest import print_table, run_coroutine

from repro.net import Network
from repro.osim import Machine
from repro.sim import Environment
from repro.wsrf import (
    GetMultipleResourcePropertiesPortType,
    GetResourcePropertyPortType,
    QueryResourcePropertiesPortType,
    Resource,
    ResourceProperty,
    ServiceSkeleton,
    WebMethod,
    WSRFPortType,
    WsrfClient,
    deploy,
)
from repro.xmlx import NS, QName

UVA = NS.UVACG
CALLS = 40


@WSRFPortType(
    GetResourcePropertyPortType,
    GetMultipleResourcePropertiesPortType,
    QueryResourcePropertiesPortType,
)
class MyServ(ServiceSkeleton):
    """Verbatim Fig. 2, plus a custom getter for the baseline."""

    some_data = Resource(default="grid")

    @ResourceProperty
    @property
    def MyData(self) -> str:
        return f"At {self.env.now} the string is {self.some_data}"

    @ResourceProperty
    @property
    def Second(self) -> str:
        return self.some_data.upper()

    @ResourceProperty
    @property
    def Third(self) -> int:
        return len(self.some_data)

    @WebMethod(requires_resource=False)
    def Create(self):
        return self.epr_for(self.create_resource(some_data="fig2"))

    @WebMethod
    def CustomGetMyData(self) -> str:
        """The hand-rolled alternative to GetResourceProperty."""
        return f"At {self.env.now} the string is {self.some_data}"


def _mean(env, call, calls=CALLS):
    def driver():
        start = env.now
        for _ in range(calls):
            yield from call()
        return (env.now - start) / calls

    return run_coroutine(env, driver())


def bench_fig2_rp_access_paths(benchmark):
    def scenario():
        env = Environment()
        net = Network(env)
        machine = Machine(net, "server")
        net.add_host("client")
        client = WsrfClient(net, "client")
        wrapper = deploy(MyServ, machine, "MyServ")
        epr = run_coroutine(env, client.call(wrapper.service_epr(), UVA, "Create"))
        qnames = [QName(UVA, n) for n in ("MyData", "Second", "Third")]

        def get_rp():
            yield from client.get_resource_property(epr, qnames[0])

        def get_multi():
            yield from client.get_multiple_resource_properties(epr, qnames)

        def three_singles():
            for qname in qnames:
                yield from client.get_resource_property(epr, qname)

        def query():
            yield from client.query_resource_properties(epr, "//MyData/text()")

        def custom():
            yield from client.call(epr, UVA, "CustomGetMyData")

        return {
            "GetResourceProperty": _mean(env, get_rp),
            "GetMultiple(3 RPs)": _mean(env, get_multi),
            "3x GetResourceProperty": _mean(env, three_singles),
            "QueryResourceProperties": _mean(env, query),
            "custom getter method": _mean(env, custom),
        }

    latencies = benchmark.pedantic(scenario, rounds=1, iterations=1)
    print_table(
        "FIG-2: state-access path cost (simulated ms)",
        ["path", "latency_ms"],
        [[name, v * 1000] for name, v in latencies.items()],
    )
    benchmark.extra_info.update({k: v * 1000 for k, v in latencies.items()})
    # Standard plumbing costs what a custom interface costs.
    assert latencies["GetResourceProperty"] == pytest.approx(
        latencies["custom getter method"], rel=0.15
    )
    # One batched call beats three singles.
    assert latencies["GetMultiple(3 RPs)"] < latencies["3x GetResourceProperty"] / 2
    # Query rides the same wire pipeline (its extra CPU — RP-document
    # construction + XPath — is host CPU, measured by bench_d3).
    assert latencies["QueryResourceProperties"] == pytest.approx(
        latencies["GetResourceProperty"], rel=0.15
    )


def bench_fig2_fig2_example_behaviour(benchmark):
    """The Fig. 2 semantics themselves: load-before-invoke and
    save-after-change, measured in store operations per call."""

    def scenario():
        env = Environment()
        net = Network(env)
        machine = Machine(net, "server")
        net.add_host("client")
        client = WsrfClient(net, "client")
        wrapper = deploy(MyServ, machine, "MyServ")
        epr = run_coroutine(env, client.call(wrapper.service_epr(), UVA, "Create"))
        loads0, saves0 = wrapper.store.loads, wrapper.store.saves
        run_coroutine(env, client.get_resource_property(epr, QName(UVA, "MyData")))
        read_ops = (wrapper.store.loads - loads0, wrapper.store.saves - saves0)
        return read_ops

    read_ops = benchmark.pedantic(scenario, rounds=1, iterations=1)
    print_table(
        "FIG-2: store operations per read-only invocation",
        ["loads", "saves"],
        [list(read_ops)],
    )
    assert read_ops == (1, 0)  # one load, no save for a read-only call
