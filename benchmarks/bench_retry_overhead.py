"""FT-0: fault-free overhead of the fault-tolerance layer.

The retry/watchdog machinery must be (close to) free when nothing
fails: attempt #1 of every call runs immediately, the watchdog only
reads state that is already resident, and broker redelivery's first
send is the normal one-way send.  This benchmark runs the same job set
with the FT layer off and fully on over a clean network and compares:

- job set makespan (simulated seconds) — the user-visible cost;
- message count — the fabric-visible cost (watchdog Status probes);
- retries/redeliveries — must be exactly zero without faults.
"""

from __future__ import annotations

from conftest import print_table

from repro.gridapp import FaultToleranceConfig, FileRef, JobSpec, Testbed
from repro.net import RetryPolicy
from repro.osim.programs import make_compute_program

N_JOBS = 8


def _run_jobset(ft_enabled):
    policy = RetryPolicy(
        max_attempts=5, base_delay_s=0.2, backoff_factor=2.0,
        max_delay_s=2.0, timeout_s=30.0,
    )
    tb = Testbed(
        n_machines=4,
        seed=11,
        machine_speeds=[1.0] * 4,
        retry_policy=policy if ft_enabled else None,
        fault_tolerance=(
            FaultToleranceConfig(watchdog_period=5.0) if ft_enabled else None
        ),
        broker_redelivery=policy if ft_enabled else None,
    )
    tb.programs.register(
        make_compute_program("work", 10.0, outputs={"out": b"x"})
    )
    client = tb.make_client()
    spec = client.new_job_set()
    exe = client.add_program_binary(tb.programs.get("work"))
    for i in range(N_JOBS):
        spec.add(JobSpec(name=f"job{i}", executable=FileRef(exe, "job.exe")))
    outcome, _, _ = tb.run_job_set(client, spec)
    assert outcome == "completed"
    stats = tb.network.stats
    return {
        "makespan_s": tb.env.now,
        "messages": stats.messages,
        "retries": stats.retries,
        "redeliveries": stats.redeliveries,
    }


def bench_retry_overhead_fault_free(benchmark):
    """FT layer fully on vs off, zero faults: negligible overhead."""

    def scenario():
        return _run_jobset(ft_enabled=False), _run_jobset(ft_enabled=True)

    baseline, with_ft = benchmark.pedantic(scenario, rounds=1, iterations=1)

    overhead = with_ft["makespan_s"] / baseline["makespan_s"] - 1.0
    print_table(
        f"FT-0: fault-free overhead ({N_JOBS} jobs, 4 machines, no faults)",
        ["config", "makespan_s", "messages", "retries", "redeliveries"],
        [
            ["ft-off", baseline["makespan_s"], baseline["messages"],
             baseline["retries"], baseline["redeliveries"]],
            ["ft-on", with_ft["makespan_s"], with_ft["messages"],
             with_ft["retries"], with_ft["redeliveries"]],
            ["overhead", f"{overhead * 100:+.2f}%",
             with_ft["messages"] - baseline["messages"], "-", "-"],
        ],
    )

    # No faults -> the retry layer never fires.
    assert with_ft["retries"] == 0
    assert with_ft["redeliveries"] == 0
    # The user-visible cost of carrying the FT layer is negligible
    # (< 2% makespan; the only extra traffic is periodic watchdog
    # Status probes, which ride links that are otherwise idle).
    assert overhead < 0.02
    benchmark.extra_info.update(
        baseline=baseline, with_ft=with_ft, overhead=overhead
    )
