"""URI parsing for the schemes the testbed uses.

``http://host:port/path``     ordinary SOAP-over-HTTP endpoints
``soap.tcp://host:port/path`` WSE TCP messaging endpoints
``local://path``              the client's local file system (§4.6)
``jobN://filename``           output of job "jobN", location filled in by
                              the Scheduler once it knows where jobN ran
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


class UriError(ValueError):
    """Raised for malformed URIs."""


_DEFAULT_PORTS = {"http": 80, "soap.tcp": 8081}


@dataclass(frozen=True, slots=True)
class Uri:
    scheme: str
    host: str
    port: Optional[int]
    path: str

    @classmethod
    def parse(cls, text: str) -> "Uri":
        if "://" not in text:
            raise UriError(f"missing scheme in URI {text!r}")
        scheme, rest = text.split("://", 1)
        scheme = scheme.lower()
        if not scheme:
            raise UriError(f"empty scheme in URI {text!r}")
        if scheme not in _DEFAULT_PORTS:
            # Non-network schemes (local://, <jobname>://) are opaque:
            # everything after :// is the path.
            return cls(scheme=scheme, host="", port=None, path=rest)
        if "/" in rest:
            authority, path = rest.split("/", 1)
            path = "/" + path
        else:
            authority, path = rest, "/"
        if not authority:
            raise UriError(f"missing host in URI {text!r}")
        if ":" in authority:
            host, port_text = authority.rsplit(":", 1)
            try:
                port = int(port_text)
            except ValueError:
                raise UriError(f"bad port in URI {text!r}") from None
            if not (0 < port < 65536):
                raise UriError(f"port out of range in URI {text!r}")
        else:
            host, port = authority, _DEFAULT_PORTS.get(scheme)
        if not host:
            raise UriError(f"missing host in URI {text!r}")
        return cls(scheme=scheme, host=host, port=port, path=path)

    def unparse(self) -> str:
        if self.scheme == "local" or self.scheme.startswith("job"):
            return f"{self.scheme}://{self.path}"
        port = f":{self.port}" if self.port is not None else ""
        return f"{self.scheme}://{self.host}{port}{self.path}"

    @property
    def is_network(self) -> bool:
        """True for URIs that name a (simulated) network endpoint."""
        return self.scheme in ("http", "soap.tcp")

    def __str__(self) -> str:
        return self.unparse()
