"""Network calibration constants (2004-era campus LAN defaults).

Values are deliberately round; the benchmarks compare *shapes* (who wins,
where crossovers fall), not absolute numbers, per EXPERIMENTS.md.

Sources for the defaults:

- 100 Mbit/s switched Ethernet was the standard UVa campus drop in 2004.
- SOAP/HTTP round-trip costs of 5-20 ms for small messages match
  contemporaneous measurements of ASP.NET/IIS stacks (cf. the WSRF.NET
  "Early Evaluation" paper's observation that WSRF adds milliseconds per
  call on such a stack).
- WSE 2.0 TCP messaging amortizes connection setup and skips HTTP
  header/chunking overhead, which is why the paper routes large file
  transfers over ``soap.tcp``.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class NetworkParams:
    #: one-way propagation + switching delay between two campus hosts (s)
    latency_s: float = 0.0003
    #: link bandwidth in bytes/second (100 Mbit/s)
    bandwidth_Bps: float = 12_500_000.0
    #: TCP + HTTP connection establishment (3-way handshake + HTTP parse) (s)
    http_connect_s: float = 0.0020
    #: fixed HTTP header overhead per message (bytes)
    http_overhead_B: int = 420
    #: one-time soap.tcp (WSE TCP) session establishment (s)
    soaptcp_connect_s: float = 0.0012
    #: per-message soap.tcp framing overhead (bytes)
    soaptcp_overhead_B: int = 64
    #: CPU cost to serialize/deserialize XML, per byte of document (s/B).
    #: 2004-era .NET XML stacks parsed on the order of 10 MB/s.
    xml_cost_per_B: float = 1.0e-7
    #: fixed envelope processing cost per SOAP message (header handling) (s)
    soap_fixed_s: float = 0.0004

    def transfer_time(self, payload_bytes: int, overhead_bytes: int) -> float:
        """Serialization delay of one message on the wire (excl. latency)."""
        return (payload_bytes + overhead_bytes) / self.bandwidth_Bps

    def xml_cost(self, size_bytes: int) -> float:
        """CPU time to serialize or parse an XML document of this size."""
        return self.soap_fixed_s + size_bytes * self.xml_cost_per_B
