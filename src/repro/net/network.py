"""The simulated network fabric and its two SOAP transports."""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field, fields
from typing import Any, Dict, Optional, Set, Tuple

from repro.net.host import Host
from repro.net.params import NetworkParams
from repro.net.uri import Uri
from repro.sim import Environment


class DeliveryError(RuntimeError):
    """Connection refused / host down / partitioned / message dropped."""


@dataclass(slots=True)
class NetworkStats:
    """Aggregate traffic and fault counters for the benchmark harness."""

    messages: int = 0
    bytes: int = 0
    by_scheme: Dict[str, int] = field(default_factory=lambda: defaultdict(int))
    by_category: Dict[str, int] = field(default_factory=lambda: defaultdict(int))
    bytes_by_category: Dict[str, int] = field(default_factory=lambda: defaultdict(int))
    #: injected message losses (drops still consume wire time/bandwidth)
    drops: int = 0
    drops_by_link: Dict[Tuple[str, str], int] = field(
        default_factory=lambda: defaultdict(int)
    )
    #: delivery failures by cause: "drop" | "partition" | "host-down" | "refused"
    faults: Dict[str, int] = field(default_factory=lambda: defaultdict(int))
    #: client-side retries taken under a RetryPolicy
    retries: int = 0
    #: broker-side notification redelivery attempts
    redeliveries: int = 0

    def record(self, scheme: str, size: int, category: str) -> None:
        self.messages += 1
        self.bytes += size
        self.by_scheme[scheme] += 1
        self.by_category[category] += 1
        self.bytes_by_category[category] += size

    def record_drop(self, src: str, dst: str) -> None:
        self.drops += 1
        self.drops_by_link[(src, dst)] += 1
        self.faults["drop"] += 1

    def record_fault(self, kind: str) -> None:
        self.faults[kind] += 1

    def reset(self) -> None:
        # Derived from the dataclass fields so counters added later can
        # never silently survive a reset and corrupt benchmark deltas.
        for f in fields(self):
            value = getattr(self, f.name)
            if isinstance(value, dict):
                value.clear()
            else:
                setattr(self, f.name, 0)


@dataclass(frozen=True, slots=True)
class DeliveryContext:
    """Metadata handed to a server with each inbound message."""

    source_host: str
    scheme: str
    one_way: bool
    path: str = "/"
    #: WS-Addressing MessageID of the carried envelope ("" when unknown);
    #: lets server-side spans correlate to the in-flight network span
    message_id: str = ""


class Network:
    """Full-mesh fabric of :class:`Host` objects.

    The two public coroutines are :meth:`request` (request/response) and
    :meth:`send_one_way` (fire-and-forget, §4.1's "one-way message"), both
    addressed by URI.  soap.tcp connections are cached per
    (source, destination, port) triple so only the first message pays the
    session handshake — the WSE TCP behaviour the paper exploits.
    """

    def __init__(
        self,
        env: Environment,
        params: Optional[NetworkParams] = None,
    ) -> None:
        self.env = env
        self.params = params or NetworkParams()
        self.hosts: Dict[str, Host] = {}
        self.stats = NetworkStats()
        self._tcp_sessions: Set[Tuple[str, str, int]] = set()
        self._partitions: Set[Tuple[str, str]] = set()
        #: optional per-pair latency overrides {(a, b): seconds}
        self.latency_overrides: Dict[Tuple[str, str], float] = {}
        #: opt-in deterministic link faults (see repro.net.faults)
        self.fault_injector = None
        #: attached repro.obs.Observability, or None = observation off
        #: (every instrumentation site guards on this being non-None)
        self.obs: Optional[Any] = None
        #: attached repro.obs.WallClockProfiler, or None = profiling off
        #: (same None-check contract as obs; see docs/observability.md)
        self.prof: Optional[Any] = None
        #: attached repro.soap.EnvelopeCache, or None = codec caching off
        #: (endpoints pass this to SoapEnvelope.serialize/deserialize;
        #: same None-check contract as obs/prof — docs/performance.md)
        self.codec: Optional[Any] = None

    def inject_faults(
        self,
        drop_probability: float = 0.0,
        extra_latency_s: float = 0.0,
        seed: int = 0,
        rng=None,
        affect_loopback: bool = False,
    ):
        """Attach a seeded :class:`~repro.net.faults.FaultInjector`.

        Returns the injector so callers can add per-link overrides.
        Passing ``drop_probability=0`` with no overrides yields a
        fault-free injector (useful to pre-wire chaos harnesses).
        """
        from repro.net.faults import FaultInjector, LinkFaultPlan

        self.fault_injector = FaultInjector(
            rng=rng,
            seed=seed,
            default=LinkFaultPlan(
                drop_probability=drop_probability,
                extra_latency_s=extra_latency_s,
            ),
            affect_loopback=affect_loopback,
        )
        return self.fault_injector

    def clear_faults(self) -> None:
        self.fault_injector = None

    # -- topology ---------------------------------------------------------------

    def add_host(self, name: str) -> Host:
        if name in self.hosts:
            raise ValueError(f"duplicate host name {name!r}")
        host = Host(self, name)
        self.hosts[name] = host
        return host

    def host(self, name: str) -> Host:
        try:
            return self.hosts[name]
        except KeyError:
            raise DeliveryError(f"unknown host {name!r}") from None

    def partition(self, a: str, b: str) -> None:
        """Sever connectivity between hosts *a* and *b* (both directions)."""
        self._partitions.add((a, b))
        self._partitions.add((b, a))

    def heal(self, a: str, b: str) -> None:
        self._partitions.discard((a, b))
        self._partitions.discard((b, a))

    def latency_between(self, a: str, b: str) -> float:
        base = self.latency_overrides.get((a, b), self.params.latency_s)
        if self.fault_injector is not None:
            base += self.fault_injector.extra_latency(a, b)
        return base

    def _check_reachable(self, src: str, dst: str) -> Host:
        if self.host(src).down:
            self.stats.record_fault("host-down")
            raise DeliveryError(f"source host {src!r} is down")
        if (src, dst) in self._partitions:
            self.stats.record_fault("partition")
            raise DeliveryError(f"network partition between {src!r} and {dst!r}")
        dest = self.host(dst)
        if dest.down:
            self.stats.record_fault("host-down")
            raise DeliveryError(f"host {dst!r} is down")
        return dest

    def _message_dropped(self, src: str, dst: str) -> bool:
        """Decide (and account) the loss of one message on src→dst.

        The decision is drawn when the send is initiated so the RNG
        sequence is independent of NIC queueing order; the caller still
        charges the wire time before acting on a drop (the bytes left
        the NIC and vanished in the fabric).
        """
        if self.fault_injector is None or not self.fault_injector.should_drop(src, dst):
            return False
        self.stats.record_drop(src, dst)
        return True

    # -- transports ----------------------------------------------------------------

    def _connect_cost(self, scheme: str, src: str, dst: str, port: int) -> float:
        p = self.params
        if scheme == "http":
            # Every HTTP exchange pays connection establishment.
            return p.http_connect_s + self.latency_between(src, dst)
        if scheme == "soap.tcp":
            key = (src, dst, port)
            if key in self._tcp_sessions:
                return 0.0
            self._tcp_sessions.add(key)
            return p.soaptcp_connect_s + self.latency_between(src, dst)
        raise DeliveryError(f"no transport for scheme {scheme!r}")

    def _overhead(self, scheme: str) -> int:
        return (
            self.params.http_overhead_B
            if scheme == "http"
            else self.params.soaptcp_overhead_B
        )

    def drop_tcp_sessions(self, host: str) -> None:
        """Forget cached soap.tcp sessions touching *host* (e.g. restart)."""
        self._tcp_sessions = {
            key for key in self._tcp_sessions if key[0] != host and key[1] != host
        }

    def _transmit(self, src: Host, dst_name: str, scheme: str, size: int, category: str):
        """Move *size* payload bytes from *src* to *dst_name*; a coroutine."""
        params = self.params
        duration = params.transfer_time(size, self._overhead(scheme))
        finish = src.reserve_tx(duration)
        # Wait for the NIC to drain, then for propagation.
        yield self.env.timeout(max(0.0, finish - self.env.now))
        yield self.env.timeout(self.latency_between(src.name, dst_name))
        self.stats.record(scheme, size + self._overhead(scheme), category)

    def request(
        self,
        src_host: str,
        url: str,
        payload: str,
        category: str = "rpc",
        message_id: Optional[str] = None,
    ):
        """Request/response exchange; returns the response text.

        Returns a coroutine (``yield from`` it, or wrap with
        ``env.process``).  Raises :class:`DeliveryError` if the
        destination is unreachable or nothing listens on the port.
        Server-side exceptions propagate to the caller (the SOAP layer
        above converts them to faults first).  *message_id* (the
        envelope's WS-Addressing MessageID, when the caller has one)
        correlates the network span with the sender's.
        """
        gen = self._request_impl(src_host, url, payload, category, message_id)
        prof = self.prof
        if prof is None:
            # Hand back the impl generator itself: the disabled path adds
            # no wrapper frame and no per-resumption work.
            return gen
        return prof.wrap("net.request", gen)

    def _request_impl(
        self,
        src_host: str,
        url: str,
        payload: str,
        category: str,
        message_id: Optional[str],
    ):
        uri = Uri.parse(url)
        if not uri.is_network:
            raise DeliveryError(f"cannot route non-network URI {url!r}")
        src = self.host(src_host)
        obs = self.obs
        span = None
        if obs is not None:
            span = obs.start_span(
                "net.request",
                message_id=message_id,
                attrs={
                    "scheme": uri.scheme,
                    "category": category,
                    "source": src_host,
                    "target": uri.host,
                },
            )
        try:
            dest = self._check_reachable(src_host, uri.host)
            port = uri.port or 80

            connect = self._connect_cost(uri.scheme, src_host, uri.host, port)
            if connect:
                yield self.env.timeout(connect)

            size = len(payload.encode("utf-8"))
            # Sender-side XML serialization cost.
            yield self.env.timeout(self.params.xml_cost(size))
            request_dropped = self._message_dropped(src_host, uri.host)
            leg = None
            if obs is not None:
                leg = obs.start_span(
                    "net.transit", parent=span,
                    attrs={"leg": "request", "scheme": uri.scheme},
                )
            yield from self._transmit(src, uri.host, uri.scheme, size, category)
            if leg is not None:
                obs.finish(leg)
            if request_dropped:
                raise DeliveryError(
                    f"request dropped on link {src_host!r}->{uri.host!r}"
                )

            server = dest.server_on(port)
            if server is None:
                self.stats.record_fault("refused")
                raise DeliveryError(f"connection refused: {uri.host}:{port}")
            # Receiver-side parse cost.
            yield self.env.timeout(self.params.xml_cost(size))
            ctx = DeliveryContext(
                source_host=src_host, scheme=uri.scheme, one_way=False,
                path=uri.path, message_id=message_id or "",
            )
            response = yield self.env.process(server.handle(payload, ctx))
            if dest.down:
                # The server executed, but the host died before its
                # reply left: the caller sees a reset, not an answer
                # from a dead machine (write-ahead contract, reply leg).
                self.stats.record_fault("host-down")
                raise DeliveryError(
                    f"host {uri.host!r} went down before replying"
                )
            if response is None:
                response = ""
            resp_size = len(response.encode("utf-8"))
            yield self.env.timeout(self.params.xml_cost(resp_size))
            # NOTE: the server has already executed by now — losing the
            # response leg makes a retried call at-least-once.
            response_dropped = self._message_dropped(uri.host, src_host)
            leg = None
            if obs is not None:
                leg = obs.start_span(
                    "net.transit", parent=span,
                    attrs={"leg": "response", "scheme": uri.scheme},
                )
            yield from self._transmit(dest, src_host, uri.scheme, resp_size, category)
            if leg is not None:
                obs.finish(leg)
            if response_dropped:
                raise DeliveryError(
                    f"response dropped on link {uri.host!r}->{src_host!r}"
                )
            yield self.env.timeout(self.params.xml_cost(resp_size))
            return response
        finally:
            if span is not None:
                obs.spans.finish_subtree(span)

    def bulk_transfer(
        self,
        src_host: str,
        dst_host: str,
        scheme: str,
        size: int,
        category: str = "bulk",
    ):
        """Coroutine: move *size* raw bytes between hosts.

        Used for file payloads too large to embed in SOAP envelopes
        (synthetic benchmark files): the wire time and traffic stats are
        charged exactly as if the bytes had been streamed, without
        materializing them.  An existing transport session is assumed
        (callers do an RPC first, which establishes it).
        """
        if scheme not in ("http", "soap.tcp"):
            raise DeliveryError(f"no transport for scheme {scheme!r}")
        src = self.host(src_host)
        self._check_reachable(src_host, dst_host)
        # Bulk streams ride an established session and are not subject to
        # injected drops (the set-up RPC already was); extra link latency
        # still applies via latency_between.
        yield from self._transmit(src, dst_host, scheme, size, category)

    def send_one_way(
        self,
        src_host: str,
        url: str,
        payload: str,
        category: str = "oneway",
        message_id: Optional[str] = None,
    ):
        """Fire-and-forget message: returns once the payload is delivered.

        Returns a coroutine.  The paper's one-way message "closes the
        connection immediately after sending"; the sender does not wait
        for the handler to run, so handler exceptions do NOT propagate
        (they end the handler's own process).
        """
        gen = self._send_one_way_impl(src_host, url, payload, category, message_id)
        prof = self.prof
        if prof is None:
            return gen
        return prof.wrap("net.oneway", gen)

    def _send_one_way_impl(
        self,
        src_host: str,
        url: str,
        payload: str,
        category: str,
        message_id: Optional[str],
    ):
        uri = Uri.parse(url)
        if not uri.is_network:
            raise DeliveryError(f"cannot route non-network URI {url!r}")
        src = self.host(src_host)
        obs = self.obs
        span = None
        if obs is not None:
            span = obs.start_span(
                "net.oneway",
                message_id=message_id,
                attrs={
                    "scheme": uri.scheme,
                    "category": category,
                    "source": src_host,
                    "target": uri.host,
                },
            )
            # This send runs as its own process and may outlive the
            # dispatch that spawned it: detach immediately so an
            # enclosing span's finish_subtree never closes it mid-flight
            # (only this generator and _deliver own the close).
            span.detached = True
        handed_off = False
        try:
            dest = self._check_reachable(src_host, uri.host)
            port = uri.port or 80

            connect = self._connect_cost(uri.scheme, src_host, uri.host, port)
            if connect:
                yield self.env.timeout(connect)
            size = len(payload.encode("utf-8"))
            yield self.env.timeout(self.params.xml_cost(size))
            dropped = self._message_dropped(src_host, uri.host)
            yield from self._transmit(src, uri.host, uri.scheme, size, category)
            if dropped:
                # Fire-and-forget: the sender gets no error — the message
                # is simply never delivered (§4.1 one-way loss semantics).
                if span is not None:
                    span.attrs["dropped"] = True
                return None

            server = dest.server_on(port)
            if server is None:
                self.stats.record_fault("refused")
                raise DeliveryError(f"connection refused: {uri.host}:{port}")
            ctx = DeliveryContext(
                source_host=src_host, scheme=uri.scheme, one_way=True,
                path=uri.path, message_id=message_id or "",
            )

            def _deliver():
                # Parse cost is the receiver's problem; runs detached.
                # The span's ownership moved here: it stays open until the
                # handler finishes, so server-side spans can parent to it.
                try:
                    yield self.env.timeout(self.params.xml_cost(size))
                    yield self.env.process(server.handle(payload, ctx))
                except DeliveryError:
                    # The receiving host died mid-handling (crash-restart
                    # zombie abort): for a one-way message that is the
                    # same as a drop — nobody is owed an answer.
                    self.stats.record_fault("host-down")
                finally:
                    if span is not None:
                        obs.spans.finish_subtree(span)

            prof = self.prof
            self.env.process(
                _deliver() if prof is None else prof.wrap("net.oneway", _deliver())
            )
            handed_off = True
            return None
        finally:
            if span is not None and not handed_off:
                obs.spans.finish_subtree(span)
