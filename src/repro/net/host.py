"""A network host: named endpoint with bound port servers and a NIC."""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.network import Network


class PortInUse(RuntimeError):
    """Raised when binding a server to an occupied port."""


class Host:
    """One machine's network presence.

    Servers (IIS front-ends, WSE TCP listeners, the client's local file
    server) bind to ports; the :class:`Network` delivers messages to them.
    The NIC serializes transmissions: concurrent sends from the same host
    queue FIFO, which is what makes bulk transfers contend realistically.
    """

    __slots__ = ("network", "name", "_servers", "_tx_busy_until", "down", "boot_epoch")

    def __init__(self, network: "Network", name: str) -> None:
        self.network = network
        self.name = name
        self._servers: Dict[int, object] = {}
        #: simulated time at which the NIC finishes its current queue
        self._tx_busy_until = 0.0
        #: hosts can be taken down for failure-injection tests
        self.down = False
        #: bumped on every restore; dispatches from an older boot are
        #: zombies and must not persist state or send replies
        self.boot_epoch = 0

    def bind(self, port: int, server: object) -> None:
        if port in self._servers:
            raise PortInUse(f"port {port} on {self.name!r} is already bound")
        if not hasattr(server, "handle"):
            raise TypeError(f"server must expose handle(); got {server!r}")
        self._servers[port] = server

    def unbind(self, port: int) -> None:
        self._servers.pop(port, None)

    def server_on(self, port: int) -> Optional[object]:
        return self._servers.get(port)

    # -- crash-restart ----------------------------------------------------------------

    def snapshot(self) -> Dict[int, Any]:
        """Checkpoint every bound server that persists state.

        Delegates to servers exposing ``snapshot()`` (the IIS front-end,
        which in turn checkpoints each hosted wrapper's resource store);
        servers without durable state (file servers, TCP listeners) are
        skipped — a real crash loses their in-flight buffers too.
        """
        out: Dict[int, Any] = {}
        for port, server in self._servers.items():
            if hasattr(server, "snapshot"):
                out[port] = server.snapshot()
        return out

    def restore(self, snap: Dict[int, Any]) -> None:
        """Bring the host back up from its last checkpoint.

        The server objects stay **in place** (everything on the fabric
        holds references to them — rebinding would model a re-deploy,
        not a reboot); each one restores its own durable state.  Bumps
        :attr:`boot_epoch` first so in-flight handlers from the dead
        boot abort instead of persisting, then drops the dead boot's
        TCP sessions.
        """
        self.boot_epoch += 1
        self.network.drop_tcp_sessions(self.name)
        for port, server_snap in snap.items():
            server = self._servers.get(port)
            if server is not None and hasattr(server, "restore"):
                server.restore(server_snap)

    def reserve_tx(self, duration: float) -> float:
        """Queue a transmission of *duration* on the NIC.

        Returns the simulated time at which the transmission completes.
        FIFO: if the NIC is already sending, this transfer starts when the
        previous ones finish.
        """
        now = self.network.env.now
        start = max(now, self._tx_busy_until)
        finish = start + duration
        self._tx_busy_until = finish
        return finish

    def __repr__(self) -> str:
        return f"<Host {self.name!r} ports={sorted(self._servers)}>"
