"""A network host: named endpoint with bound port servers and a NIC."""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.network import Network


class PortInUse(RuntimeError):
    """Raised when binding a server to an occupied port."""


class Host:
    """One machine's network presence.

    Servers (IIS front-ends, WSE TCP listeners, the client's local file
    server) bind to ports; the :class:`Network` delivers messages to them.
    The NIC serializes transmissions: concurrent sends from the same host
    queue FIFO, which is what makes bulk transfers contend realistically.
    """

    def __init__(self, network: "Network", name: str) -> None:
        self.network = network
        self.name = name
        self._servers: Dict[int, object] = {}
        #: simulated time at which the NIC finishes its current queue
        self._tx_busy_until = 0.0
        #: hosts can be taken down for failure-injection tests
        self.down = False

    def bind(self, port: int, server: object) -> None:
        if port in self._servers:
            raise PortInUse(f"port {port} on {self.name!r} is already bound")
        if not hasattr(server, "handle"):
            raise TypeError(f"server must expose handle(); got {server!r}")
        self._servers[port] = server

    def unbind(self, port: int) -> None:
        self._servers.pop(port, None)

    def server_on(self, port: int) -> Optional[object]:
        return self._servers.get(port)

    def reserve_tx(self, duration: float) -> float:
        """Queue a transmission of *duration* on the NIC.

        Returns the simulated time at which the transmission completes.
        FIFO: if the NIC is already sending, this transfer starts when the
        previous ones finish.
        """
        now = self.network.env.now
        start = max(now, self._tx_busy_until)
        finish = start + duration
        self._tx_busy_until = finish
        return finish

    def __repr__(self) -> str:
        return f"<Host {self.name!r} ports={sorted(self._servers)}>"
