"""Deterministic link-level fault injection for the simulated fabric.

The paper's testbed ran on a real campus network where "machines reboot
and links drop".  :class:`~repro.net.host.Host` models whole-host
failure (``host.down``) and :class:`~repro.net.network.Network` models
partitions; this module adds the third failure mode — lossy, slow links
— as an opt-in :class:`FaultInjector` attached to the network.

Every decision is drawn from one seeded ``numpy`` generator, so a chaos
run is a pure function of (seed, topology, workload): the same
configuration replays the same drops at the same instants, which is
what makes the chaos/property test suite deterministic.

Semantics per transport:

- request/response (:meth:`Network.request`): a dropped request or
  response leg surfaces as a :class:`~repro.net.network.DeliveryError`
  at the caller once the message's wire time has elapsed — retries see
  the failure, they do not hang.  A dropped *response* means the server
  already executed the call: retried operations are at-least-once.
- one-way (:meth:`Network.send_one_way`): a dropped message is lost
  silently, exactly the §4.1 fire-and-forget contract.
- bulk transfers ride an established session and are not dropped (the
  RPC that set the session up was already subject to loss); they do
  observe ``extra_latency_s``.

Loopback traffic (src == dst) never traverses a link and is exempt
unless ``affect_loopback=True`` — this keeps a service's one-way
self-messages (e.g. the Scheduler's Activate kick) off the chaos path,
mirroring a real host's loopback interface.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np


@dataclass(frozen=True, slots=True)
class LinkFaultPlan:
    """The fault profile of one directed link (or the default for all)."""

    #: probability that any single message on the link is lost
    drop_probability: float = 0.0
    #: deterministic extra one-way latency added to the link (s)
    extra_latency_s: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.drop_probability <= 1.0:
            raise ValueError(
                f"drop_probability must be in [0, 1], got {self.drop_probability!r}"
            )
        if self.extra_latency_s < 0.0:
            raise ValueError(
                f"extra_latency_s must be >= 0, got {self.extra_latency_s!r}"
            )


class FaultInjector:
    """Seeded per-link fault decisions, attached via ``Network.inject_faults``."""

    def __init__(
        self,
        rng: Optional[np.random.Generator] = None,
        seed: int = 0,
        default: Optional[LinkFaultPlan] = None,
        affect_loopback: bool = False,
    ) -> None:
        self.rng = rng if rng is not None else np.random.default_rng(seed)
        self.default = default or LinkFaultPlan()
        self.affect_loopback = affect_loopback
        self._links: Dict[Tuple[str, str], LinkFaultPlan] = {}
        #: total messages this injector decided to drop
        self.drops = 0
        #: total uniform draws consumed (diagnostic for determinism checks)
        self.draws = 0

    # -- configuration ----------------------------------------------------------

    def set_default(self, plan: LinkFaultPlan) -> None:
        self.default = plan

    def set_link(
        self, a: str, b: str, plan: LinkFaultPlan, symmetric: bool = True
    ) -> None:
        """Override the fault profile of the a→b link (both ways by default)."""
        self._links[(a, b)] = plan
        if symmetric:
            self._links[(b, a)] = plan

    def clear_link(self, a: str, b: str) -> None:
        self._links.pop((a, b), None)
        self._links.pop((b, a), None)

    def plan_for(self, src: str, dst: str) -> LinkFaultPlan:
        return self._links.get((src, dst), self.default)

    # -- decisions ---------------------------------------------------------------

    def should_drop(self, src: str, dst: str) -> bool:
        """Decide the fate of one message on the src→dst link.

        Consumes one RNG draw iff the link is lossy, so adding lossless
        links to a topology never perturbs the drop sequence elsewhere.
        """
        if src == dst and not self.affect_loopback:
            return False
        p = self.plan_for(src, dst).drop_probability
        if p <= 0.0:
            return False
        self.draws += 1
        dropped = float(self.rng.random()) < p
        if dropped:
            self.drops += 1
        return dropped

    def extra_latency(self, src: str, dst: str) -> float:
        if src == dst and not self.affect_loopback:
            return 0.0
        return self.plan_for(src, dst).extra_latency_s
