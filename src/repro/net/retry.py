"""Retry policy for request/response calls over the simulated fabric.

The seed reproduction surfaced every transport fault directly as a
:class:`~repro.net.network.DeliveryError` at the caller.  This module is
the client-side half of the fault-tolerance layer: a declarative
:class:`RetryPolicy` (attempt budget, exponential backoff with jitter,
per-call timeout implemented with simulation timers) and
:func:`with_retry`, the coroutine that executes an attempt factory under
a policy.  :class:`~repro.wsrf.client.WsrfClient` and the notification
redelivery path in :mod:`repro.wsn.base_notification` both drive their
retries through it.

Only transport-level faults (``DeliveryError``, including
:class:`CallTimeout`) are retried; SOAP faults are application answers
and propagate immediately.  Because a lost *response* still executed the
call server-side, retried operations are at-least-once — callers must be
idempotent or tolerate re-execution (all testbed operations are).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple, Type

from repro.net.network import DeliveryError


class CallTimeout(DeliveryError):
    """A request/response call exceeded its per-call timeout."""


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """How a client retries transport faults on request/response calls."""

    #: total attempts, including the first (1 = no retries)
    max_attempts: int = 3
    #: backoff before the first retry (s)
    base_delay_s: float = 0.05
    #: multiplier applied per subsequent retry
    backoff_factor: float = 2.0
    #: backoff ceiling (s)
    max_delay_s: float = 2.0
    #: uniform jitter as a fraction of the delay (0.1 → ±10%)
    jitter: float = 0.1
    #: per-attempt timeout in simulated seconds; None = wait forever
    timeout_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts!r}")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("backoff delays must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor!r}"
            )
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {self.jitter!r}")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError(f"timeout_s must be positive, got {self.timeout_s!r}")

    def delay_for(self, failures: int, rng=None) -> float:
        """Backoff after the *failures*-th consecutive failure (1-based).

        Exponential in the failure count, capped at ``max_delay_s``,
        with symmetric uniform jitter drawn from *rng* (deterministic
        when the caller seeds it; no jitter when *rng* is None).
        """
        if failures < 1:
            raise ValueError(f"failures is 1-based, got {failures!r}")
        delay = min(
            self.base_delay_s * self.backoff_factor ** (failures - 1),
            self.max_delay_s,
        )
        if rng is not None and self.jitter > 0.0 and delay > 0.0:
            delay *= 1.0 + self.jitter * (2.0 * float(rng.random()) - 1.0)
        return max(0.0, delay)

    def disabled(self) -> "RetryPolicy":
        """This policy with retries off (single attempt, no timeout)."""
        return RetryPolicy(
            max_attempts=1,
            base_delay_s=self.base_delay_s,
            backoff_factor=self.backoff_factor,
            max_delay_s=self.max_delay_s,
            jitter=self.jitter,
            timeout_s=None,
        )


def with_retry(
    env,
    policy: RetryPolicy,
    make_attempt: Callable[[], object],
    rng=None,
    retry_on: Tuple[Type[BaseException], ...] = (DeliveryError,),
    on_retry: Optional[Callable[[int, BaseException], None]] = None,
):
    """Coroutine: run ``make_attempt()`` under *policy* until it succeeds.

    *make_attempt* must return a **fresh** simulation coroutine per call
    (each attempt is an independent exchange).  Exceptions matching
    *retry_on* consume an attempt and back off; anything else
    propagates.  With ``policy.timeout_s`` set, an attempt that has not
    completed within the window is abandoned (its client-side process is
    killed; any server-side work it triggered keeps running detached)
    and counted as a :class:`CallTimeout` failure.

    ``on_retry(failures, exc)`` is called before each backoff sleep —
    the hook the network stats counter hangs off.
    """
    failures = 0
    while True:
        proc = env.process(make_attempt())
        try:
            if policy.timeout_s is None:
                value = yield proc
                return value
            yield env.any_of([proc, env.timeout(policy.timeout_s)])
            if proc.triggered:
                return proc.value
            proc.kill(f"call abandoned after {policy.timeout_s}s timeout")
            raise CallTimeout(
                f"no response within {policy.timeout_s}s (attempt {failures + 1})"
            )
        except retry_on as exc:
            failures += 1
            if failures >= policy.max_attempts:
                raise
            if on_retry is not None:
                on_retry(failures, exc)
            yield env.timeout(policy.delay_for(failures, rng))
