"""Simulated campus network.

This is the substitution for the paper's real testbed network (Windows
machines across the UVa campus).  It provides:

- :class:`Network` — a registry of named hosts joined by a full mesh of
  links with configurable latency and bandwidth, with per-host transmit
  serialization (concurrent sends from one NIC queue behind each other);
- two transports matching §4.1 of the paper:
  ``http`` (a connection handshake per request/exchange) and
  ``soap.tcp`` (WSE TCP messaging: persistent connections that pay the
  handshake once, then cheap framing — "the preferred way to move large
  files");
- one-way messaging (fire-and-forget, connection closed after send) in
  addition to request/response;
- byte/message accounting (:class:`NetworkStats`) used by the D-2/D-4/D-5
  benchmarks;
- opt-in deterministic link-fault injection (:mod:`repro.net.faults`)
  and the client-side :class:`RetryPolicy` (:mod:`repro.net.retry`)
  that recovers from it — the chaos-test substrate.

Calibration constants live in :class:`NetworkParams`; the defaults are
2004-era campus LAN values.
"""

from repro.net.params import NetworkParams
from repro.net.uri import Uri, UriError
from repro.net.network import DeliveryError, Network, NetworkStats
from repro.net.host import Host, PortInUse
from repro.net.faults import FaultInjector, LinkFaultPlan
from repro.net.retry import CallTimeout, RetryPolicy, with_retry

__all__ = [
    "CallTimeout",
    "DeliveryError",
    "FaultInjector",
    "Host",
    "LinkFaultPlan",
    "Network",
    "NetworkParams",
    "NetworkStats",
    "PortInUse",
    "RetryPolicy",
    "Uri",
    "UriError",
    "with_retry",
]
