"""Structured JSONL event log over the simulated clock.

Spans answer "how long did this hop take"; the event log answers "what
happened, in order".  Every record is one JSON object on one line with
a *deterministic field ordering* — the fixed prefix ``seq``, ``t``
(simulated seconds), ``kind``, followed by the payload fields in sorted
key order — so identical seeded runs emit byte-identical logs and CI
can diff them.

The log is driven entirely by simulated-time lifecycle (span opens and
closes, plus whatever callers ``emit``), never the wall clock, so
enabling it cannot perturb a run.  Read one back with
``python -m repro.obs tail FILE``.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any, Dict, List

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim import Environment

#: every record starts with exactly these fields, in this order
FIXED_FIELDS = ("seq", "t", "kind")


class ObsEventLog:
    """Append-only, deterministic structured event log for one sim."""

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.events: List[Dict[str, Any]] = []
        self._seq = 0

    def emit(self, kind: str, **fields: Any) -> Dict[str, Any]:
        """Record one event; payload fields are stored in sorted order."""
        for reserved in FIXED_FIELDS:
            if reserved in fields:
                raise ValueError(f"field {reserved!r} is reserved")
        self._seq += 1
        event: Dict[str, Any] = {"seq": self._seq, "t": self.env.now, "kind": kind}
        for key in sorted(fields):
            event[key] = fields[key]
        self.events.append(event)
        return event

    def __len__(self) -> int:
        return len(self.events)

    def to_jsonl(self) -> str:
        """One JSON object per line; insertion order preserves the
        deterministic field ordering (no ``sort_keys`` — ``seq``/``t``/
        ``kind`` lead every record by construction)."""
        return "".join(json.dumps(event) + "\n" for event in self.events)


def parse_jsonl(text: str) -> List[Dict[str, Any]]:
    """Parse a JSONL export back into event dicts.

    Raises ValueError naming the first offending line on corrupt input.
    """
    events: List[Dict[str, Any]] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            event = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"line {lineno}: not valid JSON ({exc.msg})") from None
        if not isinstance(event, dict) or "kind" not in event:
            raise ValueError(f"line {lineno}: not an event record (no 'kind')")
        events.append(event)
    return events
