"""The metrics registry: counters, gauges and simulated-time histograms.

One queryable namespace for every number the reproduction produces.
Metric identity is ``name`` plus a label set, rendered Prometheus-style
as ``net.messages{scheme=soap.tcp}``; values come either from direct
instrumentation (span durations feed histograms) or from *collectors*
that mirror the stack's pre-existing ad-hoc counters (``NetworkStats``,
resource-store op counters, notification-producer counters, ...) into
the registry at collection time — so reading the registry costs the
simulated world nothing.

Histograms record *simulated* durations (seconds of ``env.now``), never
wall-clock time, and keep every observation: no reservoir sampling, no
silent caps, so two identical seeded runs export identical quantiles.
"""

from __future__ import annotations

import math
from fnmatch import fnmatchcase
from typing import Dict, List, Mapping, Tuple, Union

LabelItems = Tuple[Tuple[str, str], ...]
MetricKey = Tuple[str, LabelItems]
Metric = Union["Counter", "Gauge", "Histogram"]


def labels_key(labels: Mapping[str, str]) -> LabelItems:
    """Canonical (sorted, stringified) form of a label mapping."""
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def format_metric_name(name: str, labels: Mapping[str, str]) -> str:
    """``net.messages{scheme=soap.tcp}`` — the catalog's display form."""
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels_key(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically growing count (messages, faults, retries)."""

    kind = "counter"
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount!r}")
        self.value += amount

    def set_total(self, value: float) -> None:
        """Mirror an externally maintained running total (collectors)."""
        self.value = value


class Gauge:
    """A point-in-time level (queue depth, live subscriptions)."""

    kind = "gauge"
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1) -> None:
        self.value += amount


class Histogram:
    """Every observation of a simulated-time quantity, with quantiles.

    Observations are kept in full (simulation runs are modest and the
    "no silent caps" rule forbids dropping the tail); quantiles use the
    nearest-rank definition so they are exact and deterministic.
    """

    kind = "histogram"
    __slots__ = ("values",)

    def __init__(self) -> None:
        self.values: List[float] = []

    def observe(self, value: float) -> None:
        self.values.append(value)

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def sum(self) -> float:
        return math.fsum(self.values)

    @property
    def max(self) -> float:
        return max(self.values) if self.values else 0.0

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile; ``q`` in [0, 1]."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"percentile q must be in [0, 1], got {q!r}")
        if not self.values:
            return 0.0
        ordered = sorted(self.values)
        rank = max(1, math.ceil(q * len(ordered)))
        return ordered[rank - 1]

    @property
    def p50(self) -> float:
        return self.percentile(0.50)

    @property
    def p95(self) -> float:
        return self.percentile(0.95)


class MetricsRegistry:
    """Get-or-create registry keyed by (name, labels)."""

    def __init__(self) -> None:
        self._metrics: Dict[MetricKey, Metric] = {}

    def _get(self, cls: type, name: str, labels: Mapping[str, str]) -> Metric:
        key = (name, labels_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls()
            self._metrics[key] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {format_metric_name(name, labels)!r} is a "
                f"{metric.kind}, not a {cls.__name__.lower()}"
            )
        return metric

    def counter(self, name: str, **labels: str) -> Counter:
        metric = self._get(Counter, name, labels)
        assert isinstance(metric, Counter)
        return metric

    def gauge(self, name: str, **labels: str) -> Gauge:
        metric = self._get(Gauge, name, labels)
        assert isinstance(metric, Gauge)
        return metric

    def histogram(self, name: str, **labels: str) -> Histogram:
        metric = self._get(Histogram, name, labels)
        assert isinstance(metric, Histogram)
        return metric

    # -- conveniences ----------------------------------------------------------

    def inc(self, name: str, amount: float = 1, **labels: str) -> None:
        self.counter(name, **labels).inc(amount)

    def observe(self, name: str, value: float, **labels: str) -> None:
        self.histogram(name, **labels).observe(value)

    # -- queries ---------------------------------------------------------------

    def query(self, pattern: str = "*") -> List[Tuple[str, Dict[str, str], Metric]]:
        """All metrics whose dotted name matches *pattern* (fnmatch).

        ``query("net.*")`` returns the network namespace; results are
        sorted by (name, labels) so iteration order is deterministic.
        """
        out: List[Tuple[str, Dict[str, str], Metric]] = []
        for (name, items) in sorted(self._metrics):
            if fnmatchcase(name, pattern):
                out.append((name, dict(items), self._metrics[(name, items)]))
        return out

    def value(self, name: str, **labels: str) -> float:
        """Current value of a counter/gauge (0 if never touched)."""
        metric = self._metrics.get((name, labels_key(labels)))
        if metric is None:
            return 0
        if isinstance(metric, Histogram):
            raise TypeError(f"{name!r} is a histogram; use query()")
        return metric.value

    def snapshot(self) -> List[Dict[str, object]]:
        """JSON-ready list of every metric, deterministically ordered."""
        out: List[Dict[str, object]] = []
        for name, labels, metric in self.query("*"):
            entry: Dict[str, object] = {
                "name": name,
                "labels": labels,
                "kind": metric.kind,
            }
            if isinstance(metric, Histogram):
                entry["count"] = metric.count
                entry["sum"] = metric.sum
                entry["p50"] = metric.p50
                entry["p95"] = metric.p95
                entry["max"] = metric.max
            else:
                entry["value"] = metric.value
            out.append(entry)
        return out
