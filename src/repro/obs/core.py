"""The Observability object: glue between the stack and the registry.

Attach one per simulation::

    obs = Observability(env)
    obs.attach(network)          # before services deploy

From then on every :class:`~repro.wsrf.tooling.WrapperService` deployed
on that network self-registers, instrumentation sites record spans, and
:meth:`collect` mirrors the stack's ad-hoc counters (``NetworkStats``,
resource-store op counters, notification producers, IIS, Scheduler
recoveries) into the metrics registry under the documented namespaces
(see ``docs/observability.md`` for the catalog).

With no Observability attached (``network.obs is None``) every
instrumentation site is a single ``None`` check: no span objects are
allocated, no metrics are touched, and — in either mode — no simulated
time is consumed, so enabling observability never changes a benchmark's
simulated results.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any, Dict, List, Mapping, Optional, Set

from repro.obs.eventlog import ObsEventLog
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import Span, SpanRecorder

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.network import Network, NetworkStats
    from repro.sim import Environment

EXPORT_FORMAT = 1


def obs_of(machine_or_network: Any) -> Optional["Observability"]:
    """The Observability attached to the fabric, if any (else None)."""
    network = getattr(machine_or_network, "network", machine_or_network)
    return getattr(network, "obs", None)


class Observability:
    """Metrics registry + span recorder + collector wiring for one sim."""

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.registry = MetricsRegistry()
        self.spans = SpanRecorder(env, self.registry)
        #: structured JSONL event log, None until enable_event_log()
        self.events: Optional[ObsEventLog] = None
        self._networks: List["Network"] = []
        self._wrappers: List[Any] = []

    # -- wiring ----------------------------------------------------------------

    def enable_event_log(self) -> ObsEventLog:
        """Mirror span lifecycle into a structured JSONL event log.

        Idempotent; returns the log.  Driven by simulated time only, so
        enabling it never changes a run's results or its JSON export
        (the log is a separate artifact, not part of snapshot()).
        """
        if self.events is None:
            self.events = ObsEventLog(self.env)
            self.spans.event_log = self.events
        return self.events

    def attach(self, network: "Network") -> "Observability":
        """Make *network* observed: sets ``network.obs`` to self."""
        network.obs = self
        if network not in self._networks:
            self._networks.append(network)
        return self

    def detach(self, network: "Network") -> None:
        """Disable observation of *network* (instrumentation goes dormant)."""
        if getattr(network, "obs", None) is self:
            network.obs = None

    def register_wrapper(self, wrapper: Any) -> None:
        """Adopt a deployed WrapperService as a collection source.

        Called automatically from ``WrapperService.__init__`` when the
        machine's network carries an Observability.
        """
        if wrapper not in self._wrappers:
            self._wrappers.append(wrapper)

    # -- span facade -----------------------------------------------------------

    def start_span(
        self,
        name: str,
        parent: Optional[Span] = None,
        message_id: Optional[str] = None,
        attrs: Optional[Mapping[str, object]] = None,
    ) -> Span:
        return self.spans.start(name, parent=parent, message_id=message_id, attrs=attrs)

    def finish(self, span: Span) -> None:
        self.spans.finish(span)

    # -- collection ------------------------------------------------------------

    def collect(self) -> MetricsRegistry:
        """Mirror every ad-hoc counter into the registry; returns it."""
        for network in self._networks:
            self._collect_network(network)
        seen_stores: Set[int] = set()
        seen_machines: Set[str] = set()
        for wrapper in self._wrappers:
            self._collect_wrapper(wrapper, seen_stores, seen_machines)
        return self.registry

    def _collect_network(self, network: "Network") -> None:
        stats: "NetworkStats" = network.stats
        reg = self.registry
        reg.counter("net.messages").set_total(stats.messages)
        reg.counter("net.bytes").set_total(stats.bytes)
        for scheme in sorted(stats.by_scheme):
            reg.counter("net.messages", scheme=scheme).set_total(stats.by_scheme[scheme])
        for category in sorted(stats.by_category):
            reg.counter("net.messages", category=category).set_total(
                stats.by_category[category]
            )
        for category in sorted(stats.bytes_by_category):
            reg.counter("net.bytes", category=category).set_total(
                stats.bytes_by_category[category]
            )
        reg.counter("net.drops").set_total(stats.drops)
        for (src, dst) in sorted(stats.drops_by_link):
            reg.counter("net.drops", link=f"{src}->{dst}").set_total(
                stats.drops_by_link[(src, dst)]
            )
        for kind in sorted(stats.faults):
            reg.counter("net.faults", kind=kind).set_total(stats.faults[kind])
        reg.counter("net.retries").set_total(stats.retries)
        reg.counter("net.redeliveries").set_total(stats.redeliveries)
        # Codec fast path (docs/performance.md): these metrics exist only
        # when an EnvelopeCache is attached, so default exports stay
        # byte-identical.
        codec = getattr(network, "codec", None)
        if codec is not None:
            reg.counter("perf.envelope_parse_hits").set_total(codec.parse_hits)
            reg.counter("perf.envelope_parse_misses").set_total(codec.parse_misses)
            reg.counter("perf.envelope_encode_hits").set_total(codec.encode_hits)
            reg.counter("perf.envelope_encode_misses").set_total(codec.encode_misses)

    def _collect_wrapper(
        self, wrapper: Any, seen_stores: Set[int], seen_machines: Set[str]
    ) -> None:
        reg = self.registry
        machine = wrapper.machine
        # The host label disambiguates same-named services deployed on
        # several machines (every node runs an ExecService): set_total
        # would otherwise let the last wrapper win.
        ids = {"service": wrapper.path, "host": machine.name}
        # Federation: zone-labelled metrics.  The zone tag exists only on
        # wrappers a federated Testbed assembled, so default (single-site)
        # exports stay byte-identical.
        zone = getattr(wrapper, "zone", None)
        if zone is not None:
            ids["zone"] = zone
        reg.counter("wsrf.invocations", **ids).set_total(wrapper.invocations)
        reg.counter("wsrf.faults_returned", **ids).set_total(wrapper.faults_returned)
        store = wrapper.store
        if id(store) not in seen_stores:
            seen_stores.add(id(store))
            reg.counter("db.loads", **ids).set_total(store.loads)
            reg.counter("db.saves", **ids).set_total(store.saves)
            reg.counter("db.scans", **ids).set_total(store.scans)
            # Performance-layer cache effectiveness (CachedResourceStore
            # only — with perf off these metrics don't exist at all, so
            # default exports stay byte-identical).
            hits = getattr(store, "hits", None)
            if hits is not None:
                reg.counter("perf.cache_hits", **ids).set_total(int(hits))
                reg.counter("perf.cache_misses", **ids).set_total(
                    int(getattr(store, "misses", 0))
                )
            # Codec fast path: decode-cache effectiveness, present only
            # when the perf layer attached a DecodeCache to this store.
            decode_cache = getattr(store, "decode_cache", None)
            if decode_cache is not None:
                reg.counter("perf.decode_cache_hits", **ids).set_total(
                    decode_cache.hits
                )
                reg.counter("perf.decode_cache_misses", **ids).set_total(
                    decode_cache.misses
                )
        if getattr(wrapper, "perf", None) is not None:
            reg.counter("perf.loads_elided", **ids).set_total(
                int(getattr(wrapper, "loads_elided", 0))
            )
            reg.counter("perf.writes_elided", **ids).set_total(
                int(getattr(wrapper, "writes_elided", 0))
            )
            nis_elided = getattr(wrapper, "nis_polls_elided", None)
            if nis_elided is not None:
                reg.counter("perf.nis_polls_elided", **ids).set_total(int(nis_elided))
        producer = getattr(wrapper, "notification_producer", None)
        if producer is not None:
            reg.counter("wsn.notifications_sent", **ids).set_total(
                producer.notifications_sent
            )
            reg.counter("wsn.redeliveries", **ids).set_total(producer.redeliveries)
            reg.counter("wsn.dropped_subscribers", **ids).set_total(
                len(producer.dropped_subscribers)
            )
            reg.gauge("wsn.subscriptions", **ids).set(len(producer.subscriptions))
            reg.gauge("wsn.topics_seen", **ids).set(len(producer.topics_seen))
            reg.gauge("wsn.topics_truncated", **ids).set(
                1 if producer.topics_truncated else 0
            )
            reg.counter("wsn.topics_dropped", **ids).set_total(producer.topics_dropped)
            batcher = getattr(producer, "batcher", None)
            if batcher is not None:
                reg.counter("wsn.batches_sent", **ids).set_total(batcher.batches_sent)
                reg.counter("wsn.notifications_batched", **ids).set_total(
                    batcher.notifications_batched
                )
                reg.gauge("wsn.batch_max_size", **ids).set(batcher.max_batch_size)
        recoveries = getattr(wrapper, "recoveries_announced", None)
        if recoveries is not None:
            reg.counter("scheduler.recoveries", **ids).set_total(recoveries)
        # Crash-restart durability counters (docs/durability.md): set
        # lazily by WrapperService.restore / wsrf_recover, so runs with
        # no restarts export byte-identically to pre-durability runs.
        restarts = getattr(wrapper, "restarts", None)
        if restarts is not None:
            reg.counter("host.restarts", **ids).set_total(restarts)
        readopted = getattr(wrapper, "jobsets_readopted", None)
        if readopted is not None:
            reg.counter("scheduler.jobsets_readopted", **ids).set_total(readopted)
        # Federation counters (docs/federation.md), set lazily by the
        # scheduler's cross-zone paths and the aggregator catalog.
        stolen = getattr(wrapper, "jobsets_stolen", None)
        if stolen is not None:
            reg.counter("scheduler.jobsets_stolen", **ids).set_total(stolen)
        cross_zone = getattr(wrapper, "cross_zone_dispatches", None)
        if cross_zone is not None:
            reg.counter("scheduler.cross_zone_dispatches", **ids).set_total(
                cross_zone
            )
        refreshes = getattr(wrapper, "catalog_refreshes", None)
        if refreshes is not None:
            reg.counter("federation.catalog_refreshes", **ids).set_total(refreshes)
        stale_served = getattr(wrapper, "catalog_stale_served", None)
        if stale_served is not None:
            reg.counter("federation.catalog_stale_served", **ids).set_total(
                stale_served
            )
        if machine.name not in seen_machines:
            seen_machines.add(machine.name)
            reg.counter("iis.requests_served", host=machine.name).set_total(
                machine.iis.requests_served
            )
            reg.gauge("iis.queued_requests", host=machine.name).set(
                machine.iis.queued_requests
            )

    # -- export ----------------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Collect, then return the full JSON-ready state."""
        self.collect()
        return {
            "meta": {
                "format": EXPORT_FORMAT,
                "now": self.env.now,
                "spans": len(self.spans.spans),
                "open_spans": len(self.spans.open_spans()),
            },
            "metrics": self.registry.snapshot(),
            "spans": self.spans.snapshot(),
        }

    def export_json(self) -> str:
        """Deterministic JSON: identical seeded runs export identical bytes."""
        return json.dumps(self.snapshot(), sort_keys=True, indent=1)
