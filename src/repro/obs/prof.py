"""Wall-clock profiling of the simulator's own host CPU cost.

The rest of ``repro.obs`` observes *simulated* time.  This module
measures the *real* time the host spends running a scenario, attributed
to the same subsystem-stage taxonomy the span layer uses — so a
simulated-time span breakdown and a wall-clock profile can be joined by
stage name in one report.  This is the measurement layer the ROADMAP's
"make the simulator itself fast" work is judged against: events/sec is
what caps how large a Fig. 3-style scenario we can afford to simulate.

Attribution model: the simulation is single-threaded and every bit of
host work happens synchronously inside exactly one ``Environment.step``
call, so a stack of open regions is a correct profiler.  ``enter``
charges the elapsed time since the previous mark to the innermost open
region and pushes; ``exit`` charges and pops.  Self time is kept per
*path* (the tuple of open stage names), so the snapshot can render both
a flame-style top-down tree and a flat per-stage self/cumulative table.

Simulation coroutines suspend and interleave, so bracketing a whole
generator with enter/exit would misattribute other processes' work to
it.  :meth:`WallClockProfiler.wrap` solves this: it re-enters the stage
on every resumption and exits on every suspension, charging only the
host time the wrapped generator itself burns between yields.

Disabled (the default), the profiler costs nothing: every site guards
on ``prof is None`` exactly like the ``network.obs`` pattern, and the
generator-heavy hot paths return their inner generator *unwrapped* —
no extra frame, no extra work.  Enabled, it reads the wall clock but
never touches the simulation (no events, no ``env`` access), so
simulated results stay byte-identical (asserted by
``benchmarks/bench_wallclock.py``).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Callable, Dict, Generator, Iterator, List, Optional, Tuple

#: the stage names the instrumentation sites use, in pipeline order;
#: shared with the simulated-time span taxonomy (docs/observability.md)
PROFILE_STAGES = (
    "sim.dispatch",    # Environment.step callback dispatch (the root)
    "net.request",     # Network.request coroutine (repro.net)
    "net.oneway",      # Network.send_one_way + detached delivery
    "wsrf.dispatch",   # WrapperService.handle_soap (repro.wsrf)
    "soap.encode",     # SoapEnvelope.serialize (repro.soap/repro.xmlx)
    "soap.parse",      # SoapEnvelope.deserialize
    "db.load",         # resource-store point loads (repro.db)
    "db.save",         # resource-store saves
    "wsn.publish",     # notification fan-out (repro.wsn)
)

#: bump when the snapshot shape changes
PROFILE_FORMAT = 1


def _default_clock() -> float:
    # The one sanctioned wall-clock read in the tree: wsrfcheck DET001
    # allowlists this file (profiling real time is this module's job);
    # everywhere else perf_counter is still flagged.
    return time.perf_counter()


class _Node:
    """Accumulated cost of one stage *path* (a stack of stage names)."""

    __slots__ = ("calls", "self_s")

    def __init__(self) -> None:
        self.calls = 0
        self.self_s = 0.0


class WallClockProfiler:
    """Stack-based wall-clock profiler over the shared stage taxonomy.

    Construct one per testbed (``Testbed(profile=True)`` does) and hang
    it on ``env.prof`` / ``network.prof``; instrumentation sites guard
    on it being non-None.  *clock* is injectable for deterministic unit
    tests; it defaults to ``time.perf_counter``.
    """

    def __init__(self, clock: Optional[Callable[[], float]] = None) -> None:
        self._clock: Callable[[], float] = clock or _default_clock
        self._stack: List[str] = []
        self._path: Tuple[str, ...] = ()
        self._nodes: Dict[Tuple[str, ...], _Node] = {}
        self._last_mark: Optional[float] = None
        self._first_mark: Optional[float] = None
        self._last_seen = 0.0

    # -- recording -------------------------------------------------------------

    def _mark(self) -> None:
        """Charge time since the previous mark to the innermost region."""
        now = self._clock()
        if self._first_mark is None:
            self._first_mark = now
        elif self._stack and self._last_mark is not None:
            self._nodes[self._path].self_s += now - self._last_mark
        self._last_mark = now
        self._last_seen = now

    def enter(self, stage: str) -> None:
        """Open *stage* nested under the current innermost region."""
        self._mark()
        self._stack.append(stage)
        self._path = self._path + (stage,)
        node = self._nodes.get(self._path)
        if node is None:
            node = self._nodes[self._path] = _Node()
        node.calls += 1

    def exit(self) -> None:
        """Close the innermost region, charging it the elapsed time."""
        if not self._stack:
            raise ValueError("profiler exit() with no open region")
        self._mark()
        self._stack.pop()
        self._path = self._path[:-1]

    @contextmanager
    def region(self, stage: str) -> Iterator[None]:
        """``with prof.region("soap.encode"): ...`` around synchronous work."""
        self.enter(stage)
        try:
            yield
        finally:
            self.exit()

    def wrap(
        self, stage: str, gen: Generator[Any, Any, Any]
    ) -> Generator[Any, Any, Any]:
        """Delegate to *gen*, bracketing every resumption with *stage*.

        Each ``send``/``throw`` into the wrapper re-enters the stage and
        exits when the inner generator suspends again, so interleaved
        processes never get charged each other's time.  Thrown-in
        exceptions (``Interrupt``, ``GeneratorExit`` from ``close()``)
        are forwarded to the inner generator; its return value is the
        wrapper's return value.
        """
        send_value: Any = None
        throw_exc: Optional[BaseException] = None
        while True:
            self.enter(stage)
            try:
                if throw_exc is not None:
                    exc, throw_exc = throw_exc, None
                    item = gen.throw(exc)
                else:
                    item = gen.send(send_value)
            except StopIteration as stop:
                return stop.value
            finally:
                self.exit()
            try:
                send_value = yield item
            except BaseException as exc:  # kill/interrupt: forward inward
                send_value = None
                throw_exc = exc

    def reset(self) -> None:
        """Discard all recorded data (keeps the clock)."""
        self._stack = []
        self._path = ()
        self._nodes = {}
        self._last_mark = None
        self._first_mark = None
        self._last_seen = 0.0

    # -- reporting -------------------------------------------------------------

    def busy_s(self) -> float:
        """Total wall-clock time attributed to any region."""
        return sum(node.self_s for node in self._nodes.values())

    def wall_s(self) -> float:
        """Wall-clock span from the first mark to the last."""
        if self._first_mark is None:
            return 0.0
        return self._last_seen - self._first_mark

    def stage_calls(self, stage: str) -> int:
        """Total times *stage* was entered, over every path."""
        return sum(
            node.calls for path, node in self._nodes.items() if path[-1] == stage
        )

    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready profile: meta, counters, meters, stage table, tree.

        ``stages`` is the flat self/cumulative table: per stage, *self*
        sums the paths ending in it and *cum* sums every path containing
        it (each path counted once, so recursion cannot double-count).
        ``tree`` is the flame-style top-down aggregation in path order.
        ``meters`` are throughput rates against busy time — the host
        seconds actually attributed to the instrumented subsystems.
        """
        busy = self.busy_s()
        nodes = self._nodes

        tree: List[Dict[str, Any]] = []
        for path in sorted(nodes):
            node = nodes[path]
            cum = sum(
                other.self_s
                for other_path, other in nodes.items()
                if other_path[: len(path)] == path
            )
            tree.append(
                {
                    "path": list(path),
                    "calls": node.calls,
                    "self_s": node.self_s,
                    "cum_s": cum,
                }
            )

        stages: List[Dict[str, Any]] = []
        for stage in sorted({path[-1] for path in nodes}):
            self_s = sum(n.self_s for p, n in nodes.items() if p[-1] == stage)
            cum_s = sum(n.self_s for p, n in nodes.items() if stage in p)
            stages.append(
                {
                    "stage": stage,
                    "calls": self.stage_calls(stage),
                    "self_s": self_s,
                    "cum_s": cum_s,
                    "self_share": (self_s / busy) if busy > 0 else 0.0,
                }
            )
        stages.sort(key=lambda entry: (-float(entry["self_s"]), str(entry["stage"])))

        counters = {
            "events": self.stage_calls("sim.dispatch"),
            "envelopes_encoded": self.stage_calls("soap.encode"),
            "envelopes_parsed": self.stage_calls("soap.parse"),
            "store_loads": self.stage_calls("db.load"),
            "store_saves": self.stage_calls("db.save"),
        }

        def rate(count: int) -> float:
            return (count / busy) if busy > 0 else 0.0

        meters = {
            "events_per_s": rate(counters["events"]),
            "envelopes_per_s": rate(
                counters["envelopes_encoded"] + counters["envelopes_parsed"]
            ),
            "store_ops_per_s": rate(
                counters["store_loads"] + counters["store_saves"]
            ),
        }

        return {
            "meta": {
                "format": PROFILE_FORMAT,
                "wall_s": self.wall_s(),
                "busy_s": busy,
                "open_regions": len(self._stack),
            },
            "counters": counters,
            "meters": meters,
            "stages": stages,
            "tree": tree,
        }
