"""Text dashboard over an observability snapshot.

All renderers operate on the JSON-ready snapshot dict (the output of
:meth:`Observability.snapshot` or a parsed export file), so the CLI can
render either a live run or a ``.json`` artifact from CI.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence

Snapshot = Dict[str, Any]

#: the Fig. 1 wrapper pipeline, in dispatch order
PIPELINE_STAGES = (
    "wsrf.dispatch.queue",
    "wsrf.dispatch.epr_resolve",
    "wsrf.dispatch.db_load",
    "wsrf.dispatch.method",
    "wsrf.dispatch.db_save",
)


def load_snapshot(text: str) -> Snapshot:
    snapshot = json.loads(text)
    if not isinstance(snapshot, dict) or "metrics" not in snapshot:
        raise ValueError("not an observability export (no 'metrics' key)")
    return snapshot


def _table(headers: Sequence[str], rows: List[Sequence[object]]) -> List[str]:
    cells = [[str(h) for h in headers]] + [[_fmt(v) for v in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = ["  ".join(cell.ljust(w) for cell, w in zip(cells[0], widths))]
    lines.append("-" * len(lines[0]))
    for row in cells[1:]:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return lines


def _fmt(value: object) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return f"{value:,.3f}" if abs(value) >= 0.001 or value == 0 else f"{value:.6f}"
    return str(value)


def _metric_rows(snapshot: Snapshot, prefix: str) -> List[Sequence[object]]:
    rows: List[Sequence[object]] = []
    for entry in snapshot["metrics"]:
        name = entry["name"]
        if not name.startswith(prefix):
            continue
        labels = ",".join(f"{k}={v}" for k, v in sorted(entry["labels"].items()))
        if entry["kind"] == "histogram":
            rows.append(
                [name, labels, entry["count"],
                 f"p50={entry['p50'] * 1000:.3f}ms p95={entry['p95'] * 1000:.3f}ms "
                 f"max={entry['max'] * 1000:.3f}ms"]
            )
        else:
            rows.append([name, labels, entry["value"], entry["kind"]])
    return rows


def render_pipeline_breakdown(snapshot: Snapshot) -> str:
    """The Fig. 1 dispatch-stage table, aggregated over all services."""
    by_stage: Dict[str, Dict[str, float]] = {}
    for entry in snapshot["metrics"]:
        if entry["kind"] != "histogram":
            continue
        stage = entry["name"].removesuffix("_s")
        if stage not in PIPELINE_STAGES and stage != "wsrf.dispatch":
            continue
        agg = by_stage.setdefault(
            stage, {"count": 0, "sum": 0.0, "p50": 0.0, "p95": 0.0, "max": 0.0}
        )
        agg["count"] += entry["count"]
        agg["sum"] += entry["sum"]
        # label-split histograms: keep the worst quantiles seen
        agg["p50"] = max(agg["p50"], entry["p50"])
        agg["p95"] = max(agg["p95"], entry["p95"])
        agg["max"] = max(agg["max"], entry["max"])
    if not by_stage:
        return "(no wsrf.dispatch spans recorded)"
    rows: List[Sequence[object]] = []
    ordered = [s for s in PIPELINE_STAGES if s in by_stage]
    for stage in ordered + (["wsrf.dispatch"] if "wsrf.dispatch" in by_stage else []):
        agg = by_stage[stage]
        rows.append(
            [stage, int(agg["count"]), agg["sum"], agg["p50"] * 1000,
             agg["p95"] * 1000, agg["max"] * 1000]
        )
    lines = ["== Fig. 1 pipeline-stage breakdown (simulated time) =="]
    lines += _table(
        ["stage", "count", "total_s", "p50_ms", "p95_ms", "max_ms"], rows
    )
    return "\n".join(lines)


def render_slowest_spans(snapshot: Snapshot, top: int = 10) -> str:
    """The top-N spans by simulated duration, with key attributes."""
    finished = [s for s in snapshot["spans"] if s["end"] is not None]
    finished.sort(key=lambda s: (-(s["end"] - s["start"]), s["id"]))
    shown = finished[:top]
    lines = [f"== top {len(shown)} slowest spans (of {len(finished)} finished) =="]
    if not shown:
        return lines[0] + "\n(none)"
    rows: List[Sequence[object]] = []
    for span in shown:
        attrs = span["attrs"]
        what = attrs.get("action") or attrs.get("operation") or attrs.get("topic") or ""
        where = attrs.get("service") or attrs.get("host") or attrs.get("source") or ""
        rows.append(
            [span["id"], span["name"], (span["end"] - span["start"]) * 1000,
             span["start"], where, what]
        )
    lines += _table(["id", "span", "dur_ms", "at_s", "where", "what"], rows)
    return "\n".join(lines)


def render_metric_tables(snapshot: Snapshot) -> str:
    """Per-namespace metric tables (net, wsrf, db, wsn, iis, scheduler)."""
    sections = []
    prefixes = sorted({str(e["name"]).split(".")[0] for e in snapshot["metrics"]})
    for prefix in prefixes:
        rows = [
            row for row in _metric_rows(snapshot, prefix + ".")
            if not str(row[0]).endswith("_s")  # histograms live in the breakdown
        ]
        if not rows:
            continue
        lines = [f"== {prefix} metrics =="]
        lines += _table(["metric", "labels", "value", "kind"], rows)
        sections.append("\n".join(lines))
    return "\n\n".join(sections) if sections else "(no metrics collected)"


def render_trace(snapshot: Snapshot, root_id: int, max_children: int = 12) -> str:
    """One span tree, indented; over-wide fan-outs are elided *loudly*."""
    by_parent: Dict[Optional[int], List[Dict[str, Any]]] = {}
    by_id: Dict[int, Dict[str, Any]] = {}
    for span in snapshot["spans"]:
        by_parent.setdefault(span["parent"], []).append(span)
        by_id[span["id"]] = span
    root = by_id.get(root_id)
    if root is None:
        return f"(no span #{root_id})"
    lines: List[str] = []

    def walk(span: Dict[str, Any], depth: int) -> None:
        dur = "open" if span["end"] is None else f"{(span['end'] - span['start']) * 1000:.3f}ms"
        attrs = span["attrs"]
        hint = attrs.get("action") or attrs.get("operation") or attrs.get("topic") or ""
        where = attrs.get("service") or attrs.get("source") or ""
        detail = " ".join(str(part) for part in (where, hint) if part)
        lines.append(
            f"{'  ' * depth}#{span['id']} {span['name']}  [{span['start']:.6f}s +{dur}]"
            + (f"  {detail}" if detail else "")
        )
        children = sorted(by_parent.get(span["id"], []), key=lambda s: (s["start"], s["id"]))
        for child in children[:max_children]:
            walk(child, depth + 1)
        if len(children) > max_children:
            lines.append(
                f"{'  ' * (depth + 1)}... {len(children) - max_children} more children elided"
            )

    walk(root, 0)
    return "\n".join(lines)


def render_profile(profile: Dict[str, Any]) -> str:
    """The wall-clock profile: meters, flat stage table, flame tree.

    *profile* is :meth:`repro.obs.prof.WallClockProfiler.snapshot` (or
    the ``profile`` key of an exported snapshot).  All times here are
    real host seconds, not simulated time.
    """
    meta = profile.get("meta", {})
    meters = profile.get("meters", {})
    counters = profile.get("counters", {})
    lines = [
        "== wall-clock profile (host time) ==",
        f"wall {meta.get('wall_s', 0.0):.3f}s, busy {meta.get('busy_s', 0.0):.3f}s "
        f"({counters.get('events', 0)} events)",
    ]
    meter_rows: List[Sequence[object]] = [
        ["events/s", meters.get("events_per_s", 0.0), counters.get("events", 0)],
        [
            "envelopes/s",
            meters.get("envelopes_per_s", 0.0),
            counters.get("envelopes_encoded", 0) + counters.get("envelopes_parsed", 0),
        ],
        [
            "store ops/s",
            meters.get("store_ops_per_s", 0.0),
            counters.get("store_loads", 0) + counters.get("store_saves", 0),
        ],
    ]
    lines += _table(["meter", "rate", "count"], meter_rows)

    stage_rows: List[Sequence[object]] = [
        [
            entry["stage"], entry["calls"], entry["self_s"] * 1000,
            entry["cum_s"] * 1000, f"{entry['self_share'] * 100:.1f}%",
        ]
        for entry in profile.get("stages", [])
    ]
    if stage_rows:
        lines.append("")
        lines += _table(
            ["stage", "calls", "self_ms", "cum_ms", "self%"], stage_rows
        )

    tree_rows: List[Sequence[object]] = [
        [
            "  " * (len(entry["path"]) - 1) + entry["path"][-1],
            entry["calls"], entry["self_s"] * 1000, entry["cum_s"] * 1000,
        ]
        for entry in profile.get("tree", [])
    ]
    if tree_rows:
        lines.append("")
        lines += _table(["stage tree", "calls", "self_ms", "cum_ms"], tree_rows)
    return "\n".join(lines)


def render_event_tail(events: List[Dict[str, Any]], n: int = 20) -> str:
    """The last *n* records of a structured event log, one per line."""
    shown = events[-n:] if n > 0 else []
    lines = [f"== event log tail ({len(shown)} of {len(events)} events) =="]
    if not shown:
        return lines[0] + "\n(none)"
    for event in shown:
        extras = " ".join(
            f"{key}={_fmt(value)}"
            for key, value in event.items()
            if key not in ("seq", "t", "kind")
        )
        lines.append(
            f"#{event.get('seq', '?')} [{float(event.get('t', 0.0)):.6f}s] "
            f"{event.get('kind', '?')}" + (f"  {extras}" if extras else "")
        )
    return "\n".join(lines)


def render_dashboard(snapshot: Snapshot, top: int = 10, trace: bool = True) -> str:
    """The full text dashboard: breakdown, slow spans, metric tables."""
    meta = snapshot.get("meta", {})
    parts = [
        f"observability dashboard — simulated t={meta.get('now', 0.0):.3f}s, "
        f"{meta.get('spans', len(snapshot['spans']))} spans "
        f"({meta.get('open_spans', 0)} still open)",
        render_pipeline_breakdown(snapshot),
        render_slowest_spans(snapshot, top=top),
        render_metric_tables(snapshot),
    ]
    if trace:
        finished_roots = [
            s for s in snapshot["spans"] if s["parent"] is None and s["end"] is not None
        ]
        if finished_roots:
            slowest = min(
                finished_roots, key=lambda s: (-(s["end"] - s["start"]), s["id"])
            )
            parts.append(
                "== slowest trace ==\n" + render_trace(snapshot, slowest["id"])
            )
    if "profile" in snapshot:
        parts.append(render_profile(snapshot["profile"]))
    return "\n\n".join(parts)
