"""``python -m repro.obs`` — the observability dashboard CLI.

Two modes:

- default: run the seeded demo workload (a small FIG-3-style job set on
  the testbed with observability attached) and render its dashboard;
  ``--json PATH`` additionally writes the deterministic JSON export.
- ``render FILE``: render a previously exported ``.json`` snapshot
  (e.g. the ``BENCH_fig3.json`` CI artifact).
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import Any, Dict, List, Optional

from repro.obs.dashboard import load_snapshot, render_dashboard


def run_demo(n_machines: int = 3, n_jobs: int = 4, seed: int = 11) -> Dict[str, Any]:
    """One seeded job-set run with observability on; returns the snapshot."""
    # Imported lazily: the obs package itself must not depend on gridapp.
    from repro.gridapp import FileRef, JobSpec, Testbed
    from repro.osim.programs import make_compute_program

    testbed = Testbed(
        n_machines=n_machines,
        seed=seed,
        machine_speeds=[1.0] * n_machines,
        observability=True,
    )
    testbed.programs.register(
        make_compute_program("work", 5.0, outputs={"out": b"x"})
    )
    client = testbed.make_client()
    spec = client.new_job_set()
    exe = client.add_program_binary(testbed.programs.get("work"))
    for i in range(n_jobs):
        spec.add(JobSpec(name=f"job{i}", executable=FileRef(exe, "job.exe")))
    outcome, _, _ = testbed.run_job_set(client, spec)
    if outcome != "completed":  # pragma: no cover - demo workload is fixed
        raise SystemExit(f"demo job set did not complete: {outcome!r}")
    testbed.settle()
    assert testbed.obs is not None
    return testbed.obs.snapshot()


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Render the observability dashboard for a seeded demo "
        "run, or for an exported snapshot (`render FILE`).",
    )
    sub = parser.add_subparsers(dest="command")

    demo = sub.add_parser("demo", help="run the seeded demo workload (default)")
    demo.add_argument("--machines", type=int, default=3)
    demo.add_argument("--jobs", type=int, default=4)
    demo.add_argument("--seed", type=int, default=11)
    demo.add_argument(
        "--json", metavar="PATH", default=None,
        help="also write the deterministic JSON export to PATH",
    )
    demo.add_argument("--top", type=int, default=10, help="slowest-span rows")

    render = sub.add_parser("render", help="render an exported snapshot file")
    render.add_argument("file", help="path to a JSON export")
    render.add_argument("--top", type=int, default=10, help="slowest-span rows")

    raw = list(argv if argv is not None else sys.argv[1:])
    if not raw or raw[0] not in ("demo", "render", "-h", "--help"):
        raw = ["demo"] + raw  # demo is the default subcommand
    args = parser.parse_args(raw)

    if args.command == "render":
        snapshot = load_snapshot(pathlib.Path(args.file).read_text(encoding="utf-8"))
        print(render_dashboard(snapshot, top=args.top))
        return 0

    snapshot = run_demo(n_machines=args.machines, n_jobs=args.jobs, seed=args.seed)
    print(render_dashboard(snapshot, top=args.top))
    if args.json is not None:
        import json

        text = json.dumps(snapshot, sort_keys=True, indent=1)
        pathlib.Path(args.json).write_text(text, encoding="utf-8")
        print(f"\nwrote JSON export: {args.json}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI smoke test
    raise SystemExit(main())
