"""``python -m repro.obs`` — the observability dashboard CLI.

Three modes:

- default: run the seeded demo workload (a small FIG-3-style job set on
  the testbed with observability attached) and render its dashboard;
  ``--json PATH`` additionally writes the deterministic JSON export,
  ``--events PATH`` the structured JSONL event log, and ``--profile``
  turns on the wall-clock profiler and appends its report.
- ``render FILE``: render a previously exported ``.json`` snapshot
  (e.g. the ``BENCH_fig3.json`` CI artifact).
- ``tail FILE``: print the last records of a JSONL event log export.

File-reading subcommands exit 2 with a one-line error on a missing or
corrupt file (never a raw traceback).
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import Any, Dict, List, Optional

from repro.obs.dashboard import load_snapshot, render_dashboard, render_event_tail
from repro.obs.eventlog import parse_jsonl

_COMMANDS = ("demo", "render", "tail")


def run_demo(
    n_machines: int = 3,
    n_jobs: int = 4,
    seed: int = 11,
    profile: bool = False,
    events_path: Optional[str] = None,
) -> Dict[str, Any]:
    """One seeded job-set run with observability on; returns the snapshot.

    With ``profile=True`` the wall-clock profile is attached under the
    snapshot's ``profile`` key (host timings — the one intentionally
    nondeterministic section; everything else stays byte-reproducible).
    """
    # Imported lazily: the obs package itself must not depend on gridapp.
    from repro.gridapp import FileRef, JobSpec, Testbed
    from repro.osim.programs import make_compute_program

    testbed = Testbed(
        n_machines=n_machines,
        seed=seed,
        machine_speeds=[1.0] * n_machines,
        observability=True,
        profile=profile,
    )
    assert testbed.obs is not None
    event_log = testbed.obs.enable_event_log()
    testbed.programs.register(
        make_compute_program("work", 5.0, outputs={"out": b"x"})
    )
    client = testbed.make_client()
    spec = client.new_job_set()
    exe = client.add_program_binary(testbed.programs.get("work"))
    for i in range(n_jobs):
        spec.add(JobSpec(name=f"job{i}", executable=FileRef(exe, "job.exe")))
    outcome, _, _ = testbed.run_job_set(client, spec)
    if outcome != "completed":  # pragma: no cover - demo workload is fixed
        raise SystemExit(f"demo job set did not complete: {outcome!r}")
    testbed.settle()
    if events_path is not None:
        pathlib.Path(events_path).write_text(
            event_log.to_jsonl(), encoding="utf-8"
        )
    snapshot = testbed.obs.snapshot()
    if profile:
        assert testbed.prof is not None
        snapshot["profile"] = testbed.prof.snapshot()
    return snapshot


def _read_file(path: str) -> Optional[str]:
    """File contents, or None after printing a clear error to stderr."""
    try:
        return pathlib.Path(path).read_text(encoding="utf-8")
    except OSError as exc:
        reason = exc.strerror or str(exc)
        print(f"error: cannot read {path!r}: {reason}", file=sys.stderr)
        return None


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Render the observability dashboard for a seeded demo "
        "run, an exported snapshot (`render FILE`), or the tail of a "
        "JSONL event log (`tail FILE`).",
    )
    sub = parser.add_subparsers(dest="command")

    demo = sub.add_parser("demo", help="run the seeded demo workload (default)")
    demo.add_argument("--machines", type=int, default=3)
    demo.add_argument("--jobs", type=int, default=4)
    demo.add_argument("--seed", type=int, default=11)
    demo.add_argument(
        "--json", metavar="PATH", default=None,
        help="also write the deterministic JSON export to PATH",
    )
    demo.add_argument(
        "--events", metavar="PATH", default=None,
        help="also write the structured JSONL event log to PATH",
    )
    demo.add_argument(
        "--profile", action="store_true",
        help="profile the host (wall-clock) cost and append the report",
    )
    demo.add_argument("--top", type=int, default=10, help="slowest-span rows")

    render = sub.add_parser("render", help="render an exported snapshot file")
    render.add_argument("file", help="path to a JSON export")
    render.add_argument("--top", type=int, default=10, help="slowest-span rows")

    tail = sub.add_parser("tail", help="show the tail of a JSONL event log")
    tail.add_argument("file", help="path to a JSONL event-log export")
    tail.add_argument("-n", type=int, default=20, help="events to show")

    raw = list(argv if argv is not None else sys.argv[1:])
    if not raw or raw[0] not in _COMMANDS + ("-h", "--help"):
        raw = ["demo"] + raw  # demo is the default subcommand
    args = parser.parse_args(raw)

    if args.command == "render":
        text = _read_file(args.file)
        if text is None:
            return 2
        try:
            snapshot = load_snapshot(text)
        except ValueError as exc:
            print(
                f"error: {args.file!r} is not an observability export: {exc}",
                file=sys.stderr,
            )
            return 2
        print(render_dashboard(snapshot, top=args.top))
        return 0

    if args.command == "tail":
        text = _read_file(args.file)
        if text is None:
            return 2
        try:
            events = parse_jsonl(text)
        except ValueError as exc:
            print(
                f"error: {args.file!r} is not a JSONL event log: {exc}",
                file=sys.stderr,
            )
            return 2
        print(render_event_tail(events, n=args.n))
        return 0

    snapshot = run_demo(
        n_machines=args.machines,
        n_jobs=args.jobs,
        seed=args.seed,
        profile=args.profile,
        events_path=args.events,
    )
    print(render_dashboard(snapshot, top=args.top))
    if args.events is not None:
        print(f"\nwrote JSONL event log: {args.events}")
    if args.json is not None:
        import json

        text = json.dumps(snapshot, sort_keys=True, indent=1)
        pathlib.Path(args.json).write_text(text, encoding="utf-8")
        print(f"\nwrote JSON export: {args.json}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI smoke test
    raise SystemExit(main())
