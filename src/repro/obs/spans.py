"""Correlated message spans over the simulated clock.

One logical invocation crosses many hops — client serialize, link
transit, IIS dispatch, the wrapper's Fig. 1 pipeline, broker fan-out —
and each hop records a :class:`Span`.  Correlation rides the
WS-Addressing ``MessageID`` the stack already emits: the sender opens a
span registered under the message id, and every layer that later sees
the same id (the network fabric, IIS, the WSRF wrapper) parents its own
span to the innermost still-open span for that id.  Responses need no
registration — ``RelatesTo`` correlation is implicit because the reply
is handled inside the requester's still-open span.

Spans are allocated only when an :class:`~repro.obs.core.Observability`
is attached to the network (instrumentation sites guard on ``obs is
None``), cost zero simulated time, and take all timestamps from
``env.now`` — never the wall clock — so recording is invisible to the
simulation and byte-reproducible across seeded runs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Mapping, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.eventlog import ObsEventLog
    from repro.obs.metrics import MetricsRegistry
    from repro.sim import Environment

#: span attributes that become histogram labels when the span closes;
#: everything else (message ids, EPRs) is too high-cardinality to index
METRIC_LABELS = ("service", "host", "scheme", "category", "operation", "leg", "kind")


class Span:
    """One timed hop of a logical invocation."""

    __slots__ = (
        "span_id", "parent_id", "name", "start", "end", "attrs", "message_id",
        "detached",
    )

    def __init__(
        self,
        span_id: int,
        parent_id: Optional[int],
        name: str,
        start: float,
        message_id: Optional[str],
        attrs: Dict[str, object],
    ) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start = start
        self.end: Optional[float] = None
        self.attrs = attrs
        self.message_id = message_id
        #: ownership moved to a detached process (a handed-off one-way
        #: send): an ancestor's finish_subtree must not close it
        self.detached = False

    @property
    def finished(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> Optional[float]:
        return None if self.end is None else self.end - self.start

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f"{self.duration:.6f}s" if self.finished else "open"
        return f"<Span #{self.span_id} {self.name} {state}>"


class SpanRecorder:
    """Append-only store of spans plus the message-id correlation table."""

    def __init__(self, env: "Environment", registry: Optional["MetricsRegistry"] = None) -> None:
        self.env = env
        self.registry = registry
        self.spans: List[Span] = []
        self._by_id: Dict[int, Span] = {}
        #: insertion-ordered index of OPEN spans (subset of ``spans``),
        #: so subtree closes scan live spans instead of the whole run
        self._open: Dict[int, Span] = {}
        #: innermost-last stacks of OPEN spans, keyed by message id
        self._open_by_message: Dict[str, List[Span]] = {}
        self._next_id = 1
        #: optional structured event log mirroring span lifecycle
        self.event_log: Optional["ObsEventLog"] = None

    # -- recording -------------------------------------------------------------

    def start(
        self,
        name: str,
        parent: Optional[Span] = None,
        message_id: Optional[str] = None,
        attrs: Optional[Mapping[str, object]] = None,
    ) -> Span:
        """Open a span.

        Parentage: an explicit *parent* wins; otherwise, if *message_id*
        names a registered open span, the innermost one is the parent.
        When *message_id* is given the new span is itself registered
        under it (and deregistered on finish), which is what chains
        client → net → IIS → wrapper spans without any layer passing
        span objects to the next.
        """
        if parent is None and message_id is not None:
            stack = self._open_by_message.get(message_id)
            if stack:
                parent = stack[-1]
        span = Span(
            span_id=self._next_id,
            parent_id=None if parent is None else parent.span_id,
            name=name,
            start=self.env.now,
            message_id=message_id,
            attrs=dict(attrs) if attrs else {},
        )
        self._next_id += 1
        self.spans.append(span)
        self._by_id[span.span_id] = span
        self._open[span.span_id] = span
        if message_id is not None:
            self._open_by_message.setdefault(message_id, []).append(span)
        if self.event_log is not None:
            self.event_log.emit(
                "span.start", span=span.span_id, name=name, parent=span.parent_id
            )
        return span

    def finish(self, span: Span) -> None:
        """Close *span* (idempotent) and feed its duration histogram."""
        if span.end is not None:
            return
        span.end = self.env.now
        self._open.pop(span.span_id, None)
        if span.message_id is not None:
            stack = self._open_by_message.get(span.message_id)
            if stack and span in stack:
                stack.remove(span)
                if not stack:
                    del self._open_by_message[span.message_id]
        if self.registry is not None:
            labels = {
                key: str(span.attrs[key]) for key in METRIC_LABELS if key in span.attrs
            }
            self.registry.observe(f"{span.name}_s", span.end - span.start, **labels)
        if self.event_log is not None:
            self.event_log.emit(
                "span.finish",
                span=span.span_id,
                name=span.name,
                dur=span.end - span.start,
            )

    def finish_subtree(self, root: Span) -> None:
        """Close *root* and any still-open owned descendants.

        A fan-out send may outlive the dispatch that spawned it: its
        ``net.oneway`` span is *detached* (ownership handed to the
        delivery process), so an ancestor closing its subtree skips
        that span and everything under it — the new owner closes it
        when the handler finishes.  The root itself always closes, even
        if detached (that IS the owner's close).
        """
        for span in list(self._open.values()):
            if span.end is None and self._owned_descendant(span, root):
                self.finish(span)
        self.finish(root)

    def _owned_descendant(self, span: Span, ancestor: Span) -> bool:
        seen = 0
        current: Optional[Span] = span
        while current is not None and seen < len(self._by_id) + 1:
            if current.span_id == ancestor.span_id:
                return True
            if current.detached and current.end is None:
                return False  # shielded: a live handed-off send en route
            seen += 1
            current = (
                None if current.parent_id is None else self._by_id.get(current.parent_id)
            )
        return False

    # -- queries ---------------------------------------------------------------

    def get(self, span_id: int) -> Optional[Span]:
        return self._by_id.get(span_id)

    def open_spans(self) -> List[Span]:
        return list(self._open.values())

    def children(self, span: Span) -> List[Span]:
        return [s for s in self.spans if s.parent_id == span.span_id]

    def roots(self) -> List[Span]:
        return [s for s in self.spans if s.parent_id is None]

    def named(self, name: str) -> List[Span]:
        return [s for s in self.spans if s.name == name]

    def slowest(self, n: int = 10) -> List[Span]:
        """The *n* longest finished spans (ties broken by span id)."""
        finished = [s for s in self.spans if s.end is not None]
        finished.sort(key=lambda s: (-(s.end - s.start), s.span_id))  # type: ignore[operator]
        return finished[:n]

    def snapshot(self) -> List[Dict[str, object]]:
        """JSON-ready list of every span, in span-id order."""
        out: List[Dict[str, object]] = []
        for span in self.spans:
            out.append(
                {
                    "id": span.span_id,
                    "parent": span.parent_id,
                    "name": span.name,
                    "start": span.start,
                    "end": span.end,
                    "attrs": {k: span.attrs[k] for k in sorted(span.attrs)},
                }
            )
        return out
