"""Unified observability: metrics registry + correlated message spans.

Quick start::

    from repro.obs import Observability

    obs = Observability(env)
    obs.attach(network)              # before deploying services
    ...run the workload...
    obs.collect()
    obs.registry.value("net.messages", scheme="soap.tcp")
    print(render_dashboard(obs.snapshot()))

See ``docs/observability.md`` for the namespace catalog and span model.
"""

from repro.obs.core import Observability, obs_of
from repro.obs.dashboard import (
    load_snapshot,
    render_dashboard,
    render_event_tail,
    render_metric_tables,
    render_pipeline_breakdown,
    render_profile,
    render_slowest_spans,
    render_trace,
)
from repro.obs.eventlog import ObsEventLog, parse_jsonl
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    format_metric_name,
)
from repro.obs.prof import PROFILE_STAGES, WallClockProfiler
from repro.obs.spans import METRIC_LABELS, Span, SpanRecorder

__all__ = [
    "METRIC_LABELS",
    "PROFILE_STAGES",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ObsEventLog",
    "Observability",
    "Span",
    "SpanRecorder",
    "WallClockProfiler",
    "format_metric_name",
    "load_snapshot",
    "obs_of",
    "parse_jsonl",
    "render_dashboard",
    "render_event_tail",
    "render_metric_tables",
    "render_pipeline_breakdown",
    "render_profile",
    "render_slowest_spans",
    "render_trace",
]
