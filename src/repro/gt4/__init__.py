"""GT4 interoperability — the paper's §6 next step, implemented.

"The overall goal of the UVaCG will be to seamlessly integrate Windows
machines (via WSRF.NET) and Linux/UNIX machines (via Globus Toolkit v4)
for the campus.  ...  We have recently begun testing interoperability
between WSRF.NET and the Globus Toolkit v4 (actually, GT 3.9.2)."

This package lets simulated Linux machines join the testbed:

- :class:`LinuxMachine` — a Linux node running the GT4 Java WS Core
  container (modeled with its own dispatch constants) and a fork-based
  process service instead of ProcSpawn;
- :class:`Gt4ExecutionService` — an Execution Service whose
  authentication is GSI-style: a signed X.509 token verified against
  the campus CA, with the subject mapped to a local account through the
  grid-mapfile (:meth:`repro.osim.users.UserAccounts.map_grid_credential`
  — the very mechanism §4.2 anticipates "in the future");
- testbed plumbing so the Scheduler transparently dispatches to either
  flavor: UsernameToken to Windows/WSRF.NET nodes, delegated X.509
  token to Linux/GT4 nodes.

Because both toolkits speak the same WSRF wire (that is the point of
the specifications), the *same* File System Service code deploys on
both; only hosting and authentication differ.
"""

from repro.gt4.machine import ForkSpawnService, Gt4Params, LinuxMachine
from repro.gt4.execution import Gt4ExecutionService

__all__ = ["ForkSpawnService", "Gt4ExecutionService", "Gt4Params", "LinuxMachine"]
