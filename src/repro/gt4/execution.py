"""The GT4-flavored Execution Service."""

from __future__ import annotations

from repro.gridapp.execution_service import ExecutionService
from repro.wsrf.basefaults import AuthenticationFault
from repro.wssec import SecurityError, UsernameToken, open_x509_security_header
from repro.xmlx import NS, QName

_WSSE_SECURITY = QName(NS.WSSE, "Security")


class Gt4ExecutionService(ExecutionService):
    """Execution Service with GSI-style authentication.

    Identical WSRF surface (Run/Kill/GetExitCode, Status/CpuTime RPs) —
    that is the interoperability claim — but the request's WS-Security
    header carries a *signed X.509 token*, not an encrypted username/
    password.  The service verifies it against the machine's trusted CA
    and resolves the subject through the grid-mapfile to a local
    account; the fork starter then runs the job as that account.

    This implements the paper's §4.2 anticipation: "we anticipate having
    either the ES or the ProcSpawn service be able to map 'grid
    credentials' to local user accounts in the future."
    """

    def _authenticate_request(self) -> UsernameToken:
        # Authentication failures are raised as typed AuthenticationFaults
        # (WS-BaseFaults) so callers can reconstruct them, rather than the
        # untyped soap:Server string a bare SecurityError would become.
        machine = self.machine
        header = self.wsrf.envelope.find_header(_WSSE_SECURITY)
        if header is None:
            raise AuthenticationFault(
                description="GT4 ES requires a wsse:Security header",
                timestamp=self.env.now,
            )
        ca = getattr(machine, "trusted_ca", None)
        if ca is None:
            raise AuthenticationFault(
                description=f"machine {machine.name!r} has no trusted CA configured",
                timestamp=self.env.now,
            )
        try:
            cert = open_x509_security_header(header, ca, now=self.env.now)
        except SecurityError as exc:
            raise AuthenticationFault(
                description=str(exc), timestamp=self.env.now
            ) from exc
        local_user = machine.users.resolve_grid_credential(cert.subject)
        if local_user is None:
            raise AuthenticationFault(
                description=(
                    f"subject {cert.subject!r} is not in the grid-mapfile of "
                    f"{machine.name!r}"
                ),
                timestamp=self.env.now,
            )
        # The fork starter only checks account existence; no password.
        return UsernameToken(local_user, "")
