"""Simulated Linux/GT4 machines."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.net import Network
from repro.osim.machine import Machine
from repro.osim.params import MachineParams
from repro.osim.procspawn import ProcSpawnService, SpawnError


@dataclass(frozen=True)
class Gt4Params(MachineParams):
    """GT4 Java WS Core constants.

    Contemporary measurements put the GT4 Java container's per-request
    overhead above IIS/ASP.NET's (JAX-RPC serialization, Axis dispatch)
    — reflected in a higher dispatch cost; fork() on Linux is much
    cheaper than CreateProcessAsUser with profile loading.
    """

    iis_dispatch_s: float = 0.0025  # the Java WS container's dispatch
    proc_spawn_s: float = 0.008  # fork+exec
    db_access_s: float = 0.0008


class ForkSpawnService(ProcSpawnService):
    """GT4's fork job starter.

    The container authenticated the grid credential already (GSI); the
    fork service only requires that the mapped local account exists.
    """

    service_name = "GT4 fork starter"

    def _authenticate(self, username: str, password: str) -> None:
        if not self.machine.users.exists(username):
            raise SpawnError(
                f"gridmap points at nonexistent local account {username!r}"
            )


class LinuxMachine(Machine):
    """A Linux node running the GT4 container.

    Mechanically the container reuses the worker-pool dispatch model of
    :class:`repro.osim.iis.IisServer` (exposed as ``self.container``);
    what differs is its constants, the fork-based process service, the
    POSIX filesystem root and the trusted CA used for GSI.
    """

    GRID_ROOT = "/var/uvacg"

    def __init__(
        self,
        network: Network,
        name: str,
        params: Optional[Gt4Params] = None,
        programs=None,
    ) -> None:
        super().__init__(network, name, params=params or Gt4Params(), programs=programs)
        # Replace ProcSpawn with the fork starter.
        self.procspawn.stop()
        self.procspawn = ForkSpawnService(self)
        self.procspawn.start()
        #: the Java WS Core container (same dispatch model, GT4 constants)
        self.container = self.iis
        self.fs.mkdir(self.GRID_ROOT)
        #: CA trusted for inbound GSI credentials; set at testbed assembly
        self.trusted_ca = None

    def add_gridmap_entry(self, subject_dn: str, local_user: str) -> None:
        """One line of /etc/grid-security/grid-mapfile."""
        self.users.map_grid_credential(subject_dn, local_user)
