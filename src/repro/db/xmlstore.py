"""XML-database resource store — the "Yukon" experiment of §5.

"For future versions of WSRF.NET, we are currently experimenting with
XML databases, such as Yukon, because they provide the ability to store
and run queries over unstructured data."  Here resources stay parsed
XML documents, so queries run structurally without per-row blob
deserialization; the D-3 benchmark measures the resulting crossover
against :class:`repro.db.resource_store.BlobResourceStore`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.db.resource_store import NoSuchResource, State, _STATE_TAG
from repro.soap import from_typed_element, to_typed_element
from repro.xmlx import Element, QName, parse, to_string, xpath_select


class XmlResourceStore:
    """Stores resource state as live XML documents, queryable in place."""

    def __init__(self) -> None:
        #: {service: {resource_id: Element}}
        self._docs: Dict[str, Dict[str, Element]] = {}
        self.loads = 0
        self.saves = 0
        self.scans = 0

    @staticmethod
    def _to_doc(state: State) -> Element:
        root = Element(_STATE_TAG)
        for key, value in state.items():
            qkey = key if isinstance(key, QName) else QName(key)
            root.append(to_typed_element(qkey, value))
        return root

    @staticmethod
    def _from_doc(doc: Element) -> State:
        return {child.tag: from_typed_element(child) for child in doc.children}

    def create(self, service: str, resource_id: str, state: State) -> None:
        bucket = self._docs.setdefault(service, {})
        if resource_id in bucket:
            raise ValueError(f"duplicate resource {service}/{resource_id}")
        bucket[resource_id] = self._to_doc(state)
        self.saves += 1

    def exists(self, service: str, resource_id: str) -> bool:
        return resource_id in self._docs.get(service, {})

    def load(self, service: str, resource_id: str) -> State:
        try:
            doc = self._docs[service][resource_id]
        except KeyError:
            raise NoSuchResource(f"{service}/{resource_id}") from None
        self.loads += 1
        return self._from_doc(doc)

    def save(self, service: str, resource_id: str, state: State) -> None:
        bucket = self._docs.get(service, {})
        if resource_id not in bucket:
            raise NoSuchResource(f"{service}/{resource_id}")
        bucket[resource_id] = self._to_doc(state)
        self.saves += 1

    def destroy(self, service: str, resource_id: str) -> None:
        bucket = self._docs.get(service, {})
        if resource_id not in bucket:
            raise NoSuchResource(f"{service}/{resource_id}")
        del bucket[resource_id]

    def list_ids(self, service: str) -> List[str]:
        return sorted(self._docs.get(service, {}))

    # -- checkpoint / restore ----------------------------------------------------------

    def snapshot(self) -> Dict[str, bytes]:
        """Checkpoint in the cross-backend ``{"service|rid": bytes}`` format."""
        out: Dict[str, bytes] = {}
        for service, bucket in self._docs.items():
            for resource_id, doc in bucket.items():
                key = f"{service}|{resource_id}"
                out[key] = to_string(doc).encode("utf-8")
        return out

    def restore(self, snap: Dict[str, bytes]) -> None:
        """Replace the entire store contents with *snap*."""
        self._docs = {}
        for key in sorted(snap):
            service, _, resource_id = key.partition("|")
            self._docs.setdefault(service, {})[resource_id] = parse(
                snap[key].decode("utf-8")
            )

    def scan_query(
        self,
        service: str,
        xpath: str,
        namespaces: Optional[Dict[str, str]] = None,
    ) -> List[Tuple[str, list]]:
        """Query every resource of *service* structurally (no reparse)."""
        self.scans += 1
        out: List[Tuple[str, list]] = []
        for resource_id, doc in self._docs.get(service, {}).items():
            hits = xpath_select(doc, xpath, namespaces)
            if hits:
                out.append((resource_id, hits))
        out.sort(key=lambda pair: pair[0])
        return out
