"""Miniature database layer.

WSRF.NET "implements WS-Resources using any ODBC compliant database";
state values are loaded from the database when a method is invoked and
saved back when it returns.  This package supplies that substrate:

- :mod:`repro.db.engine` — a tiny relational engine (typed columns,
  primary keys, secondary indexes, predicate queries);
- :mod:`repro.db.sql` — a small SQL dialect over the engine (SELECT /
  INSERT / UPDATE / DELETE with equality WHERE), standing in for ODBC;
- :mod:`repro.db.resource_store` — the blob-backed WS-Resource state
  store (state dicts serialized to XML bytes in a BLOB column), which
  reproduces §5's "binary, unstructured data ... makes it very difficult
  to query" behaviour;
- :mod:`repro.db.xmlstore` — the XML-database alternative the authors
  were "currently experimenting with" (Yukon): documents stay structured
  and are queryable with XPath.  Benchmark D-3 compares the two.
- :mod:`repro.db.cached_store` — the opt-in write-through cache the
  performance layer (``Testbed(perf=...)``) puts in front of the blob
  store; proven coherent against it in tests/test_perf_equivalence.py.

Every store backend exposes ``snapshot()`` / ``restore()`` in a shared
``{"service|resource_id": encoded-state-bytes}`` checkpoint format used
by the host crash-restart machinery (docs/durability.md).
"""

from repro.db.engine import Column, Database, DbError, Table
from repro.db.sql import SqlError, SqlResourceStore, execute_sql
from repro.db.resource_store import BlobResourceStore, DecodeCache, NoSuchResource
from repro.db.cached_store import CachedResourceStore
from repro.db.xmlstore import XmlResourceStore

__all__ = [
    "BlobResourceStore",
    "CachedResourceStore",
    "Column",
    "Database",
    "DbError",
    "DecodeCache",
    "NoSuchResource",
    "SqlError",
    "SqlResourceStore",
    "Table",
    "XmlResourceStore",
    "execute_sql",
]
