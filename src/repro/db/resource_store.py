"""Blob-backed WS-Resource state store (the WSRF.NET 1.1 design).

"Saving a service's Resources as binary, unstructured data is effective
for loading and storing, but makes it very difficult to query them in
the database" (§5).  This store reproduces that design: each resource's
state dict is serialized to an XML document and stored as a BLOB; point
loads are cheap, but any query must deserialize every blob.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.db.engine import Column, Database
from repro.soap import from_typed_element, to_typed_element
from repro.xmlx import NS, Element, QName, parse, to_string, xpath_select

_STATE_TAG = QName(NS.UVACG, "ResourceState")

State = Dict[QName, Any]


class NoSuchResource(KeyError):
    """Raised on load/save/destroy of an unknown resource."""


def encode_state(state: State) -> bytes:
    root = Element(_STATE_TAG)
    for key, value in state.items():
        qkey = key if isinstance(key, QName) else QName(key)
        root.append(to_typed_element(qkey, value))
    return to_string(root).encode("utf-8")


def decode_state(blob: bytes) -> State:
    root = parse(blob.decode("utf-8"))
    if root.tag != _STATE_TAG:
        raise ValueError(f"not a resource-state document: {root.tag}")
    return {child.tag: from_typed_element(child) for child in root.children}


class BlobResourceStore:
    """CRUD + (expensive) scan-query over serialized resource state."""

    TABLE = "resources"

    def __init__(self, db: Optional[Database] = None) -> None:
        self.db = db or Database()
        if self.TABLE not in self.db.tables:
            table = self.db.create_table(
                self.TABLE,
                [
                    Column("rid", "TEXT", primary_key=True),
                    Column("service", "TEXT", nullable=False),
                    Column("resource_id", "TEXT", nullable=False),
                    Column("state", "BLOB", nullable=False),
                ],
            )
            table.create_index("service")
        #: operation counters for the D-3 benchmark
        self.loads = 0
        self.saves = 0
        self.scans = 0

    @staticmethod
    def _key(service: str, resource_id: str) -> str:
        return f"{service}|{resource_id}"

    def create(self, service: str, resource_id: str, state: State) -> None:
        self.db.table(self.TABLE).insert(
            {
                "rid": self._key(service, resource_id),
                "service": service,
                "resource_id": resource_id,
                "state": encode_state(state),
            }
        )
        self.saves += 1

    def exists(self, service: str, resource_id: str) -> bool:
        return self.db.table(self.TABLE).get(self._key(service, resource_id)) is not None

    def load(self, service: str, resource_id: str) -> State:
        row = self.db.table(self.TABLE).get(self._key(service, resource_id))
        if row is None:
            raise NoSuchResource(f"{service}/{resource_id}")
        self.loads += 1
        return decode_state(row["state"])

    def save(self, service: str, resource_id: str, state: State) -> None:
        count = self.db.table(self.TABLE).update(
            {"state": encode_state(state)},
            equals={"rid": self._key(service, resource_id)},
        )
        if count == 0:
            raise NoSuchResource(f"{service}/{resource_id}")
        self.saves += 1

    def destroy(self, service: str, resource_id: str) -> None:
        count = self.db.table(self.TABLE).delete(
            equals={"rid": self._key(service, resource_id)}
        )
        if count == 0:
            raise NoSuchResource(f"{service}/{resource_id}")

    def list_ids(self, service: str) -> List[str]:
        rows = self.db.table(self.TABLE).select(
            equals={"service": service}, columns=["resource_id"]
        )
        return sorted(row["resource_id"] for row in rows)

    # -- checkpoint / restore ----------------------------------------------------------

    def snapshot(self) -> Dict[str, bytes]:
        """Checkpoint: ``{"service|resource_id": encoded state bytes}``.

        The format is backend-independent (every backend encodes state
        through :func:`encode_state`), so a snapshot taken from one
        store implementation restores into any other.
        """
        rows = self.db.table(self.TABLE).select()
        return {row["rid"]: bytes(row["state"]) for row in rows}

    def restore(self, snap: Dict[str, bytes]) -> None:
        """Replace the entire store contents with *snap*.

        Rows are rewritten directly — the D-3 ``loads``/``saves``
        counters track dispatch-path database work, and a host bounce
        is not dispatch work.
        """
        table = self.db.table(self.TABLE)
        table.delete()
        for rid in sorted(snap):
            service, _, resource_id = rid.partition("|")
            table.insert(
                {
                    "rid": rid,
                    "service": service,
                    "resource_id": resource_id,
                    "state": bytes(snap[rid]),
                }
            )

    def scan_query(
        self,
        service: str,
        xpath: str,
        namespaces: Optional[Dict[str, str]] = None,
    ) -> List[Tuple[str, list]]:
        """Query every resource of *service* — deserializing each blob.

        This is the §5 pain point made concrete: cost is O(total state
        size), not O(matches).
        """
        self.scans += 1
        out: List[Tuple[str, list]] = []
        rows = self.db.table(self.TABLE).select(equals={"service": service})
        for row in rows:
            doc = parse(row["state"].decode("utf-8"))
            hits = xpath_select(doc, xpath, namespaces)
            if hits:
                out.append((row["resource_id"], hits))
        out.sort(key=lambda pair: pair[0])
        return out
