"""Blob-backed WS-Resource state store (the WSRF.NET 1.1 design).

"Saving a service's Resources as binary, unstructured data is effective
for loading and storing, but makes it very difficult to query them in
the database" (§5).  This store reproduces that design: each resource's
state dict is serialized to an XML document and stored as a BLOB; point
loads are cheap, but any query must deserialize every blob.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.db.engine import Column, Database
from repro.soap import from_typed_element, to_typed_element
from repro.xmlx import NS, Element, QName, parse, to_string, xpath_select

_STATE_TAG = QName.of(NS.UVACG, "ResourceState")

State = Dict[QName, Any]


class NoSuchResource(KeyError):
    """Raised on load/save/destroy of an unknown resource."""


def encode_state(state: State) -> bytes:
    root = Element(_STATE_TAG)
    for key, value in state.items():
        qkey = key if isinstance(key, QName) else QName(key)
        root.append(to_typed_element(qkey, value))
    return to_string(root).encode("utf-8")


def _parse_state_tree(blob: bytes) -> Element:
    root = parse(blob.decode("utf-8"))
    if root.tag != _STATE_TAG:
        raise ValueError(f"not a resource-state document: {root.tag}")
    return root


def decode_state(blob: bytes) -> State:
    root = _parse_state_tree(blob)
    return {child.tag: from_typed_element(child) for child in root.children}


def _copy_value(value: Any) -> Any:
    """Isolation copy for a value produced by :func:`from_typed_element`.

    The typed-value universe is closed (soap/types.py): the only mutable
    shapes are dict, list and Element — everything else (str, int, float,
    bool, bytes, None, EndpointReference) is immutable and safe to share.
    """
    cls = type(value)
    if cls is dict:
        return {key: _copy_value(item) for key, item in value.items()}
    if cls is list:
        return [_copy_value(item) for item in value]
    if cls is Element:
        return value.copy()
    return value


class DecodeCache:
    """Content-addressed memo for :func:`decode_state` (docs/performance.md).

    Keyed on the immutable encoded blob bytes: identical bytes always
    decode to the same document, so the decoded state can be reused with
    no invalidation protocol at all — destroy/recreate and checkpoint
    restore change *which bytes a store serves*, never what bytes already
    seen mean.  Value isolation follows the same discipline as
    :class:`~repro.db.CachedResourceStore`: the cached state dict is
    never handed out — every load (hit or miss) returns a deep copy built
    by :func:`_copy_value`, so callers can mutate what they get without
    corrupting the cache.

    The table is bounded; past ``capacity`` distinct blobs the oldest
    entry is dropped (FIFO — the dispatch working set is a few dozen
    resources, so anything reasonable works).
    """

    __slots__ = ("capacity", "hits", "misses", "_states")

    def __init__(self, capacity: int = 512) -> None:
        if capacity < 1:
            raise ValueError("DecodeCache capacity must be >= 1")
        self.capacity = capacity
        #: cache effectiveness counters for the obs registry
        self.hits = 0
        self.misses = 0
        self._states: Dict[bytes, State] = {}

    def decode(self, blob: bytes) -> State:
        state = self._states.get(blob)
        if state is None:
            self.misses += 1
            root = _parse_state_tree(blob)
            state = {child.tag: from_typed_element(child) for child in root.children}
            if len(self._states) >= self.capacity:
                self._states.pop(next(iter(self._states)))
            self._states[blob] = state
        else:
            self.hits += 1
        return {key: _copy_value(item) for key, item in state.items()}

    def encode(self, state: State) -> bytes:
        """Encode *state* and warm the cache under the produced bytes.

        The save path already has the decoded form in hand, so the next
        load of these exact bytes can skip the XML parse entirely
        (encode once, decode never).  A value-isolated copy goes into
        the table — the caller keeps mutating its own dict after save.
        """
        blob = encode_state(state)
        if blob not in self._states:
            if len(self._states) >= self.capacity:
                self._states.pop(next(iter(self._states)))
            self._states[blob] = {key: _copy_value(item) for key, item in state.items()}
        return blob


class BlobResourceStore:
    """CRUD + (expensive) scan-query over serialized resource state."""

    TABLE = "resources"

    def __init__(self, db: Optional[Database] = None) -> None:
        self.db = db or Database()
        if self.TABLE not in self.db.tables:
            table = self.db.create_table(
                self.TABLE,
                [
                    Column("rid", "TEXT", primary_key=True),
                    Column("service", "TEXT", nullable=False),
                    Column("resource_id", "TEXT", nullable=False),
                    Column("state", "BLOB", nullable=False),
                ],
            )
            table.create_index("service")
        #: operation counters for the D-3 benchmark
        self.loads = 0
        self.saves = 0
        self.scans = 0
        #: optional :class:`DecodeCache` (the perf layer's codec fast
        #: path attaches one; None keeps the from-scratch decode path)
        self.decode_cache: Optional[DecodeCache] = None

    @staticmethod
    def _key(service: str, resource_id: str) -> str:
        return f"{service}|{resource_id}"

    def _encode(self, state: State) -> bytes:
        cache = self.decode_cache
        return encode_state(state) if cache is None else cache.encode(state)

    def create(self, service: str, resource_id: str, state: State) -> bytes:
        blob = self._encode(state)
        self.db.table(self.TABLE).insert(
            {
                "rid": self._key(service, resource_id),
                "service": service,
                "resource_id": resource_id,
                "state": blob,
            }
        )
        self.saves += 1
        return blob

    def exists(self, service: str, resource_id: str) -> bool:
        return self.db.table(self.TABLE).get(self._key(service, resource_id)) is not None

    def load(self, service: str, resource_id: str) -> State:
        row = self.db.table(self.TABLE).get(self._key(service, resource_id))
        if row is None:
            raise NoSuchResource(f"{service}/{resource_id}")
        self.loads += 1
        cache = self.decode_cache
        if cache is not None:
            return cache.decode(row["state"])
        return decode_state(row["state"])

    def save(self, service: str, resource_id: str, state: State) -> bytes:
        blob = self._encode(state)
        count = self.db.table(self.TABLE).update(
            {"state": blob},
            equals={"rid": self._key(service, resource_id)},
        )
        if count == 0:
            raise NoSuchResource(f"{service}/{resource_id}")
        self.saves += 1
        return blob

    def destroy(self, service: str, resource_id: str) -> None:
        count = self.db.table(self.TABLE).delete(
            equals={"rid": self._key(service, resource_id)}
        )
        if count == 0:
            raise NoSuchResource(f"{service}/{resource_id}")

    def list_ids(self, service: str) -> List[str]:
        rows = self.db.table(self.TABLE).select(
            equals={"service": service}, columns=["resource_id"]
        )
        return sorted(row["resource_id"] for row in rows)

    # -- checkpoint / restore ----------------------------------------------------------

    def snapshot(self) -> Dict[str, bytes]:
        """Checkpoint: ``{"service|resource_id": encoded state bytes}``.

        The format is backend-independent (every backend encodes state
        through :func:`encode_state`), so a snapshot taken from one
        store implementation restores into any other.
        """
        rows = self.db.table(self.TABLE).select()
        return {row["rid"]: bytes(row["state"]) for row in rows}

    def restore(self, snap: Dict[str, bytes]) -> None:
        """Replace the entire store contents with *snap*.

        Rows are rewritten directly — the D-3 ``loads``/``saves``
        counters track dispatch-path database work, and a host bounce
        is not dispatch work.
        """
        table = self.db.table(self.TABLE)
        table.delete()
        for rid in sorted(snap):
            service, _, resource_id = rid.partition("|")
            table.insert(
                {
                    "rid": rid,
                    "service": service,
                    "resource_id": resource_id,
                    "state": bytes(snap[rid]),
                }
            )

    def scan_query(
        self,
        service: str,
        xpath: str,
        namespaces: Optional[Dict[str, str]] = None,
    ) -> List[Tuple[str, list]]:
        """Query every resource of *service* — deserializing each blob.

        This is the §5 pain point made concrete: cost is O(total state
        size), not O(matches).
        """
        self.scans += 1
        out: List[Tuple[str, list]] = []
        rows = self.db.table(self.TABLE).select(equals={"service": service})
        for row in rows:
            doc = parse(row["state"].decode("utf-8"))
            hits = xpath_select(doc, xpath, namespaces)
            if hits:
                out.append((row["resource_id"], hits))
        out.sort(key=lambda pair: pair[0])
        return out
