"""A small SQL dialect over the engine — the "ODBC" face of the database.

Supported statements (enough for WSRF.NET-style state plumbing):

    CREATE TABLE t (col TYPE [PRIMARY KEY] [NOT NULL], ...)
    INSERT INTO t (a, b) VALUES (?, ?)
    SELECT a, b | * FROM t [WHERE col = ? [AND col2 = ?]]
    UPDATE t SET a = ? [, b = ?] [WHERE ...]
    DELETE FROM t [WHERE ...]

Values are always passed as ``?`` parameters (the ODBC style), which
sidesteps literal-quoting entirely and keeps the parser honest.
"""

from __future__ import annotations

import re
from typing import Any, Dict, List, Optional, Sequence

from repro.db.engine import Column, Database, DbError


class SqlError(DbError):
    """Malformed SQL or parameter-count mismatch."""


_IDENT = r"[A-Za-z_][A-Za-z_0-9]*"

_CREATE_RE = re.compile(
    rf"^\s*CREATE\s+TABLE\s+({_IDENT})\s*\((.*)\)\s*$", re.IGNORECASE | re.DOTALL
)
_INSERT_RE = re.compile(
    rf"^\s*INSERT\s+INTO\s+({_IDENT})\s*\(([^)]*)\)\s*VALUES\s*\(([^)]*)\)\s*$",
    re.IGNORECASE,
)
_SELECT_RE = re.compile(
    rf"^\s*SELECT\s+(.*?)\s+FROM\s+({_IDENT})(?:\s+WHERE\s+(.*))?\s*$",
    re.IGNORECASE | re.DOTALL,
)
_UPDATE_RE = re.compile(
    rf"^\s*UPDATE\s+({_IDENT})\s+SET\s+(.*?)(?:\s+WHERE\s+(.*))?\s*$",
    re.IGNORECASE | re.DOTALL,
)
_DELETE_RE = re.compile(
    rf"^\s*DELETE\s+FROM\s+({_IDENT})(?:\s+WHERE\s+(.*))?\s*$",
    re.IGNORECASE | re.DOTALL,
)


class _Params:
    def __init__(self, params: Sequence[Any]) -> None:
        self._params = list(params)
        self._used = 0

    def take(self) -> Any:
        if self._used >= len(self._params):
            raise SqlError("not enough parameters for the ?s in the statement")
        value = self._params[self._used]
        self._used += 1
        return value

    def finish(self) -> None:
        if self._used != len(self._params):
            raise SqlError(
                f"{len(self._params)} parameters supplied, {self._used} consumed"
            )


def _parse_where(clause: Optional[str], params: _Params) -> dict:
    if clause is None:
        return {}
    equals = {}
    for part in re.split(r"\s+AND\s+", clause.strip(), flags=re.IGNORECASE):
        m = re.match(rf"^\s*({_IDENT})\s*=\s*\?\s*$", part)
        if not m:
            raise SqlError(f"unsupported WHERE term {part!r} (only `col = ?`)")
        equals[m.group(1)] = params.take()
    return equals


def _parse_columns_def(body: str) -> List[Column]:
    columns = []
    for chunk in body.split(","):
        tokens = chunk.split()
        if len(tokens) < 2:
            raise SqlError(f"malformed column definition {chunk.strip()!r}")
        name, ctype = tokens[0], tokens[1].upper()
        rest = " ".join(tokens[2:]).upper()
        primary = "PRIMARY KEY" in rest
        not_null = "NOT NULL" in rest
        columns.append(
            Column(name, ctype, primary_key=primary, nullable=not not_null)
        )
    return columns


def execute_sql(db: Database, statement: str, params: Sequence[Any] = ()) -> Any:
    """Execute one statement; returns rows (SELECT) or an affected count."""
    bound = _Params(params)

    m = _CREATE_RE.match(statement)
    if m:
        bound.finish()
        db.create_table(m.group(1), _parse_columns_def(m.group(2)))
        return 0

    m = _INSERT_RE.match(statement)
    if m:
        table = db.table(m.group(1))
        names = [c.strip() for c in m.group(2).split(",") if c.strip()]
        slots = [s.strip() for s in m.group(3).split(",") if s.strip()]
        if any(s != "?" for s in slots):
            raise SqlError("INSERT values must all be ? parameters")
        if len(names) != len(slots):
            raise SqlError("column/value count mismatch in INSERT")
        row = {name: bound.take() for name in names}
        bound.finish()
        table.insert(row)
        return 1

    m = _SELECT_RE.match(statement)
    if m:
        cols_text, table_name, where_text = m.group(1), m.group(2), m.group(3)
        table = db.table(table_name)
        equals = _parse_where(where_text, bound)
        bound.finish()
        columns = (
            None
            if cols_text.strip() == "*"
            else [c.strip() for c in cols_text.split(",")]
        )
        return table.select(equals=equals or None, columns=columns)

    m = _UPDATE_RE.match(statement)
    if m:
        table = db.table(m.group(1))
        set_text, where_text = m.group(2), m.group(3)
        values = {}
        # SET consumes parameters before WHERE, matching textual order.
        for part in set_text.split(","):
            sm = re.match(rf"^\s*({_IDENT})\s*=\s*\?\s*$", part)
            if not sm:
                raise SqlError(f"unsupported SET term {part!r}")
            values[sm.group(1)] = bound.take()
        equals = _parse_where(where_text, bound)
        bound.finish()
        return table.update(values, equals=equals or None)

    m = _DELETE_RE.match(statement)
    if m:
        table = db.table(m.group(1))
        equals = _parse_where(m.group(2), bound)
        bound.finish()
        return table.delete(equals=equals or None)

    raise SqlError(f"unrecognized statement: {statement.strip()[:60]!r}")


class SqlResourceStore:
    """WS-Resource state store speaking only SQL — the literal "ODBC
    compliant database" face of the paper's persistence model.

    Same schema and serialized-blob design as
    :class:`repro.db.resource_store.BlobResourceStore`, but every
    operation goes through :func:`execute_sql` statements with ``?``
    parameters instead of the engine's table API.  Interchangeable with
    the other backends (see ``tests/test_store_backends.py``), including
    the cross-backend ``snapshot()``/``restore()`` checkpoint format.
    """

    TABLE = "resources"

    def __init__(self, db: Optional[Database] = None) -> None:
        self.db = db or Database()
        if self.TABLE not in self.db.tables:
            execute_sql(
                self.db,
                f"CREATE TABLE {self.TABLE} ("
                "rid TEXT PRIMARY KEY, service TEXT NOT NULL, "
                "resource_id TEXT NOT NULL, state BLOB NOT NULL)",
            )
        #: operation counters matching the other backends
        self.loads = 0
        self.saves = 0
        self.scans = 0

    @staticmethod
    def _key(service: str, resource_id: str) -> str:
        return f"{service}|{resource_id}"

    def create(self, service: str, resource_id: str, state: Dict[Any, Any]) -> None:
        from repro.db.resource_store import encode_state

        execute_sql(
            self.db,
            f"INSERT INTO {self.TABLE} (rid, service, resource_id, state) "
            "VALUES (?, ?, ?, ?)",
            [self._key(service, resource_id), service, resource_id,
             encode_state(state)],
        )
        self.saves += 1

    def exists(self, service: str, resource_id: str) -> bool:
        rows = execute_sql(
            self.db,
            f"SELECT rid FROM {self.TABLE} WHERE rid = ?",
            [self._key(service, resource_id)],
        )
        return bool(rows)

    def load(self, service: str, resource_id: str) -> Dict[Any, Any]:
        from repro.db.resource_store import NoSuchResource, decode_state

        rows = execute_sql(
            self.db,
            f"SELECT state FROM {self.TABLE} WHERE rid = ?",
            [self._key(service, resource_id)],
        )
        if not rows:
            raise NoSuchResource(f"{service}/{resource_id}")
        self.loads += 1
        return decode_state(rows[0]["state"])

    def save(self, service: str, resource_id: str, state: Dict[Any, Any]) -> None:
        from repro.db.resource_store import NoSuchResource, encode_state

        count = execute_sql(
            self.db,
            f"UPDATE {self.TABLE} SET state = ? WHERE rid = ?",
            [encode_state(state), self._key(service, resource_id)],
        )
        if count == 0:
            raise NoSuchResource(f"{service}/{resource_id}")
        self.saves += 1

    def destroy(self, service: str, resource_id: str) -> None:
        from repro.db.resource_store import NoSuchResource

        count = execute_sql(
            self.db,
            f"DELETE FROM {self.TABLE} WHERE rid = ?",
            [self._key(service, resource_id)],
        )
        if count == 0:
            raise NoSuchResource(f"{service}/{resource_id}")

    def list_ids(self, service: str) -> List[str]:
        rows = execute_sql(
            self.db,
            f"SELECT resource_id FROM {self.TABLE} WHERE service = ?",
            [service],
        )
        return sorted(row["resource_id"] for row in rows)

    def scan_query(
        self,
        service: str,
        xpath: str,
        namespaces: Optional[Dict[str, str]] = None,
    ) -> List[Any]:
        """Query every resource of *service* — deserializing each blob."""
        from repro.xmlx import parse, xpath_select

        self.scans += 1
        rows = execute_sql(
            self.db,
            f"SELECT resource_id, state FROM {self.TABLE} WHERE service = ?",
            [service],
        )
        out = []
        for row in rows:
            doc = parse(row["state"].decode("utf-8"))
            hits = xpath_select(doc, xpath, namespaces)
            if hits:
                out.append((row["resource_id"], hits))
        out.sort(key=lambda pair: pair[0])
        return out

    # -- checkpoint / restore ----------------------------------------------------------

    def snapshot(self) -> Dict[str, bytes]:
        """Checkpoint in the cross-backend ``{"service|rid": bytes}`` format."""
        rows = execute_sql(self.db, f"SELECT rid, state FROM {self.TABLE}")
        return {row["rid"]: bytes(row["state"]) for row in rows}

    def restore(self, snap: Dict[str, bytes]) -> None:
        """Replace the entire store contents with *snap*."""
        execute_sql(self.db, f"DELETE FROM {self.TABLE}")
        for rid in sorted(snap):
            service, _, resource_id = rid.partition("|")
            execute_sql(
                self.db,
                f"INSERT INTO {self.TABLE} (rid, service, resource_id, state) "
                "VALUES (?, ?, ?, ?)",
                [rid, service, resource_id, bytes(snap[rid])],
            )
