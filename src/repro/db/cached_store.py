"""Write-through cache over :class:`~repro.db.BlobResourceStore`.

The Fig. 1 pipeline pays a 0.8 ms database access to load resource state
on *every* dispatch.  :class:`CachedResourceStore` keeps the **encoded
blob** of each resource it has seen; a cache hit decodes the blob instead
of touching the database, so the wrapper can elide the ``db_load`` delay
(see ``wsrf/tooling.py``).  Caching the serialized bytes — not the state
dict — guarantees the same value-isolation as the real store: every load
returns a freshly decoded copy, so callers mutating the returned dict
(or the Elements inside it) can never corrupt the cache, exactly as they
cannot corrupt a database row.

The cache is write-through: ``create``/``save`` always hit the inner
store first and only then update the cached blob, and ``destroy``
invalidates the entry.  The inner store therefore remains the source of
truth at all times — the coherence property tests in
``tests/test_perf_equivalence.py`` drive random op sequences against a
plain :class:`BlobResourceStore` oracle and assert the two never
diverge, including destroy-then-recreate of the same resource id.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.db.resource_store import (
    BlobResourceStore,
    DecodeCache,
    State,
    decode_state,
    encode_state,
)


class CachedResourceStore:
    """Write-through, blob-level cache over a :class:`BlobResourceStore`.

    Exposes the full store surface (create/exists/load/save/destroy/
    list_ids/scan_query) plus ``is_cached`` for the wrapper's delay
    elision and ``hits``/``misses`` counters for the obs registry.  The
    D-3 operation counters (``loads``/``saves``/``scans``) proxy to the
    inner store so existing diagnostics keep reporting *database*
    operations — a cache hit is precisely a load that never reached the
    database.
    """

    def __init__(self, inner: Optional[BlobResourceStore] = None) -> None:
        self.inner = inner if inner is not None else BlobResourceStore()
        #: cached encoded state blobs, keyed like the inner store's rows
        self._blobs: Dict[str, bytes] = {}
        #: cache effectiveness counters for the obs registry
        self.hits = 0
        self.misses = 0
        #: optional :class:`DecodeCache` shared with the inner store (the
        #: codec fast path sets it); a blob-cache hit then also skips the
        #: XML re-parse while keeping per-load value isolation
        self.decode_cache: Optional[DecodeCache] = None

    @staticmethod
    def _key(service: str, resource_id: str) -> str:
        return BlobResourceStore._key(service, resource_id)

    # -- cache introspection ---------------------------------------------------------

    def is_cached(self, service: str, resource_id: str) -> bool:
        """True when a load would be served without a database access."""
        return self._key(service, resource_id) in self._blobs

    def assert_coherent(self) -> None:
        """Check every cached blob against the database (test helper)."""
        for key, blob in self._blobs.items():
            row = self.inner.db.table(self.inner.TABLE).get(key)
            if row is None:
                raise AssertionError(f"cache holds destroyed resource {key!r}")
            if row["state"] != blob:
                raise AssertionError(f"cache is stale for resource {key!r}")

    # -- the store surface -----------------------------------------------------------

    def create(self, service: str, resource_id: str, state: State) -> None:
        # The inner store hands back the bytes it just wrote, so the
        # write-through entry costs no second encode.
        self._blobs[self._key(service, resource_id)] = self.inner.create(
            service, resource_id, state
        )

    def exists(self, service: str, resource_id: str) -> bool:
        if self.is_cached(service, resource_id):
            return True
        return self.inner.exists(service, resource_id)

    def load(self, service: str, resource_id: str) -> State:
        blob = self._blobs.get(self._key(service, resource_id))
        if blob is not None:
            self.hits += 1
            if self.decode_cache is not None:
                return self.decode_cache.decode(blob)
            return decode_state(blob)
        self.misses += 1
        state = self.inner.load(service, resource_id)
        cache = self.decode_cache
        blob = encode_state(state) if cache is None else cache.encode(state)
        self._blobs[self._key(service, resource_id)] = blob
        return state

    def save(self, service: str, resource_id: str, state: State) -> None:
        self._blobs[self._key(service, resource_id)] = self.inner.save(
            service, resource_id, state
        )

    def destroy(self, service: str, resource_id: str) -> None:
        self.inner.destroy(service, resource_id)
        self._blobs.pop(self._key(service, resource_id), None)

    def list_ids(self, service: str) -> List[str]:
        return self.inner.list_ids(service)

    # -- checkpoint / restore ----------------------------------------------------------

    def snapshot(self) -> Dict[str, bytes]:
        """Checkpoint of the inner (source-of-truth) store."""
        return self.inner.snapshot()

    def restore(self, snap: Dict[str, bytes]) -> None:
        """Restore the inner store and drop every cached blob.

        The cache MUST be invalidated here: a blob cached before the
        checkpoint describes post-checkpoint state that the restore just
        rolled back, and serving it would resurrect vanished writes (and
        trip ``assert_coherent``).  docs/durability.md spells this out.
        """
        self.inner.restore(snap)
        self._blobs.clear()

    def scan_query(
        self,
        service: str,
        xpath: str,
        namespaces: Optional[Dict[str, str]] = None,
    ) -> List[Tuple[str, list]]:
        # Scans stay O(total state size) against the database — the §5
        # pain point the blob design creates is not what this cache fixes.
        return self.inner.scan_query(service, xpath, namespaces)

    # -- D-3 database-operation counters (proxied) -------------------------------------

    @property
    def db(self) -> Any:
        return self.inner.db

    @property
    def loads(self) -> int:
        return self.inner.loads

    @property
    def saves(self) -> int:
        return self.inner.saves

    @property
    def scans(self) -> int:
        return self.inner.scans
