"""A tiny in-memory relational engine with typed columns and indexes."""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

_TYPES: Dict[str, Tuple[type, ...]] = {
    "INTEGER": (int,),
    "REAL": (int, float),
    "TEXT": (str,),
    "BLOB": (bytes,),
}


class DbError(Exception):
    """Schema violations, duplicate keys, unknown tables/columns."""


class Column:
    """A typed column; ``primary_key`` columns are unique and indexed."""

    __slots__ = ("name", "type", "primary_key", "nullable")

    def __init__(
        self,
        name: str,
        type: str,
        primary_key: bool = False,
        nullable: bool = True,
    ) -> None:
        if type not in _TYPES:
            raise DbError(f"unknown column type {type!r}")
        self.name = name
        self.type = type
        self.primary_key = primary_key
        self.nullable = nullable and not primary_key

    def check(self, value: Any) -> None:
        if value is None:
            if not self.nullable:
                raise DbError(f"column {self.name!r} is NOT NULL")
            return
        expected = _TYPES[self.type]
        if not isinstance(value, expected) or isinstance(value, bool):
            raise DbError(
                f"column {self.name!r} expects {self.type}, got {type(value).__name__}"
            )


Row = Dict[str, Any]
Predicate = Callable[[Row], bool]


class Table:
    """Rows stored as dicts; the primary key (if any) is hash-indexed."""

    def __init__(self, name: str, columns: Sequence[Column]) -> None:
        if not columns:
            raise DbError(f"table {name!r} needs at least one column")
        names = [c.name for c in columns]
        if len(set(names)) != len(names):
            raise DbError(f"duplicate column names in table {name!r}")
        pks = [c for c in columns if c.primary_key]
        if len(pks) > 1:
            raise DbError(f"table {name!r} has multiple primary keys")
        self.name = name
        self.columns: Dict[str, Column] = {c.name: c for c in columns}
        self.pk: Optional[str] = pks[0].name if pks else None
        self._rows: List[Row] = []
        self._pk_index: Dict[Any, Row] = {}
        self._secondary: Dict[str, Dict[Any, List[Row]]] = {}

    # -- schema ----------------------------------------------------------------

    def create_index(self, column: str) -> None:
        """Add a secondary (non-unique) hash index on *column*."""
        if column not in self.columns:
            raise DbError(f"no column {column!r} in table {self.name!r}")
        index: Dict[Any, List[Row]] = {}
        for row in self._rows:
            index.setdefault(row[column], []).append(row)
        self._secondary[column] = index

    def _normalize(self, values: Row) -> Row:
        unknown = set(values) - set(self.columns)
        if unknown:
            raise DbError(f"unknown columns {sorted(unknown)} in table {self.name!r}")
        row = {name: values.get(name) for name in self.columns}
        for name, column in self.columns.items():
            column.check(row[name])
        return row

    # -- DML -------------------------------------------------------------------

    def insert(self, values: Row) -> Row:
        row = self._normalize(values)
        if self.pk is not None:
            key = row[self.pk]
            if key in self._pk_index:
                raise DbError(
                    f"duplicate primary key {key!r} in table {self.name!r}"
                )
            self._pk_index[key] = row
        self._rows.append(row)
        for column, index in self._secondary.items():
            index.setdefault(row[column], []).append(row)
        return dict(row)

    def get(self, key: Any) -> Optional[Row]:
        """Primary-key point lookup (O(1))."""
        if self.pk is None:
            raise DbError(f"table {self.name!r} has no primary key")
        row = self._pk_index.get(key)
        return dict(row) if row is not None else None

    def _candidates(self, equals: Optional[Row]) -> Iterable[Row]:
        if equals:
            if self.pk is not None and self.pk in equals:
                row = self._pk_index.get(equals[self.pk])
                return [row] if row is not None else []
            for column, index in self._secondary.items():
                if column in equals:
                    return list(index.get(equals[column], []))
        return list(self._rows)

    def select(
        self,
        equals: Optional[Row] = None,
        where: Optional[Predicate] = None,
        columns: Optional[Sequence[str]] = None,
    ) -> List[Row]:
        """Rows matching all ``equals`` pairs and the ``where`` predicate."""
        if columns is not None:
            for name in columns:
                if name not in self.columns:
                    raise DbError(f"no column {name!r} in table {self.name!r}")
        out = []
        for row in self._candidates(equals):
            if equals and any(row.get(k) != v for k, v in equals.items()):
                continue
            if where is not None and not where(row):
                continue
            if columns is None:
                out.append(dict(row))
            else:
                out.append({name: row[name] for name in columns})
        return out

    def update(
        self,
        values: Row,
        equals: Optional[Row] = None,
        where: Optional[Predicate] = None,
    ) -> int:
        unknown = set(values) - set(self.columns)
        if unknown:
            raise DbError(f"unknown columns {sorted(unknown)} in table {self.name!r}")
        if self.pk is not None and self.pk in values:
            raise DbError("updating the primary key is not supported")
        for name, value in values.items():
            self.columns[name].check(value)
        count = 0
        for row in self._candidates(equals):
            if equals and any(row.get(k) != v for k, v in equals.items()):
                continue
            if where is not None and not where(row):
                continue
            for column, index in self._secondary.items():
                if column in values and values[column] != row[column]:
                    index[row[column]].remove(row)
                    index.setdefault(values[column], []).append(row)
            row.update(values)
            count += 1
        return count

    def delete(
        self,
        equals: Optional[Row] = None,
        where: Optional[Predicate] = None,
    ) -> int:
        doomed = []
        for row in self._candidates(equals):
            if equals and any(row.get(k) != v for k, v in equals.items()):
                continue
            if where is not None and not where(row):
                continue
            doomed.append(row)
        for row in doomed:
            self._rows.remove(row)
            if self.pk is not None:
                del self._pk_index[row[self.pk]]
            for column, index in self._secondary.items():
                index[row[column]].remove(row)
        return len(doomed)

    def __len__(self) -> int:
        return len(self._rows)


class Database:
    """A named collection of tables."""

    def __init__(self, name: str = "wsrfnet") -> None:
        self.name = name
        self.tables: Dict[str, Table] = {}

    def create_table(self, name: str, columns: Sequence[Column]) -> Table:
        if name in self.tables:
            raise DbError(f"table {name!r} already exists")
        table = Table(name, columns)
        self.tables[name] = table
        return table

    def drop_table(self, name: str) -> None:
        if name not in self.tables:
            raise DbError(f"no table {name!r}")
        del self.tables[name]

    def table(self, name: str) -> Table:
        try:
            return self.tables[name]
        except KeyError:
            raise DbError(f"no table {name!r}") from None
