"""Fair-share CPU model and simulated processes.

Work is measured in *work units*: one unit is one second of CPU on a
baseline (speed 1.0) machine.  Concurrently computing processes share
the machine's cores equally; each accrues CPU time (the quantity behind
the Execution Service's CPUTime resource property) in proportion to the
core share it actually received.
"""

from __future__ import annotations

import itertools
from enum import Enum
from typing import Dict, Optional

from repro.sim import Environment, Event, Interrupt

_EPS = 1e-9
_pids = itertools.count(100)


class ProcessState(str, Enum):
    RUNNING = "Running"
    EXITED = "Exited"
    KILLED = "Killed"


class _Task:
    __slots__ = ("remaining", "waiter", "process")

    def __init__(self, remaining: float, waiter: Event, process: "SimProcess") -> None:
        self.remaining = remaining
        self.waiter = waiter
        self.process = process


class CpuScheduler:
    """Processor-sharing scheduler for one machine."""

    def __init__(self, env: Environment, cores: int = 1, speed: float = 1.0) -> None:
        if cores < 1:
            raise ValueError("a machine needs at least one core")
        if speed <= 0:
            raise ValueError("cpu speed must be positive")
        self.env = env
        self.cores = cores
        self.speed = speed
        self._active: Dict[int, _Task] = {}
        self._task_ids = itertools.count(1)
        self._last_update = env.now
        self._version = 0
        #: total CPU-seconds delivered (all processes, for utilization stats)
        self.cpu_seconds_delivered = 0.0

    # -- state advancement ---------------------------------------------------------

    def _share(self) -> float:
        """Core share each active task currently receives."""
        n = len(self._active)
        return min(1.0, self.cores / n) if n else 0.0

    def _advance(self) -> None:
        now = self.env.now
        elapsed = now - self._last_update
        self._last_update = now
        if elapsed <= 0 or not self._active:
            return
        share = self._share()
        rate = self.speed * share  # work units per second per task
        finished = []
        for task_id, task in self._active.items():
            consumed = min(task.remaining, elapsed * rate)
            task.remaining -= consumed
            task.process.cpu_time += elapsed * share
            self.cpu_seconds_delivered += elapsed * share
            if task.remaining <= _EPS:
                finished.append(task_id)
        for task_id in finished:
            task = self._active.pop(task_id)
            task.waiter.succeed()

    def _reschedule(self) -> None:
        self._version += 1
        if not self._active:
            return
        rate = self.speed * self._share()
        dt = min(task.remaining for task in self._active.values()) / rate
        version = self._version

        def watcher(env):
            yield env.timeout(dt)
            if version != self._version:
                return
            self._advance()
            self._reschedule()

        self.env.process(watcher(self.env))

    # -- public API -------------------------------------------------------------------

    def compute(self, process: "SimProcess", work_units: float):
        """Coroutine: consume *work_units* of CPU, sharing fairly."""
        if work_units < 0:
            raise ValueError("negative work")
        if work_units == 0:
            return
        self._advance()
        task_id = next(self._task_ids)
        waiter = self.env.event()
        self._active[task_id] = _Task(work_units, waiter, process)
        self._reschedule()
        try:
            yield waiter
        except (Interrupt, GeneratorExit):
            # Killed mid-compute: withdraw the task and repartition the CPU.
            self._advance()
            self._active.pop(task_id, None)
            self._reschedule()
            raise

    def refresh(self) -> None:
        """Bring per-process CPU accounting up to the current instant.

        Lazily-advanced accounting is exact at membership changes; call
        this before reading ``cpu_time`` mid-run (the ES's CpuTime RP).
        """
        self._advance()

    def utilization(self) -> float:
        """Instantaneous utilization in [0, 1]."""
        return min(1.0, len(self._active) / self.cores)

    @property
    def active_tasks(self) -> int:
        return len(self._active)


class SimProcess:
    """A simulated OS process launched by ProcSpawn.

    ``done`` is a waitable that fires with the exit code once the process
    leaves RUNNING — the hook the ProcSpawn service uses to send its
    "job finished" notification to the Execution Service (paper step 10).
    """

    def __init__(
        self,
        env: Environment,
        binary: str,
        args,
        username: str,
        working_dir: str,
    ) -> None:
        self.env = env
        self.pid = next(_pids)
        self.binary = binary
        self.args = list(args)
        self.username = username
        self.working_dir = working_dir
        self.state = ProcessState.RUNNING
        self.exit_code: Optional[int] = None
        self.cpu_time = 0.0
        self.started_at = env.now
        self.exited_at: Optional[float] = None
        self.done: Event = env.event()
        self._runner = None  # set by ProcSpawn

    @property
    def is_running(self) -> bool:
        return self.state == ProcessState.RUNNING

    def _finish(self, state: ProcessState, exit_code: int) -> None:
        if not self.is_running:
            return
        self.state = state
        self.exit_code = exit_code
        self.exited_at = self.env.now
        self.done.succeed(exit_code)

    def kill(self) -> None:
        """Terminate the process (the ES's Kill operation)."""
        if not self.is_running:
            return
        if self._runner is not None and self._runner.is_alive:
            self._runner.kill("killed by request")
        self._finish(ProcessState.KILLED, -1)

    def __repr__(self) -> str:
        return f"<SimProcess pid={self.pid} {self.binary!r} {self.state.value}>"
