"""Per-machine user accounts.

§4.2: jobs run "as a particular user"; the request carries a
username/password which ProcSpawn validates before CreateProcessAsUser.
The paper anticipates mapping grid credentials to local accounts "in the
future" — :meth:`UserAccounts.map_grid_credential` implements that
future-work hook (used by the extended examples).
"""

from __future__ import annotations

import hashlib
from typing import Dict, Optional


class AuthenticationError(Exception):
    """Unknown user or wrong password."""


def _hash(password: str, salt: str) -> str:
    return hashlib.sha256(f"{salt}:{password}".encode()).hexdigest()


class UserAccounts:
    """Username → salted password hash, plus grid-credential mappings."""

    def __init__(self) -> None:
        self._accounts: Dict[str, str] = {}
        self._grid_map: Dict[str, str] = {}

    def add_user(self, username: str, password: str) -> None:
        if not username:
            raise ValueError("empty username")
        self._accounts[username] = _hash(password, username)

    def remove_user(self, username: str) -> None:
        self._accounts.pop(username, None)
        self._grid_map = {k: v for k, v in self._grid_map.items() if v != username}

    def exists(self, username: str) -> bool:
        return username in self._accounts

    def authenticate(self, username: str, password: str) -> str:
        """Return the username on success; raise otherwise."""
        stored = self._accounts.get(username)
        if stored is None or stored != _hash(password, username):
            raise AuthenticationError(f"authentication failed for {username!r}")
        return username

    # -- grid-credential mapping (the paper's future work) -----------------------

    def map_grid_credential(self, subject_dn: str, username: str) -> None:
        """Map an X.509 subject to a local account (gridmap-style)."""
        if username not in self._accounts:
            raise ValueError(f"cannot map to unknown account {username!r}")
        self._grid_map[subject_dn] = username

    def resolve_grid_credential(self, subject_dn: str) -> Optional[str]:
        return self._grid_map.get(subject_dn)
