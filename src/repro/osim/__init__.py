"""Simulated Windows machines — the testbed's operating-system substrate.

The paper's grid nodes are 2004-era Windows desktops running IIS/ASP.NET
(hosting the WSRF.NET web services) plus two *Windows services* (the
paper is careful to distinguish these OS services from web services):
ProcSpawn, which starts processes as a given user, and Processor
Utilization, which reports load.  This package simulates that machine:

- :class:`Machine` — one node: filesystem, user accounts, CPU scheduler,
  IIS server, Windows services, X.509 identity;
- :class:`SimFileSystem` — a per-machine hierarchical filesystem whose
  files can hold real bytes or synthetic bulk content (so multi-GB
  transfer benchmarks don't allocate memory);
- :class:`CpuScheduler` / :class:`SimProcess` — fair-share CPU model with
  per-process CPU-time accounting (the ES's CPUTime resource property);
- :class:`ProgramRegistry` / :class:`Program` — simulated executables:
  uploaded binary files name a Program whose behaviour (compute, read
  inputs, write outputs, exit code) runs when spawned;
- :class:`ProcSpawnService` — the WSRF.NET ProcSpawn Windows service;
- :class:`IisServer` — request dispatch with a bounded worker pool,
  standing in for the ASP.NET worker process of paper Fig. 1.
"""

from repro.osim.params import MachineParams
from repro.osim.filesystem import FileContent, FsError, SimFileSystem
from repro.osim.users import AuthenticationError, UserAccounts
from repro.osim.cpu import CpuScheduler, ProcessState, SimProcess
from repro.osim.programs import Program, ProgramContext, ProgramRegistry
from repro.osim.winservice import WindowsService
from repro.osim.procspawn import ProcSpawnService, SpawnError
from repro.osim.iis import IisServer
from repro.osim.machine import Machine

__all__ = [
    "AuthenticationError",
    "CpuScheduler",
    "FileContent",
    "FsError",
    "IisServer",
    "Machine",
    "MachineParams",
    "ProcSpawnService",
    "ProcessState",
    "Program",
    "ProgramContext",
    "ProgramRegistry",
    "SimFileSystem",
    "SimProcess",
    "SpawnError",
    "UserAccounts",
    "WindowsService",
]
