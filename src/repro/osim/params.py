"""Machine calibration constants (2004-era Windows desktop defaults)."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class MachineParams:
    #: relative CPU speed (1.0 = baseline ~2 GHz P4); heterogeneity across
    #: the campus grid is expressed by varying this factor
    cpu_speed: float = 1.0
    #: number of cores (2004 desktops: one)
    cores: int = 1
    #: installed RAM in MB (reported by the Node Info service)
    ram_mb: int = 512
    #: one database access (WS-Resource state load or save) — MSDE on the
    #: same box, indexed point query
    db_access_s: float = 0.0008
    #: CreateProcessAsUser + profile load (ProcSpawn's launch cost)
    proc_spawn_s: float = 0.050
    #: IIS/ASP.NET per-request dispatch overhead (routing, context setup)
    iis_dispatch_s: float = 0.0010
    #: ASP.NET worker-process thread pool size (the 1.1-era default of
    #: 25 worker threads per CPU; services that call back into their own
    #: IIS — ES -> FSS on one box — deadlock with small pools, exactly
    #: the classic ASP.NET re-entrancy hazard)
    iis_workers: int = 25
