"""IIS / ASP.NET worker-process model (paper Fig. 1's left column).

"IIS dispatches HTTP requests to the service, which internally invokes
either a method on a port type written by the service author or a port
type defined by WSRF."  Here IIS routes by URL path to a registered
application (the WSRF.NET wrapper service built by
:mod:`repro.wsrf.tooling`), after queueing for one of a bounded pool of
ASP.NET worker threads and charging per-request dispatch overhead.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict

from repro.sim import Environment, Event


class _WorkerPool:
    """A counting semaphore: FIFO queue for the ASP.NET thread pool."""

    def __init__(self, env: Environment, size: int) -> None:
        self.env = env
        self.free = size
        self._waiters: Deque[Event] = deque()

    def acquire(self) -> Event:
        ev = self.env.event()
        if self.free > 0:
            self.free -= 1
            ev.succeed()
        else:
            self._waiters.append(ev)
        return ev

    def release(self) -> None:
        if self._waiters:
            self._waiters.popleft().succeed()
        else:
            self.free += 1

    @property
    def queued(self) -> int:
        return len(self._waiters)


class IisServer:
    """Routes inbound SOAP text to applications by URL path.

    Applications expose ``handle_soap(payload: str, ctx) -> coroutine``
    returning response text (or None for one-way deliveries).
    """

    def __init__(self, machine) -> None:
        self.machine = machine
        self.env: Environment = machine.env
        self._apps: Dict[str, object] = {}
        self._pool = _WorkerPool(self.env, machine.params.iis_workers)
        self.requests_served = 0

    def register_app(self, path: str, app: object) -> None:
        path = "/" + path.strip("/")
        if path in self._apps:
            raise ValueError(f"path {path!r} already registered on {self.machine.name!r}")
        if not hasattr(app, "handle_soap"):
            raise TypeError(f"app must expose handle_soap(); got {app!r}")
        self._apps[path] = app

    def app_at(self, path: str):
        return self._apps.get("/" + path.strip("/"))

    # -- crash-restart ----------------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """Checkpoint every hosted app that persists state (the wrappers)."""
        return {
            path: app.snapshot()
            for path, app in self._apps.items()
            if hasattr(app, "snapshot")
        }

    def restore(self, snap: Dict[str, object]) -> None:
        """Restore each hosted app in place.

        Registrations survive — a reboot re-deploys the same services at
        the same paths, so the wrapper objects (which everything on the
        fabric references) stay registered and only their state resets.
        """
        for path in sorted(snap):
            app = self._apps.get(path)
            if app is not None and hasattr(app, "restore"):
                app.restore(snap[path])

    def handle(self, payload: str, ctx):
        """Network-facing server protocol (see repro.net)."""
        app = self._apps.get("/" + ctx.path.strip("/"))
        if app is None:
            # 404: surfaced as an error to request/response callers.
            raise LookupError(
                f"no service at {ctx.path!r} on host {self.machine.name!r}"
            )
        obs = getattr(getattr(self.machine, "network", None), "obs", None)
        span = None
        if obs is not None:
            span = obs.start_span(
                "iis.handle",
                message_id=getattr(ctx, "message_id", "") or None,
                attrs={"host": self.machine.name, "path": ctx.path},
            )
        try:
            if getattr(app, "manages_worker_pool", False):
                # WSRF wrappers acquire their per-resource lock BEFORE taking
                # a worker thread, so requests queued on a busy WS-Resource
                # do not starve the pool (the classic ASP.NET re-entrancy
                # deadlock: handlers blocking on a lock while holding the
                # thread the lock holder needs for its own nested calls).
                response = yield self.env.process(
                    app.handle_soap(payload, ctx, pool=self._pool)
                )
                self.requests_served += 1
                return response
            yield self._pool.acquire()
            try:
                yield self.env.timeout(self.machine.params.iis_dispatch_s)
                response = yield self.env.process(app.handle_soap(payload, ctx))
                self.requests_served += 1
                return response
            finally:
                self._pool.release()
        finally:
            if span is not None:
                obs.spans.finish_subtree(span)

    @property
    def queued_requests(self) -> int:
        return self._pool.queued
