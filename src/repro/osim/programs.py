"""Simulated executables.

A grid job's "executable" is a file uploaded by the FSS whose content
names a registered :class:`Program` (marker line ``#!uva-program:NAME``).
When ProcSpawn starts the binary, the program's *behaviour* runs as a
simulation coroutine: it consumes CPU via the machine's fair-share
scheduler, reads input files from the working directory and writes
output files there — which is exactly what downstream jobs in a job set
then consume.

Behaviour signature::

    def behavior(ctx: ProgramContext):
        data = ctx.read_input("input1.dat")
        yield from ctx.compute(5.0)          # 5 baseline CPU-seconds
        ctx.write_output("output2", b"...")
        return 0                             # exit code (None -> 0)
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.osim.filesystem import FileContent, FsError

MARKER = "#!uva-program:"


class ProgramContext:
    """What a running program can see and do."""

    def __init__(self, machine, process) -> None:
        self.machine = machine
        self.process = process
        self.args: List[str] = list(process.args)
        self.working_dir = process.working_dir

    def compute(self, work_units: float):
        """Coroutine: burn CPU on this machine's scheduler."""
        return self.machine.cpu.compute(self.process, work_units)

    def sleep(self, seconds: float):
        """Coroutine: idle wait (I/O, think time) — no CPU consumed."""
        return self.machine.env.timeout(seconds)

    def _path(self, name: str) -> str:
        return f"{self.working_dir}/{name}"

    def read_input(self, name: str) -> FileContent:
        return self.machine.fs.read_file(self._path(name))

    def input_exists(self, name: str) -> bool:
        return self.machine.fs.is_file(self._path(name))

    def write_output(self, name: str, content) -> None:
        self.machine.fs.write_file(self._path(name), content)

    def list_working_dir(self) -> List[str]:
        return self.machine.fs.listdir(self.working_dir)


Behavior = Callable[[ProgramContext], object]


class Program:
    """A named simulated executable."""

    def __init__(self, name: str, behavior: Behavior, description: str = "") -> None:
        self.name = name
        self.behavior = behavior
        self.description = description

    def binary_content(self) -> bytes:
        """The file content that names this program when uploaded."""
        return f"{MARKER}{self.name}\n".encode("ascii")

    def __repr__(self) -> str:
        return f"<Program {self.name!r}>"


class ProgramRegistry:
    """Program name → Program; shared across the testbed's machines."""

    def __init__(self) -> None:
        self._programs: Dict[str, Program] = {}

    def register(self, program: Program) -> Program:
        if program.name in self._programs:
            raise ValueError(f"duplicate program {program.name!r}")
        self._programs[program.name] = program
        return program

    def define(self, name: str, behavior: Behavior, description: str = "") -> Program:
        return self.register(Program(name, behavior, description))

    def get(self, name: str) -> Program:
        try:
            return self._programs[name]
        except KeyError:
            raise KeyError(f"no program registered under {name!r}") from None

    def resolve_binary(self, content: FileContent) -> Program:
        """Map an executable file's content back to its Program."""
        try:
            text = content.to_bytes().decode("ascii", "replace")
        except FsError:
            raise ValueError("binary too large to inspect") from None
        first_line = text.splitlines()[0] if text else ""
        if not first_line.startswith(MARKER):
            raise ValueError("file is not a recognized grid executable")
        return self.get(first_line[len(MARKER) :].strip())


def make_compute_program(
    name: str,
    work_units: float,
    outputs: Optional[Dict[str, bytes]] = None,
    required_inputs: Optional[List[str]] = None,
    exit_code: int = 0,
) -> Program:
    """Factory for the common job shape: check inputs, burn CPU, emit outputs."""

    def behavior(ctx: ProgramContext):
        for needed in required_inputs or []:
            if not ctx.input_exists(needed):
                return 2  # missing input -> nonzero exit, like a real tool
        yield from ctx.compute(work_units)
        for out_name, data in (outputs or {}).items():
            ctx.write_output(out_name, data)
        return exit_code

    return Program(name, behavior, description=f"compute {work_units} units")
