"""One simulated Windows machine, assembled from the substrate parts."""

from __future__ import annotations

from typing import Optional

from repro.net import Network
from repro.osim.cpu import CpuScheduler
from repro.osim.filesystem import SimFileSystem
from repro.osim.iis import IisServer
from repro.osim.params import MachineParams
from repro.osim.procspawn import ProcSpawnService
from repro.osim.programs import ProgramRegistry
from repro.osim.users import UserAccounts

#: IIS listens here; matches the http default port
HTTP_PORT = 80
#: WSE TCP listeners (the client's file server; optional service endpoints)
SOAPTCP_PORT = 8081


class Machine:
    """A campus-grid node: OS + IIS + Windows services + network identity.

    Construction wires the machine onto the network fabric, starts IIS on
    port 80 and installs the ProcSpawn Windows service.  X.509 identity
    (``keys``/``cert``) is attached by the testbed when a CA is in play.
    """

    def __init__(
        self,
        network: Network,
        name: str,
        params: Optional[MachineParams] = None,
        programs: Optional[ProgramRegistry] = None,
    ) -> None:
        self.network = network
        self.env = network.env
        self.name = name
        self.params = params or MachineParams()
        self.host = network.add_host(name)
        self.fs = SimFileSystem(name)
        self.users = UserAccounts()
        self.cpu = CpuScheduler(self.env, cores=self.params.cores, speed=self.params.cpu_speed)
        self.programs = programs if programs is not None else ProgramRegistry()
        self.iis = IisServer(self)
        self.host.bind(HTTP_PORT, self.iis)
        self.procspawn = ProcSpawnService(self)
        self.procspawn.start()
        # WS-Security identity, set by Testbed.enroll_machine.
        self.keys = None
        self.cert = None

    # -- conveniences -------------------------------------------------------------

    def service_url(self, service_path: str, scheme: str = "http") -> str:
        port = HTTP_PORT if scheme == "http" else SOAPTCP_PORT
        return f"{scheme}://{self.name}:{port}/{service_path.strip('/')}"

    def utilization(self) -> float:
        return self.cpu.utilization()

    def db_delay(self):
        """Coroutine: one local database access (state load or save)."""
        return self.env.timeout(self.params.db_access_s)

    def __repr__(self) -> str:
        return f"<Machine {self.name!r} speed={self.params.cpu_speed}>"
