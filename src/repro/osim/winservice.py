"""Base class for simulated Windows services.

The paper's footnote 1: "a Windows Service and a Web Service are
different.  Windows Services are operating system services that deal
only with the local machine and they are not typically accessible via
the web."  Accordingly these objects are reachable only through their
:class:`repro.osim.machine.Machine` — never via the network fabric.
"""

from __future__ import annotations


class WindowsService:
    """A locally-installed OS service with a start/stop lifecycle."""

    service_name = "windows-service"

    def __init__(self, machine) -> None:
        self.machine = machine
        self.running = False

    def start(self) -> None:
        if self.running:
            return
        self.running = True
        self.on_start()

    def stop(self) -> None:
        if not self.running:
            return
        self.running = False
        self.on_stop()

    def on_start(self) -> None:  # pragma: no cover - default no-op
        pass

    def on_stop(self) -> None:  # pragma: no cover - default no-op
        pass

    def require_running(self) -> None:
        if not self.running:
            raise RuntimeError(
                f"Windows service {self.service_name!r} on "
                f"{self.machine.name!r} is not running"
            )
