"""Per-machine simulated filesystem.

Paths are Windows-flavoured but normalized internally: backslashes become
forward slashes and drive letters are kept as path components
(``C:\\grid\\job1`` → ``c:/grid/job1``).  Files hold a
:class:`FileContent`, which is either real bytes (job inputs/outputs the
tests inspect) or *synthetic* content of a given size (bulk benchmark
payloads that would be wasteful to materialize).
"""

from __future__ import annotations

import hashlib
import itertools
from typing import Dict, List, Optional


class FsError(Exception):
    """Missing paths, collisions, directory/file confusion."""


class FileContent:
    """Real or synthetic file content with a stable digest."""

    __slots__ = ("_data", "size", "_digest")

    _MATERIALIZE_LIMIT = 4 * 1024 * 1024

    def __init__(self, data: Optional[bytes] = None, synthetic_size: Optional[int] = None):
        if (data is None) == (synthetic_size is None):
            raise ValueError("provide exactly one of data / synthetic_size")
        if data is not None:
            self._data = data
            self.size = len(data)
            self._digest = hashlib.sha256(data).hexdigest()
        else:
            if synthetic_size < 0:
                raise ValueError("negative synthetic size")
            self._data = None
            self.size = synthetic_size
            self._digest = hashlib.sha256(f"synthetic:{synthetic_size}".encode()).hexdigest()

    @classmethod
    def from_bytes(cls, data: bytes) -> "FileContent":
        return cls(data=data)

    @classmethod
    def synthetic(cls, size: int) -> "FileContent":
        return cls(synthetic_size=size)

    @property
    def is_synthetic(self) -> bool:
        return self._data is None

    @property
    def digest(self) -> str:
        return self._digest

    def to_bytes(self) -> bytes:
        if self._data is not None:
            return self._data
        if self.size > self._MATERIALIZE_LIMIT:
            raise FsError(
                f"refusing to materialize {self.size} synthetic bytes "
                f"(limit {self._MATERIALIZE_LIMIT})"
            )
        pattern = b"0123456789abcdef"
        reps = self.size // len(pattern) + 1
        return (pattern * reps)[: self.size]

    def __eq__(self, other) -> bool:
        if not isinstance(other, FileContent):
            return NotImplemented
        return self._digest == other._digest and self.size == other.size

    def __repr__(self) -> str:
        kind = "synthetic" if self.is_synthetic else "bytes"
        return f"<FileContent {kind} size={self.size}>"


def normalize_path(path: str) -> str:
    if not path:
        raise FsError("empty path")
    text = path.replace("\\", "/").lower()
    parts = [p for p in text.split("/") if p not in ("", ".")]
    out: List[str] = []
    for part in parts:
        if part == "..":
            if not out:
                raise FsError(f"path escapes root: {path!r}")
            out.pop()
        else:
            out.append(part)
    return "/".join(out)


class SimFileSystem:
    """A tree of directories and files."""

    def __init__(self, machine_name: str = "") -> None:
        self.machine_name = machine_name
        self._dirs: set = {""}  # normalized dir paths; "" is the root
        self._files: Dict[str, FileContent] = {}
        self._unique = itertools.count(1)

    # -- directories -------------------------------------------------------------

    def mkdir(self, path: str, parents: bool = True) -> str:
        norm = normalize_path(path)
        if norm in self._files:
            raise FsError(f"file exists at {path!r}")
        if norm in self._dirs:
            return norm
        parent = norm.rsplit("/", 1)[0] if "/" in norm else ""
        if parent not in self._dirs:
            if not parents:
                raise FsError(f"missing parent directory for {path!r}")
            self.mkdir(parent, parents=True)
        self._dirs.add(norm)
        return norm

    def create_unique_dir(self, base: str, prefix: str = "wsr") -> str:
        """A fresh directory under *base* — the FSS's create-resource op."""
        base_norm = self.mkdir(base)
        while True:
            candidate = f"{base_norm}/{prefix}-{next(self._unique):04d}"
            if candidate not in self._dirs and candidate not in self._files:
                self._dirs.add(candidate)
                return candidate

    def is_dir(self, path: str) -> bool:
        return normalize_path(path) in self._dirs

    def is_file(self, path: str) -> bool:
        return normalize_path(path) in self._files

    def listdir(self, path: str) -> List[str]:
        """Immediate children (names, files and dirs), sorted."""
        norm = normalize_path(path)
        if norm not in self._dirs:
            raise FsError(f"no such directory {path!r}")
        prefix = norm + "/" if norm else ""
        names = set()
        for entry in itertools.chain(self._dirs, self._files):
            if entry != norm and entry.startswith(prefix):
                names.add(entry[len(prefix) :].split("/", 1)[0])
        return sorted(names)

    # -- files --------------------------------------------------------------------

    def write_file(self, path: str, content) -> str:
        if isinstance(content, bytes):
            content = FileContent.from_bytes(content)
        if not isinstance(content, FileContent):
            raise TypeError(f"content must be bytes or FileContent, got {content!r}")
        norm = normalize_path(path)
        if norm in self._dirs:
            raise FsError(f"directory exists at {path!r}")
        parent = norm.rsplit("/", 1)[0] if "/" in norm else ""
        if parent not in self._dirs:
            raise FsError(f"missing parent directory for {path!r}")
        self._files[norm] = content
        return norm

    def read_file(self, path: str) -> FileContent:
        norm = normalize_path(path)
        try:
            return self._files[norm]
        except KeyError:
            raise FsError(f"no such file {path!r}") from None

    def delete_file(self, path: str) -> None:
        norm = normalize_path(path)
        if norm not in self._files:
            raise FsError(f"no such file {path!r}")
        del self._files[norm]

    def move_file(self, src: str, dst: str) -> None:
        """Rename within this filesystem — the paper's §4.6 optimization
        ("if the file happens to already be on the FSS's machine, the FSS
        simply moves the file")."""
        content = self.read_file(src)
        self.write_file(dst, content)
        self.delete_file(src)

    def remove_tree(self, path: str) -> int:
        """Delete a directory and everything under it; returns entry count."""
        norm = normalize_path(path)
        if norm not in self._dirs:
            raise FsError(f"no such directory {path!r}")
        if norm == "":
            raise FsError("refusing to remove the filesystem root")
        prefix = norm + "/"
        doomed_files = [f for f in self._files if f.startswith(prefix)]
        doomed_dirs = [d for d in self._dirs if d == norm or d.startswith(prefix)]
        for f in doomed_files:
            del self._files[f]
        for d in doomed_dirs:
            self._dirs.discard(d)
        return len(doomed_files) + len(doomed_dirs)

    def total_bytes(self) -> int:
        return sum(c.size for c in self._files.values())
