"""The ProcSpawn Windows service.

"When a WS-Resource involves a process, the act of creating a new
WS-Resource includes using WSRF.NET's process launcher Windows Service
to start a new process as a particular user."  ProcSpawn authenticates
the username/password, resolves the uploaded binary to a registered
:class:`~repro.osim.programs.Program`, charges the CreateProcessAsUser
launch cost and runs the program's behaviour as a simulated process.
Exit (or kill) fires the process's ``done`` event, which is how the
Execution Service learns the exit code (paper Fig. 3, step 10).
"""

from __future__ import annotations

from typing import List, Optional

from repro.osim.cpu import ProcessState, SimProcess
from repro.osim.programs import ProgramContext
from repro.osim.users import AuthenticationError
from repro.osim.winservice import WindowsService
from repro.sim import Interrupt, ProcessKilled


class SpawnError(Exception):
    """Authentication failure, missing binary, unknown program."""


class ProcSpawnService(WindowsService):
    service_name = "WSRF.NET ProcSpawn"

    def __init__(self, machine) -> None:
        super().__init__(machine)
        self.processes: List[SimProcess] = []

    def spawn(
        self,
        binary_path: str,
        args: List[str],
        username: str,
        password: str,
        working_dir: str,
    ):
        """Coroutine: start the binary as *username*; returns a SimProcess.

        The returned process is already RUNNING; await ``process.done``
        for the exit code.
        """
        self.require_running()
        machine = self.machine
        self._authenticate(username, password)
        if not machine.fs.is_dir(working_dir):
            raise SpawnError(f"working directory {working_dir!r} does not exist")
        try:
            binary = machine.fs.read_file(binary_path)
        except Exception as exc:
            raise SpawnError(f"cannot read binary {binary_path!r}: {exc}") from exc
        try:
            program = machine.programs.resolve_binary(binary)
        except (KeyError, ValueError) as exc:
            raise SpawnError(str(exc)) from exc

        # CreateProcessAsUser + profile load.
        yield machine.env.timeout(machine.params.proc_spawn_s)

        process = SimProcess(machine.env, binary_path, args, username, working_dir)
        self.processes.append(process)
        ctx = ProgramContext(machine, process)

        def runner(env):
            try:
                result = yield from _as_generator(program.behavior, ctx)
            except Interrupt:
                process._finish(ProcessState.KILLED, -1)
                return
            exit_code = result if isinstance(result, int) else 0
            process._finish(ProcessState.EXITED, exit_code)

        runner_proc = machine.env.process(runner(machine.env))
        process._runner = runner_proc

        # A crash in the program's behaviour becomes a nonzero exit, not a
        # simulator failure (real jobs segfault; testbeds survive).
        def absorb(ev):
            if not ev.ok and not isinstance(ev.value, ProcessKilled):
                ev._defused = True
                process._finish(ProcessState.EXITED, 1)
            elif not ev.ok:
                ev._defused = True

        runner_proc.add_callback(absorb)
        return process

    def _authenticate(self, username: str, password: str) -> None:
        """Password authentication (CreateProcessAsUser semantics).

        The GT4 fork service overrides this: there the container has
        already authenticated the grid credential and mapped it to a
        local account, so only account existence is checked.
        """
        try:
            self.machine.users.authenticate(username, password)
        except AuthenticationError as exc:
            raise SpawnError(str(exc)) from exc

    def find(self, pid: int) -> Optional[SimProcess]:
        for process in self.processes:
            if process.pid == pid:
                return process
        return None


def _as_generator(behavior, ctx):
    """Run *behavior*; supports plain functions and generator functions."""
    result = behavior(ctx)
    if hasattr(result, "send"):
        value = yield from result
        return value
    return result
