"""A small interprocedural reachability/taint engine over the call graph.

Rules seed it with *source functions* — functions whose bodies directly
contain an interesting site (a wall-clock read, a ``fire_and_forget``,
an unlocked store mutation) — and it answers, for any other function,
whether calling it can transitively reach a source, together with the
shortest *witness chain* of call sites proving it.  The chain is what
turns "helper three hops down reads the wall clock" into an actionable
finding message.

The propagation is function-summary taint: taint flows from callee to
caller along resolved call edges (breadth-first, so chains are
shortest), and every function keeps the single best chain.  This is
deliberately path-, flow- and context-insensitive — cheap enough to run
on every lint pass, precise enough because the call graph itself only
records statically certain edges.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set

from repro.analysis.callgraph import CallEdge, CallGraph


@dataclass(frozen=True)
class TaintSource:
    """Why a function is a taint seed: the site inside it."""

    qualname: str
    lineno: int
    reason: str


@dataclass
class Taint:
    """Taint state of one function: its distance and witness to a source."""

    source: TaintSource
    #: call edges from this function down to the source's function,
    #: outermost first; empty for the source function itself
    chain: List[CallEdge]

    @property
    def depth(self) -> int:
        return len(self.chain)

    def describe(self) -> str:
        """``a -> b -> c`` human-readable witness, innermost last."""
        hops = [edge.callee.rsplit(".", 1)[-1] for edge in self.chain]
        parts = hops + [f"{self.source.reason}"]
        return " -> ".join(parts)


def propagate(
    graph: CallGraph,
    sources: List[TaintSource],
    barrier: Optional[Callable[[str], bool]] = None,
) -> Dict[str, Taint]:
    """Taint every function that can transitively reach a source.

    *barrier* (qualname -> bool) marks functions taint must not flow
    *through*: a barrier function may itself be tainted (it contains or
    calls a source) but its callers are not — used for sanctioned
    wrappers like the write-ahead outbox, which contains the raw send
    but makes it safe.

    Returns ``{qualname: Taint}``; the source functions themselves map
    to a zero-length chain.  Breadth-first over reverse call edges, so
    every function keeps a shortest witness chain; ties are broken by
    edge insertion order, which follows the deterministic file walk.
    """
    taints: Dict[str, Taint] = {}
    queue: deque = deque()
    for source in sources:
        if source.qualname in graph.functions and source.qualname not in taints:
            taints[source.qualname] = Taint(source=source, chain=[])
            queue.append(source.qualname)
    while queue:
        current = queue.popleft()
        if barrier is not None and barrier(current):
            continue  # taint stops here: callers stay clean
        base = taints[current]
        for edge in graph.callers(current):
            if edge.caller in taints:
                continue
            taints[edge.caller] = Taint(
                source=base.source, chain=[edge, *base.chain]
            )
            queue.append(edge.caller)
    return taints


def reaching_calls(
    graph: CallGraph, taints: Dict[str, Taint], caller: str
) -> List[CallEdge]:
    """The call sites in *caller* that lead into tainted functions."""
    return [edge for edge in graph.callees(caller) if edge.callee in taints]


def all_callers_satisfy(
    graph: CallGraph,
    qualname: str,
    predicate: Callable[[CallEdge], bool],
    known: Set[str],
) -> bool:
    """True if every known call site of *qualname* satisfies *predicate*.

    Walks transitively: a call site may itself be inside a function
    whose own call sites must then satisfy the predicate.  *known*
    carries qualnames already being checked (cycle guard); a function
    with **no** resolved callers fails closed (False) — the engine
    cannot prove anything about unknown callers.
    """
    if qualname in known:
        return True  # cycle: optimistic within the recursion
    callers = graph.callers(qualname)
    if not callers:
        return False
    known = known | {qualname}
    for edge in callers:
        if predicate(edge):
            continue
        if not all_callers_satisfy(graph, edge.caller, predicate, known):
            return False
    return True
