"""Whole-program wsrfcheck rules (WSRF004-005, DET002, WAL002, LOCK001).

These run once per analysis over a :class:`~repro.analysis.engine.ProgramContext`
— every parsed module plus the module-qualified call graph
(:mod:`repro.analysis.callgraph`) — so they can follow a contract
violation through helper layers the per-module rules cannot see:

- **WSRF004** — a resource handle is used (invoked, loaded, saved,
  re-destroyed) after a statement that definitely destroyed it, where
  "destroys" is computed interprocedurally (a helper whose body
  destroys its parameter destroys at its call sites too);
- **WSRF005** — an EndpointReference escapes into module- or
  class-level state outside a resource store: after a host restart
  those handles dangle (docs/durability.md);
- **DET002** — a nondeterminism source (the same sites DET001 flags,
  via :func:`repro.analysis.rules.det_source_sites`) is reachable from
  a sim-visible entry point (service method or detached process root)
  through at least one helper hop;
- **WAL002** — ``fire_and_forget`` is reachable from a service method
  through helpers, sidestepping the write-ahead outbox (WAL001 only
  sees sends lexically inside the service class);
- **LOCK001** — a resource-store mutation can execute on a path from a
  detached process root with no resource Lock acquired anywhere along
  the chain (the interprocedural successor of the old per-file SIM002).

Like the per-module rules, every resolution here is conservative:
precision over recall, so a finding always has a concrete witness
chain and an unresolvable call site never manufactures one.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.callgraph import CallEdge, CallGraph, FunctionNode
from repro.analysis.dataflow import TaintSource, propagate
from repro.analysis.engine import (
    Finding,
    ProgramContext,
    register_program_rule,
)
from repro.analysis.rules import call_name, det_source_sites, store_mutation

# -- shared graph/AST helpers ------------------------------------------------------


def _nested_index(graph: CallGraph) -> Dict[str, Set[int]]:
    """``qualname -> {id(node) of every function nested inside it}``.

    Built once per graph (cached on the instance): the rules call
    :func:`_own_nodes` hot, and rescanning all functions per call is
    quadratic on the real tree.
    """
    cached = getattr(graph, "_nested_index_cache", None)
    if cached is None:
        cached = {qualname: set() for qualname in graph.functions}
        for g in graph.functions.values():
            parts = g.qualname.split(".")
            for i in range(1, len(parts)):
                ancestor = ".".join(parts[:i])
                if ancestor in cached:
                    cached[ancestor].add(id(g.node))
        graph._nested_index_cache = cached  # type: ignore[attr-defined]
    return cached


def _own_nodes(fn: FunctionNode, graph: CallGraph) -> Iterator[ast.AST]:
    """AST nodes lexically inside *fn*, excluding nested defs/classes."""
    nested = _nested_index(graph).get(fn.qualname, set())

    def walk(node: ast.AST) -> Iterator[ast.AST]:
        for child in ast.iter_child_nodes(node):
            if id(child) in nested or isinstance(child, ast.ClassDef):
                continue
            yield child
            yield from walk(child)

    yield from walk(fn.node)


def _own_calls(fn: FunctionNode, graph: CallGraph) -> List[ast.Call]:
    return [n for n in _own_nodes(fn, graph) if isinstance(n, ast.Call)]


def _owner_index(graph: CallGraph, module: str) -> Dict[int, FunctionNode]:
    """id(ast node) -> the function lexically owning it, for one module."""
    owners: Dict[int, FunctionNode] = {}
    for fn in graph.functions.values():
        if fn.module != module:
            continue
        for node in _own_nodes(fn, graph):
            owners[id(node)] = fn
    return owners


def _fn_symbol(fn: FunctionNode) -> str:
    """The enclosing-scope symbol for a finding inside *fn*.

    Matches the per-module ``enclosing_symbols`` convention
    ("Class.method", plain "fn", nested "outer.inner") so fingerprints
    from both tiers live in the same namespace.
    """
    prefix = fn.module + "."
    if fn.qualname.startswith(prefix):
        return fn.qualname[len(prefix):]
    return fn.qualname


def _short(qualname: str) -> str:
    return qualname.rsplit(".", 1)[-1]


def _edge_at(
    graph: CallGraph, caller: str, call: ast.Call
) -> Optional[CallEdge]:
    """The resolved edge for a concrete call expression, if any."""
    name = call_name(call.func)
    for edge in graph.callees(caller):
        if edge.lineno == call.lineno and _short(edge.callee) == name:
            return edge
    return None


def _sorted_functions(graph: CallGraph) -> List[FunctionNode]:
    return sorted(graph.functions.values(), key=lambda f: f.qualname)


def _acquire_lines(fn: FunctionNode, graph: CallGraph) -> List[int]:
    return [
        call.lineno
        for call in _own_calls(fn, graph)
        if call_name(call.func) == "acquire"
    ]


def _param_names(fn: FunctionNode) -> List[str]:
    args = fn.node.args  # type: ignore[attr-defined]
    return [p.arg for p in [*args.posonlyargs, *args.args]]


def _is_service_method(fn: FunctionNode, pctx: ProgramContext) -> bool:
    return bool(fn.class_name) and fn.class_name in pctx.model.service_classes


def _dispatch_classes(pctx: ProgramContext) -> Set[str]:
    """Service classes plus SpecPortType subclasses.

    Port-type methods (Subscribe, RegisterPublisher, ...) run inside
    the same dispatch pipeline as author ``@WebMethod`` code — the
    write-ahead and determinism contracts bind them equally — but they
    are not ServiceSkeleton subclasses, so the per-module rules never
    see them as services.
    """
    model = pctx.model
    out: Set[str] = set(model.service_classes)
    roots = {"SpecPortType"}
    changed = True
    while changed:
        changed = False
        for name, info in model.classes.items():
            if name in out:
                continue
            if any(b in roots or b in out for b in info.bases):
                out.add(name)
                changed = True
    return out


# -- WSRF004: use after destroy ----------------------------------------------------


def _bare_arg(call: ast.Call, index: int) -> Optional[str]:
    if len(call.args) > index and isinstance(call.args[index], ast.Name):
        return call.args[index].id  # type: ignore[attr-defined]
    return None


def _store_base(func: ast.expr) -> bool:
    """True for ``<...>.store.<op>`` / ``store.<op>`` attribute chains."""
    if not isinstance(func, ast.Attribute):
        return False
    value = func.value
    return (isinstance(value, ast.Attribute) and value.attr == "store") or (
        isinstance(value, ast.Name) and value.id == "store"
    )


def _direct_destroy(call: ast.Call) -> Optional[Tuple[str, str]]:
    """``(var, description)`` when this call destroys a bare-Name handle."""
    name = call_name(call.func)
    if name == "call" and len(call.args) >= 3:
        method = call.args[2]
        if (
            isinstance(method, ast.Constant)
            and method.value == "Destroy"
        ):
            var = _bare_arg(call, 0)
            if var is not None:
                return (var, "client.call(..., 'Destroy')")
    if name == "destroy_resource":
        var = _bare_arg(call, 0)
        if var is not None:
            return (var, "destroy_resource()")
    if name == "destroy" and _store_base(call.func):
        var = _bare_arg(call, 1)
        if var is not None:
            return (var, "store.destroy()")
    return None


def _destroyer_params(graph: CallGraph) -> Dict[str, Dict[int, str]]:
    """``qualname -> {param index: description}`` for destroyer helpers.

    A function destroys its parameter when its body (or, via fixpoint,
    a helper it calls) destroys that bare name.
    """
    destroyers: Dict[str, Dict[int, str]] = {}
    changed = True
    while changed:
        changed = False
        for fn in _sorted_functions(graph):
            params = {p: i for i, p in enumerate(_param_names(fn))}
            current = destroyers.setdefault(fn.qualname, {})
            for call in _own_calls(fn, graph):
                for var, how in _destroys_of(call, fn, graph, destroyers):
                    index = params.get(var)
                    if index is not None and index not in current:
                        current[index] = how
                        changed = True
    return destroyers


def _destroys_of(
    call: ast.Call,
    fn: FunctionNode,
    graph: CallGraph,
    destroyers: Dict[str, Dict[int, str]],
) -> List[Tuple[str, str]]:
    """Every ``(var, description)`` this call destroys, direct or via helper."""
    out: List[Tuple[str, str]] = []
    direct = _direct_destroy(call)
    if direct is not None:
        out.append(direct)
    edge = _edge_at(graph, fn.qualname, call)
    if edge is not None:
        callee = graph.functions[edge.callee]
        # bound method calls pass self implicitly: arg i is param i+1
        offset = 1 if callee.class_name and isinstance(call.func, ast.Attribute) else 0
        for index, how in destroyers.get(edge.callee, {}).items():
            var = _bare_arg(call, index - offset)
            if var is not None:
                out.append((var, f"{_short(edge.callee)}() -> {how}"))
    return out


#: call patterns that *use* a resource handle: call name -> handle arg index
_HANDLE_USES: Dict[str, int] = {
    "call": 0,
    "get_resource_property": 0,
    "get_multiple_resource_properties": 0,
    "epr_for": 0,
    "db_load": 0,
    "db_save": 0,
    "set_termination_time": 0,
}
#: store operations taking (service, resource_id)
_STORE_USES: Dict[str, int] = {"load": 1, "save": 1, "exists": 1}


def _handle_uses(call: ast.Call) -> List[Tuple[str, str]]:
    """``(var, description)`` for each destroyed-handle-sensitive use."""
    name = call_name(call.func)
    out: List[Tuple[str, str]] = []
    if name in _HANDLE_USES:
        var = _bare_arg(call, _HANDLE_USES[name])
        if var is not None:
            out.append((var, f"{name}()"))
    elif name in _STORE_USES and _store_base(call.func):
        var = _bare_arg(call, _STORE_USES[name])
        if var is not None:
            out.append((var, f"store.{name}()"))
    return out


class _DestroyScanner:
    """Forward definite-destroy walk over one function body.

    Tracks variables that are *definitely* destroyed at each statement
    (branch merge is intersection; loops and try bodies propagate the
    entry state past the block) and flags later statements that use
    them.  Same-statement use+destroy never flags: ``destroy(rid)``
    obviously mentions ``rid``.
    """

    def __init__(
        self,
        fn: FunctionNode,
        graph: CallGraph,
        destroyers: Dict[str, Dict[int, str]],
    ) -> None:
        self.fn = fn
        self.graph = graph
        self.destroyers = destroyers
        self.own_ids = {id(n) for n in _own_nodes(fn, graph)}
        self.hits: List[Tuple[ast.Call, str, str, str]] = []

    def scan(self) -> List[Tuple[ast.Call, str, str, str]]:
        body = getattr(self.fn.node, "body", [])
        self._block(body, {})
        return self.hits

    # destroyed: var -> description of the destroying event
    def _block(self, stmts: List[ast.stmt], destroyed: Dict[str, str]) -> None:
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            if isinstance(stmt, ast.If):
                then_state = dict(destroyed)
                else_state = dict(destroyed)
                self._block(stmt.body, then_state)
                self._block(stmt.orelse, else_state)
                destroyed.clear()
                destroyed.update(
                    {v: d for v, d in then_state.items() if v in else_state}
                )
                continue
            if isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
                # loop may run zero times: body effects don't escape, but
                # use-after-destroy inside one body pass still flags
                body_state = dict(destroyed)
                if isinstance(stmt, (ast.For, ast.AsyncFor)):
                    self._clear_targets(stmt.target, body_state)
                    self._clear_targets(stmt.target, destroyed)
                self._block([*stmt.body, *stmt.orelse], body_state)
                continue
            if isinstance(stmt, ast.Try):
                body_state = dict(destroyed)
                self._block(stmt.body, body_state)
                for handler in stmt.handlers:
                    self._block(handler.body, dict(destroyed))
                self._block(stmt.orelse, dict(body_state))
                # finally always runs; entry state is the conservative one
                self._block(stmt.finalbody, destroyed)
                continue
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                for item in stmt.items:
                    self._simple(item.context_expr, destroyed)
                self._block(stmt.body, destroyed)  # body definitely runs
                continue
            self._simple(stmt, destroyed)

    def _clear_targets(self, target: ast.expr, destroyed: Dict[str, str]) -> None:
        for node in ast.walk(target):
            if isinstance(node, ast.Name):
                destroyed.pop(node.id, None)

    def _simple(self, stmt: ast.AST, destroyed: Dict[str, str]) -> None:
        calls = [
            n
            for n in ast.walk(stmt)
            if isinstance(n, ast.Call) and id(n) in self.own_ids
        ]
        # uses first: destruction earlier in *this* statement doesn't count
        for call in calls:
            for var, use in _handle_uses(call):
                if var in destroyed:
                    self.hits.append((call, var, use, destroyed[var]))
            for var, _how in _destroys_of(call, self.fn, self.graph, self.destroyers):
                if var in destroyed:
                    self.hits.append(
                        (call, var, "a second destroy", destroyed[var])
                    )
        for call in calls:
            for var, how in _destroys_of(call, self.fn, self.graph, self.destroyers):
                destroyed[var] = how
        if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            for target in targets:
                if isinstance(target, ast.Name):
                    destroyed.pop(target.id, None)


@register_program_rule(
    "WSRF004",
    "use after destroy",
    "a resource handle must not be invoked, loaded, saved or destroyed "
    "again after a statement that definitely destroyed it; the runtime "
    "answer is ResourceUnknownFault, and destroys through helper "
    "functions count (interprocedural)",
)
def check_use_after_destroy(pctx: ProgramContext) -> Iterator[Finding]:
    graph: CallGraph = pctx.callgraph  # type: ignore[assignment]
    destroyers = _destroyer_params(graph)
    for fn in _sorted_functions(graph):
        for call, var, use, how in _DestroyScanner(fn, graph, destroyers).scan():
            yield Finding(
                rule="WSRF004",
                path=fn.path,
                line=call.lineno,
                symbol=_fn_symbol(fn),
                message=(
                    f"resource handle {var!r} is used ({use}) after being "
                    f"destroyed by {how} earlier in {fn.name}; the resource "
                    "is gone, so this raises ResourceUnknownFault at runtime"
                ),
            )


# -- WSRF005: EPR escape into module/class globals ---------------------------------

#: primitives whose return value is an EndpointReference
_EPR_PRIMITIVES = {"epr_for", "service_epr", "my_epr", "EndpointReference"}

#: mutating container methods that capture their argument
_CONTAINER_ADDERS = {"append", "add", "insert", "setdefault"}


def _epr_producers(graph: CallGraph) -> Set[str]:
    """Functions whose return value is (transitively) an EPR."""
    producers: Set[str] = set()
    changed = True
    while changed:
        changed = False
        for fn in _sorted_functions(graph):
            if fn.qualname in producers:
                continue
            for node in _own_nodes(fn, graph):
                if not (isinstance(node, ast.Return) and node.value is not None):
                    continue
                if _is_epr_expr(node.value, fn.qualname, graph, producers):
                    producers.add(fn.qualname)
                    changed = True
                    break
    return producers


def _is_epr_expr(
    node: ast.expr,
    caller: Optional[str],
    graph: CallGraph,
    producers: Set[str],
) -> bool:
    if not isinstance(node, ast.Call):
        return False
    if call_name(node.func) in _EPR_PRIMITIVES:
        return True
    if caller is not None:
        edge = _edge_at(graph, caller, node)
        if edge is not None and edge.callee in producers:
            return True
    # module-level (or unresolved) sites: a bare name that uniquely
    # names a producer in the analyzed tree still counts
    name = call_name(node.func)
    candidates = graph.by_name.get(name, [])
    return bool(candidates) and all(q in producers for q in candidates)


def _module_containers(tree: ast.Module) -> Set[str]:
    """Module-level names bound to mutable container literals."""
    out: Set[str] = set()
    for stmt in tree.body:
        if not isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            continue
        targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
        value = stmt.value
        is_container = isinstance(value, (ast.Dict, ast.List, ast.Set)) or (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id in ("dict", "list", "set", "defaultdict", "OrderedDict")
        )
        if not is_container:
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                out.add(target.id)
    return out


def _is_store_module(path: str) -> bool:
    return "/db/" in path.replace("\\", "/")


@register_program_rule(
    "WSRF005",
    "EPR escapes into module/class globals",
    "EndpointReferences stored in module-level or class-level state "
    "outside a resource store dangle after a host restart: the handle "
    "survives in process memory while the resource it points at is "
    "rebuilt or gone (docs/durability.md); keep handles in WS-Resource "
    "state or re-derive them per use",
)
def check_epr_escape(pctx: ProgramContext) -> Iterator[Finding]:
    graph: CallGraph = pctx.callgraph  # type: ignore[assignment]
    producers = _epr_producers(graph)

    def finding(ctx_path: str, node: ast.AST, symbol: str, where: str) -> Finding:
        return Finding(
            rule="WSRF005",
            path=ctx_path,
            line=node.lineno,  # type: ignore[attr-defined]
            symbol=symbol,
            message=(
                f"EndpointReference stored into {where}; module/class "
                "globals outlive the resources they point at across a "
                "host restart — keep handles in WS-Resource state or "
                "re-derive them per use"
            ),
        )

    for ctx in pctx.modules:
        if _is_store_module(ctx.path):
            continue
        containers = _module_containers(ctx.tree)

        # module-level: X = <epr-expr>
        for stmt in ctx.tree.body:
            if isinstance(stmt, (ast.Assign, ast.AnnAssign)) and stmt.value is not None:
                if _is_epr_expr(stmt.value, None, graph, producers):
                    yield finding(
                        ctx.path, stmt, "", "a module-level global"
                    )

        # inside functions: global names, Class.attr, module containers
        for fn in _sorted_functions(graph):
            if fn.module != ctx.module:
                continue
            symbol = _fn_symbol(fn)
            own = list(_own_nodes(fn, graph))
            globals_here = {
                name
                for sub in own
                if isinstance(sub, ast.Global)
                for name in sub.names
            }
            for node in own:
                yield from _escapes_in(
                    node, fn, ctx, pctx, graph, producers, containers,
                    globals_here, symbol, finding,
                )


def _escapes_in(
    node, fn, ctx, pctx, graph, producers, containers,
    globals_here, symbol, finding
):
    if isinstance(node, (ast.Assign, ast.AnnAssign)) and node.value is not None:
        if not _is_epr_expr(node.value, fn.qualname, graph, producers):
            return
        targets = (
            node.targets if isinstance(node, ast.Assign) else [node.target]
        )
        for target in targets:
            if isinstance(target, ast.Name) and target.id in globals_here:
                yield finding(
                    ctx.path, node, symbol,
                    f"module global {target.id!r}",
                )
            elif (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id in pctx.model.classes
            ):
                yield finding(
                    ctx.path, node, symbol,
                    f"class attribute {target.value.id}.{target.attr}",
                )
            elif (
                isinstance(target, ast.Subscript)
                and isinstance(target.value, ast.Name)
                and target.value.id in containers
            ):
                yield finding(
                    ctx.path, node, symbol,
                    f"module-level container {target.value.id!r}",
                )
    elif isinstance(node, ast.Call):
        func = node.func
        if not (
            isinstance(func, ast.Attribute)
            and func.attr in _CONTAINER_ADDERS
            and isinstance(func.value, ast.Name)
            and func.value.id in containers
        ):
            return
        if any(
            _is_epr_expr(arg, fn.qualname, graph, producers)
            for arg in node.args
        ):
            yield finding(
                ctx.path, node, symbol,
                f"module-level container {func.value.id!r}",
            )


# -- DET002: nondeterminism reaching sim-visible state through helpers -------------


@register_program_rule(
    "DET002",
    "nondeterminism reachable through helper calls",
    "a service method or detached process root transitively calls a "
    "helper containing a nondeterminism source (wall clock, global "
    "RNG, uuid) — the same sites DET001 flags in place, followed "
    "through the call graph with a witness chain",
)
def check_interproc_determinism(pctx: ProgramContext) -> Iterator[Finding]:
    graph: CallGraph = pctx.callgraph  # type: ignore[assignment]
    sources: List[TaintSource] = []
    for ctx in pctx.modules:
        owners = _owner_index(graph, ctx.module)
        for node, message in det_source_sites(ctx.tree, ctx.path):
            line = getattr(node, "lineno", 0)
            if ctx.suppressed(line, "DET001") or ctx.suppressed(line, "DET002"):
                continue  # an accepted source doesn't taint its callers
            fn = owners.get(id(node))
            if fn is None:
                continue  # module-level site: DET001 reports it in place
            reason = message.split(";")[0]
            sources.append(TaintSource(fn.qualname, line, reason))

    taints = propagate(graph, sources)
    dispatch = _dispatch_classes(pctx)
    entry_points = sorted(
        {
            fn.qualname
            for fn in graph.functions.values()
            if fn.class_name and fn.class_name in dispatch
        }
        | set(pctx.process_roots)
    )
    for qualname in entry_points:
        taint = taints.get(qualname)
        if taint is None or taint.depth == 0:
            continue  # depth 0 is DET001's site, already flagged in place
        fn = graph.functions[qualname]
        first = taint.chain[0]
        if _is_service_method(fn, pctx):
            kind = "service method"
        elif fn.class_name and fn.class_name in dispatch:
            kind = "port-type method"
        else:
            kind = "detached process"
        yield Finding(
            rule="DET002",
            path=fn.path,
            line=first.lineno,
            symbol=_fn_symbol(fn),
            message=(
                f"{kind} {fn.name} reaches nondeterminism through "
                f"helper calls: {taint.describe()}; seeded runs stop "
                "reproducing even though this file looks clean"
            ),
        )


# -- WAL002: fire_and_forget reachable from dispatch through helpers ---------------

#: path suffixes sanctioned to carry the raw send primitive: the
#: write-ahead outbox itself and the notification base machinery
WAL002_SANCTIONED = ("wsrf/tooling.py", "wsn/base_notification.py")


def _wal_sanctioned(path: str) -> bool:
    return path.replace("\\", "/").endswith(WAL002_SANCTIONED)


@register_program_rule(
    "WAL002",
    "notification send reachable from dispatch through helpers",
    "a service method transitively reaches fire_and_forget through "
    "helper functions, so the send can leave the host before the "
    "dispatch pipeline's db_save persists the state it announces "
    "(WAL001 only sees sends lexically inside the service class); "
    "route the chain through self.wsrf.send_after_persist",
)
def check_interproc_write_ahead(pctx: ProgramContext) -> Iterator[Finding]:
    graph: CallGraph = pctx.callgraph  # type: ignore[assignment]
    dispatch = _dispatch_classes(pctx)
    sources: List[TaintSource] = []
    for fn in _sorted_functions(graph):
        if _wal_sanctioned(fn.path):
            continue  # the outbox/base machinery legitimately sends raw
        if _is_service_method(fn, pctx):
            continue  # lexically in a service class: WAL001's site
        for call in _own_calls(fn, graph):
            if call_name(call.func) == "fire_and_forget":
                sources.append(
                    TaintSource(
                        fn.qualname, call.lineno,
                        f"fire_and_forget in {fn.name}",
                    )
                )
                break

    taints = propagate(
        graph, sources, barrier=lambda q: _wal_sanctioned(graph.functions[q].path)
    )
    for fn in _sorted_functions(graph):
        if not (fn.class_name and fn.class_name in dispatch):
            continue
        taint = taints.get(fn.qualname)
        if taint is None:
            continue
        if taint.depth == 0:
            if _is_service_method(fn, pctx):
                continue  # WAL001 flags the lexical site
            # direct raw send inside a port-type method: same dispatch
            # pipeline, invisible to WAL001's ServiceSkeleton scan
            yield Finding(
                rule="WAL002",
                path=fn.path,
                line=taint.source.lineno,
                symbol=_fn_symbol(fn),
                message=(
                    f"port-type method {fn.name} calls fire_and_forget "
                    "inside the dispatch pipeline; the message can outrun "
                    "the db_save stage — route it through the invocation's "
                    "send_after_persist so it leaves only after the state "
                    "it announces is durable"
                ),
            )
            continue
        kind = (
            "service method" if _is_service_method(fn, pctx) else "port-type method"
        )
        first = taint.chain[0]
        yield Finding(
            rule="WAL002",
            path=fn.path,
            line=first.lineno,
            symbol=_fn_symbol(fn),
            message=(
                f"{kind} {fn.name} reaches a raw notification "
                f"send through helpers: {taint.describe()}; the message "
                "can outrun the db_save stage — route it through "
                "self.wsrf.send_after_persist so it leaves only after "
                "the state it announces is durable"
            ),
        )


# -- LOCK001: store mutation reachable from a process root without the lock --------

#: function names that run strictly before concurrent dispatch starts
#: (crash recovery rebuilds state single-threaded; the locks it would
#: take died with the previous boot — docs/durability.md)
LOCK001_RECOVERY_ALLOWLIST = ("restore", "wsrf_recover", "snapshot")


@register_program_rule(
    "LOCK001",
    "store mutation on an unlocked path from a detached process",
    "a resource-store mutation (store.save/destroy/create or "
    "destroy_resource) can execute on a call path from an "
    "env.process(...) root with no resource Lock acquired anywhere "
    "along the chain; a concurrent handler mid load-modify-save on the "
    "same WS-Resource loses its write (interprocedural successor of "
    "the per-file SIM002)",
)
def check_static_lockset(pctx: ProgramContext) -> Iterator[Finding]:
    graph: CallGraph = pctx.callgraph  # type: ignore[assignment]
    acquires = {
        fn.qualname: _acquire_lines(fn, graph) for fn in graph.functions.values()
    }

    # breadth-first may-unlocked reachability from the process roots; a
    # call site below an acquire() in its caller enters locked
    unlocked: Dict[str, List[CallEdge]] = {}
    queue: List[str] = []
    for root in sorted(pctx.process_roots):
        if root in graph.functions and root not in unlocked:
            unlocked[root] = []
            queue.append(root)
    while queue:
        current = queue.pop(0)
        if _short(current) in LOCK001_RECOVERY_ALLOWLIST:
            continue  # single-threaded recovery: no concurrent handlers
        chain = unlocked[current]
        acquired = acquires.get(current, [])
        for edge in graph.callees(current):
            if any(line <= edge.lineno for line in acquired):
                continue  # the caller holds a lock at this call site
            if edge.callee in unlocked or _short(edge.callee) in (
                LOCK001_RECOVERY_ALLOWLIST
            ):
                continue
            unlocked[edge.callee] = [*chain, edge]
            queue.append(edge.callee)

    for qualname in sorted(unlocked):
        if _short(qualname) in LOCK001_RECOVERY_ALLOWLIST:
            continue  # a recovery routine handed straight to env.process
        fn = graph.functions[qualname]
        acquired = acquires.get(qualname, [])
        chain = unlocked[qualname]
        for call in _own_calls(fn, graph):
            mutation = store_mutation(call)
            if mutation is None:
                continue
            if any(line <= call.lineno for line in acquired):
                continue
            root = chain[0].caller if chain else qualname
            via = "".join(f" -> {_short(e.callee)}" for e in chain)
            yield Finding(
                rule="LOCK001",
                path=fn.path,
                line=call.lineno,
                symbol=_fn_symbol(fn),
                message=(
                    f"{mutation}() runs with no resource Lock held on the "
                    f"detached path {_short(root)}{via}; a concurrent "
                    "handler doing load-modify-save on the same "
                    "WS-Resource can lose its write — acquire "
                    "wrapper.resource_lock(rid) across the span"
                ),
            )
