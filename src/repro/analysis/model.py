"""Contract model extraction (pure AST, no imports of analyzed code).

The model is wsrfcheck's equivalent of WSRF.NET's reflection pass over
``[WebMethod]``/``[Resource]`` attributes: it reads every module once
and records, per service class, the declared web methods (with their
signatures), ``Resource`` state fields, ``@ResourceProperty`` names and
imported ``@WSRFPortType`` port types — plus the ``BaseFault`` class
hierarchy, so rules can check call sites, RP reads and raised faults
against what the services actually declare.

Namespaces are tracked symbolically as ``"NS.<NAME>"`` strings: the
extractor resolves module-level aliases (``UVA = NS.UVACG``) so a call
site written against ``UVA`` matches a service declaring
``SERVICE_NS = NS.UVACG`` in another module.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

#: attributes provided by ServiceSkeleton / the invocation plumbing that
#: service code may legitimately touch on ``self``
SKELETON_ATTRS = frozenset(
    {
        "wsrf",
        "env",
        "machine",
        "resource_id",
        "client",
        "epr_for",
        "create_resource",
        "destroy_resource",
        "notify",
        "wsrf_on_destroy",
        "on_notification",
        "SERVICE_NS",
    }
)

#: implicit resource properties contributed by spec port types
#: (port type class name -> [(ns_symbol, rp_name), ...])
PORT_TYPE_RPS: Dict[str, List[Tuple[str, str]]] = {
    "ScheduledResourceTerminationPortType": [
        ("NS.WSRF_RL", "TerminationTime"),
        ("NS.WSRF_RL", "CurrentTime"),
    ],
    "NotificationProducerPortType": [("NS.WSTOP", "Topic")],
}

#: exception types that count as the root of the typed fault hierarchy
FAULT_ROOTS = frozenset({"BaseFault"})

#: the base class marking author-written services
SERVICE_ROOTS = frozenset({"ServiceSkeleton"})


@dataclass
class WebMethodInfo:
    """One ``@WebMethod``-decorated operation."""

    name: str
    params: List[str] = field(default_factory=list)  # declared order, no self
    required: Set[str] = field(default_factory=set)
    has_kwargs: bool = False
    one_way: bool = False
    requires_resource: bool = True
    lineno: int = 0


@dataclass
class ServiceInfo:
    """One class in the analyzed tree (service or otherwise)."""

    name: str
    module: str
    path: str
    lineno: int
    bases: List[str] = field(default_factory=list)
    #: "NS.X" if declared on this class, else None (inherited)
    service_ns: Optional[str] = None
    web_methods: Dict[str, WebMethodInfo] = field(default_factory=dict)
    resource_fields: Set[str] = field(default_factory=set)
    resource_properties: Set[str] = field(default_factory=set)
    port_types: List[str] = field(default_factory=list)
    properties: Set[str] = field(default_factory=set)
    methods: Set[str] = field(default_factory=set)
    class_attrs: Set[str] = field(default_factory=set)


@dataclass
class ContractModel:
    """Everything the rules need to know about the analyzed tree."""

    #: class name -> ServiceInfo (last definition wins on collision)
    classes: Dict[str, ServiceInfo] = field(default_factory=dict)
    #: names of classes that are (transitively) BaseFault subclasses
    fault_classes: Set[str] = field(default_factory=set)
    #: names of classes that are (transitively) ServiceSkeleton subclasses
    service_classes: Set[str] = field(default_factory=set)

    # -- resolution helpers -------------------------------------------------------

    def mro(self, class_name: str) -> List[ServiceInfo]:
        """This class followed by its known bases, nearest first."""
        out: List[ServiceInfo] = []
        seen: Set[str] = set()
        stack = [class_name]
        while stack:
            name = stack.pop(0)
            if name in seen:
                continue
            seen.add(name)
            info = self.classes.get(name)
            if info is None:
                continue
            out.append(info)
            stack.extend(info.bases)
        return out

    def effective_ns(self, class_name: str) -> Optional[str]:
        """The SERVICE_NS symbol a service resolves to, MRO-aware."""
        for info in self.mro(class_name):
            if info.service_ns is not None:
                return info.service_ns
        if class_name in self.service_classes:
            return "NS.UVACG"  # ServiceSkeleton's default
        return None

    def services_in_ns(self, ns_symbol: str) -> List[ServiceInfo]:
        return [
            self.classes[name]
            for name in sorted(self.service_classes)
            if name in self.classes and self.effective_ns(name) == ns_symbol
        ]

    def web_method(self, ns_symbol: str, name: str) -> Optional[WebMethodInfo]:
        """The declared @WebMethod *name* in *ns_symbol*, if any service has it."""
        for service in self.services_in_ns(ns_symbol):
            for info in self.mro(service.name):
                method = info.web_methods.get(name)
                if method is not None:
                    return method
        return None

    def resource_property_names(self, ns_symbol: str) -> Set[str]:
        """All @ResourceProperty names (incl. port-type RPs) in a namespace."""
        out: Set[str] = set()
        for service in self.services_in_ns(ns_symbol):
            for info in self.mro(service.name):
                out.update(info.resource_properties)
        # port-type implicit RPs live in their own namespaces
        for name in self.service_classes:
            for info in self.mro(name):
                for pt in info.port_types:
                    for pt_ns, rp_name in PORT_TYPE_RPS.get(pt, ()):
                        if pt_ns == ns_symbol:
                            out.add(rp_name)
        return out

    def declared_fields(self, class_name: str) -> Set[str]:
        out: Set[str] = set()
        for info in self.mro(class_name):
            out.update(info.resource_fields)
        return out

    def declared_members(self, class_name: str) -> Set[str]:
        """Every attribute service code may write without losing state."""
        out: Set[str] = set(SKELETON_ATTRS)
        for info in self.mro(class_name):
            out.update(info.resource_fields)
            out.update(info.resource_properties)
            out.update(info.properties)
            out.update(info.methods)
            out.update(info.class_attrs)
        return out


# -- per-module extraction ----------------------------------------------------------


def ns_symbol_for(node: ast.AST, aliases: Dict[str, str]) -> Optional[str]:
    """Resolve an expression to an "NS.X" symbol, via module aliases."""
    if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
        if node.value.id == "NS":
            return f"NS.{node.attr}"
    if isinstance(node, ast.Name):
        return aliases.get(node.id)
    return None


def module_ns_aliases(tree: ast.Module) -> Dict[str, str]:
    """Module-level ``UVA = NS.UVACG``-style namespace aliases."""
    aliases: Dict[str, str] = {}
    for node in tree.body:
        if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
            continue
        target = node.targets[0]
        if not isinstance(target, ast.Name):
            continue
        symbol = ns_symbol_for(node.value, aliases)
        if symbol is not None:
            aliases[target.id] = symbol
    return aliases


def _decorator_name(node: ast.expr) -> str:
    """The bare name of a decorator expression ('WebMethod', 'property', ...)."""
    if isinstance(node, ast.Call):
        return _decorator_name(node.func)
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return ""


def _web_method_meta(node: ast.expr) -> Dict[str, bool]:
    meta = {"one_way": False, "requires_resource": True}
    if isinstance(node, ast.Call):
        for kw in node.keywords:
            if kw.arg in meta and isinstance(kw.value, ast.Constant):
                meta[kw.arg] = bool(kw.value.value)
    return meta


def _extract_method(fn: ast.FunctionDef) -> WebMethodInfo:
    args = fn.args
    names = [a.arg for a in args.posonlyargs + args.args if a.arg != "self"]
    defaults = args.defaults
    n_required = len(names) - len(defaults)
    info = WebMethodInfo(
        name=fn.name,
        params=names + [a.arg for a in args.kwonlyargs],
        required=set(names[: max(0, n_required)]),
        has_kwargs=args.kwarg is not None,
        lineno=fn.lineno,
    )
    for kwonly, default in zip(args.kwonlyargs, args.kw_defaults):
        if default is None:
            info.required.add(kwonly.arg)
    return info


def _extract_class(
    node: ast.ClassDef, module: str, path: str, aliases: Dict[str, str]
) -> ServiceInfo:
    info = ServiceInfo(
        name=node.name,
        module=module,
        path=path,
        lineno=node.lineno,
        bases=[_decorator_name(base) for base in node.bases],
    )
    for deco in node.decorator_list:
        if _decorator_name(deco) == "WSRFPortType" and isinstance(deco, ast.Call):
            info.port_types.extend(_decorator_name(arg) for arg in deco.args)

    for item in node.body:
        if isinstance(item, ast.Assign) and len(item.targets) == 1:
            target = item.targets[0]
            if not isinstance(target, ast.Name):
                continue
            info.class_attrs.add(target.id)
            if target.id == "SERVICE_NS":
                info.service_ns = ns_symbol_for(item.value, aliases)
            value = item.value
            if (
                isinstance(value, ast.Call)
                and _decorator_name(value.func) == "Resource"
            ):
                info.resource_fields.add(target.id)
        elif isinstance(item, ast.AnnAssign) and isinstance(item.target, ast.Name):
            info.class_attrs.add(item.target.id)
        elif isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            deco_names = [_decorator_name(d) for d in item.decorator_list]
            if "ResourceProperty" in deco_names:
                info.resource_properties.add(item.name)
            elif "property" in deco_names:
                info.properties.add(item.name)
            elif "WebMethod" in deco_names:
                method = _extract_method(item)
                for deco in item.decorator_list:
                    if _decorator_name(deco) == "WebMethod":
                        meta = _web_method_meta(deco)
                        method.one_way = meta["one_way"]
                        method.requires_resource = meta["requires_resource"]
                info.web_methods[item.name] = method
                info.methods.add(item.name)
            else:
                info.methods.add(item.name)
    return info


def build_model(modules: List[Tuple[str, str, ast.Module]]) -> ContractModel:
    """Extract the contract model from parsed modules.

    *modules* is ``[(module_name, path, tree), ...]`` — typically every
    file the engine is about to analyze, so fixtures and the real tree
    each get a self-consistent model.
    """
    model = ContractModel()
    for module_name, path, tree in modules:
        aliases = module_ns_aliases(tree)
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef):
                info = _extract_class(node, module_name, path, aliases)
                model.classes[info.name] = info

    # Transitive closures over base-name edges.
    def closure(roots: frozenset) -> Set[str]:
        out: Set[str] = set()
        changed = True
        while changed:
            changed = False
            for name, info in model.classes.items():
                if name in out:
                    continue
                if any(b in roots or b in out for b in info.bases):
                    out.add(name)
                    changed = True
        return out

    model.fault_classes = closure(FAULT_ROOTS) | set(FAULT_ROOTS)
    model.service_classes = closure(SERVICE_ROOTS)
    return model
