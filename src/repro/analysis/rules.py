"""The per-module wsrfcheck rules (WSRF001-003, DET001, WAL001, SIM001).

Each rule is a generator over one module's AST plus the global contract
model; see ``docs/static_analysis.md`` for the catalog with examples
and the suppression syntax.  Rules favor precision over recall: a site
the analysis cannot resolve statically (computed method names, dynamic
namespaces) is skipped, not guessed at.

The whole-program rules (WSRF004-005, DET002, WAL002, LOCK001) live in
:mod:`repro.analysis.rules_interproc`; they reuse the site detectors
defined here (``det_source_sites``, ``store_mutation``) so the two
tiers agree on what counts as a source.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple

from repro.analysis.engine import Finding, ModuleContext, register_rule
from repro.analysis.model import ns_symbol_for

# -- shared AST helpers ------------------------------------------------------------


def enclosing_symbols(tree: ast.Module) -> Dict[int, str]:
    """Map id(node) -> "Class.method" for every node, for stable fingerprints."""
    out: Dict[int, str] = {}

    def visit(node: ast.AST, stack: Tuple[str, ...]) -> None:
        if isinstance(node, (ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef)):
            stack = stack + (node.name,)
        out[id(node)] = ".".join(stack)
        for child in ast.iter_child_nodes(node):
            visit(child, stack)

    visit(tree, ())
    return out


def call_name(node: ast.expr) -> str:
    """Rightmost name of a call target ('call' for client.call, ...)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return ""


def dotted_parts(node: ast.expr) -> List[str]:
    """['np', 'random', 'default_rng'] for np.random.default_rng."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return list(reversed(parts))


def qname_constants(ctx: ModuleContext) -> Dict[str, Tuple[str, str]]:
    """Module-level ``X = QName(NS_ALIAS, "Local")`` constants."""
    from repro.analysis.model import module_ns_aliases

    aliases = module_ns_aliases(ctx.tree)
    out: Dict[str, Tuple[str, str]] = {}
    for node in ctx.tree.body:
        if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
            continue
        target = node.targets[0]
        if not isinstance(target, ast.Name):
            continue
        resolved = resolve_qname(node.value, aliases, {})
        if resolved is not None:
            out[target.id] = resolved
    return out


def resolve_qname(
    node: ast.expr,
    aliases: Dict[str, str],
    constants: Dict[str, Tuple[str, str]],
) -> Optional[Tuple[str, str]]:
    """Resolve an expression to (ns_symbol, local) if statically known."""
    if isinstance(node, ast.Name) and node.id in constants:
        return constants[node.id]
    if (
        isinstance(node, ast.Call)
        and call_name(node.func) == "QName"
        and len(node.args) == 2
        and isinstance(node.args[1], ast.Constant)
        and isinstance(node.args[1].value, str)
    ):
        ns = ns_symbol_for(node.args[0], aliases)
        if ns is not None:
            return (ns, node.args[1].value)
    return None


# -- WSRF001: proxy drift ----------------------------------------------------------


@register_rule(
    "WSRF001",
    "proxy drift",
    "client.call() sites must match a decorated @WebMethod signature "
    "in the target namespace",
)
def check_proxy_drift(ctx: ModuleContext) -> Iterator[Finding]:
    from repro.analysis.model import module_ns_aliases

    aliases = module_ns_aliases(ctx.tree)
    symbols = enclosing_symbols(ctx.tree)
    for node in ast.walk(ctx.tree):
        if not (isinstance(node, ast.Call) and call_name(node.func) == "call"):
            continue
        if len(node.args) < 3:
            continue
        ns_symbol = ns_symbol_for(node.args[1], aliases)
        method_node = node.args[2]
        if ns_symbol is None or not (
            isinstance(method_node, ast.Constant)
            and isinstance(method_node.value, str)
        ):
            continue  # dynamic site: out of static reach
        method_name = method_node.value
        declared = ctx.model.web_method(ns_symbol, method_name)
        symbol = symbols.get(id(node), "")
        if declared is None:
            yield Finding(
                rule="WSRF001",
                path=ctx.path,
                line=node.lineno,
                symbol=symbol,
                message=(
                    f"no service in namespace {ns_symbol} declares a "
                    f"@WebMethod {method_name!r}"
                ),
            )
            continue
        # argument-dict drift (literal dicts only)
        args_node: Optional[ast.expr] = node.args[3] if len(node.args) > 3 else None
        for kw in node.keywords:
            if kw.arg == "args":
                args_node = kw.value
        if isinstance(args_node, ast.Dict) and all(
            isinstance(k, ast.Constant) and isinstance(k.value, str)
            for k in args_node.keys
        ):
            sent = [k.value for k in args_node.keys]  # type: ignore[union-attr]
            unknown = [k for k in sent if k not in declared.params]
            missing = sorted(declared.required - set(sent))
            if unknown and not declared.has_kwargs:
                yield Finding(
                    rule="WSRF001",
                    path=ctx.path,
                    line=node.lineno,
                    symbol=symbol,
                    message=(
                        f"call to {method_name!r} sends argument(s) "
                        f"{unknown} not accepted by the @WebMethod "
                        f"(accepts {declared.params}); the wrapper drops "
                        "them silently"
                    ),
                )
            if missing:
                yield Finding(
                    rule="WSRF001",
                    path=ctx.path,
                    line=node.lineno,
                    symbol=symbol,
                    message=(
                        f"call to {method_name!r} omits required "
                        f"argument(s) {missing}"
                    ),
                )
        # one-way drift
        for kw in node.keywords:
            if (
                kw.arg == "one_way"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value is True
                and not declared.one_way
            ):
                yield Finding(
                    rule="WSRF001",
                    path=ctx.path,
                    line=node.lineno,
                    symbol=symbol,
                    message=(
                        f"{method_name!r} is invoked one-way but the "
                        "@WebMethod is not declared one_way=True; its "
                        "response would be silently discarded"
                    ),
                )


# -- WSRF002: undeclared resource property access ----------------------------------

_RP_READERS = {"get_resource_property": 1, "get_multiple_resource_properties": 1}


@register_rule(
    "WSRF002",
    "undeclared resource property access",
    "RP reads must name a declared @ResourceProperty; service state "
    "writes must hit declared Resource fields",
)
def check_rp_access(ctx: ModuleContext) -> Iterator[Finding]:
    from repro.analysis.model import module_ns_aliases

    aliases = module_ns_aliases(ctx.tree)
    constants = qname_constants(ctx)
    symbols = enclosing_symbols(ctx.tree)

    # client side: RP reads against the declared catalog
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        reader = call_name(node.func)
        if reader not in _RP_READERS or len(node.args) < 2:
            continue
        arg = node.args[_RP_READERS[reader]]
        targets = arg.elts if isinstance(arg, (ast.List, ast.Tuple)) else [arg]
        for target in targets:
            resolved = resolve_qname(target, aliases, constants)
            if resolved is None:
                continue
            ns_symbol, local = resolved
            declared = ctx.model.resource_property_names(ns_symbol)
            if declared and local not in declared:
                yield Finding(
                    rule="WSRF002",
                    path=ctx.path,
                    line=node.lineno,
                    symbol=symbols.get(id(node), ""),
                    message=(
                        f"reads resource property {local!r} but no service "
                        f"in namespace {ns_symbol} declares it via "
                        f"@ResourceProperty (declared: {sorted(declared)})"
                    ),
                )

    # service side: self.<attr> writes must be declared state
    for class_node in ast.walk(ctx.tree):
        if not isinstance(class_node, ast.ClassDef):
            continue
        if class_node.name not in ctx.model.service_classes:
            continue
        members = ctx.model.declared_members(class_node.name)
        for node in ast.walk(class_node):
            if not isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                continue
            targets = (
                node.targets
                if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                if not (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    continue
                name = target.attr
                if name.startswith("_") or name in members:
                    continue
                yield Finding(
                    rule="WSRF002",
                    path=ctx.path,
                    line=node.lineno,
                    symbol=symbols.get(id(node), ""),
                    message=(
                        f"write to undeclared attribute self.{name}: not a "
                        f"Resource field of {class_node.name}, so the value "
                        "is never persisted to the WS-Resource state"
                    ),
                )


# -- WSRF003: fault discipline -----------------------------------------------------


@register_rule(
    "WSRF003",
    "untyped fault raised by service code",
    "faults raised inside a ServiceSkeleton subclass must be BaseFault "
    "subclasses so clients can reconstruct them",
)
def check_fault_discipline(ctx: ModuleContext) -> Iterator[Finding]:
    symbols = enclosing_symbols(ctx.tree)
    for class_node in ast.walk(ctx.tree):
        if not isinstance(class_node, ast.ClassDef):
            continue
        if class_node.name not in ctx.model.service_classes:
            continue
        for node in ast.walk(class_node):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            exc = node.exc
            if not isinstance(exc, ast.Call):
                continue  # bare re-raise or exception variable: skip
            name = call_name(exc.func)
            if not name or not isinstance(exc.func, ast.Name):
                continue
            if name in ctx.model.fault_classes:
                continue
            yield Finding(
                rule="WSRF003",
                path=ctx.path,
                line=node.lineno,
                symbol=symbols.get(id(node), ""),
                message=(
                    f"service {class_node.name} raises {name}, which is not "
                    "a BaseFault subclass; clients get an untyped soap:Server "
                    "fault instead of a reconstructible WS-BaseFault"
                ),
            )


# -- WAL001: write-ahead ordering --------------------------------------------------


@register_rule(
    "WAL001",
    "notification may outrun the db_save stage",
    "service code must not fire_and_forget from inside a ServiceSkeleton "
    "subclass: the message can leave the host before the state it "
    "announces is persisted, so a crash loses the state but not the "
    "message (docs/durability.md); route it through "
    "wsrf.send_after_persist instead",
)
def check_write_ahead_ordering(ctx: ModuleContext) -> Iterator[Finding]:
    symbols = enclosing_symbols(ctx.tree)
    for class_node in ast.walk(ctx.tree):
        if not isinstance(class_node, ast.ClassDef):
            continue
        if class_node.name not in ctx.model.service_classes:
            continue
        for node in ast.walk(class_node):
            if not isinstance(node, ast.Call):
                continue
            if call_name(node.func) != "fire_and_forget":
                continue
            yield Finding(
                rule="WAL001",
                path=ctx.path,
                line=node.lineno,
                symbol=symbols.get(id(node), ""),
                message=(
                    f"service {class_node.name} calls fire_and_forget; the "
                    "send can overtake the dispatch pipeline's db_save "
                    "stage, breaking the write-ahead contract — use "
                    "self.wsrf.send_after_persist so the message leaves "
                    "only after the acknowledged state is durable"
                ),
            )


# -- DET001: nondeterminism --------------------------------------------------------

_WALLCLOCK = {
    ("time", "time"),
    ("time", "time_ns"),
    ("time", "monotonic"),
    ("time", "monotonic_ns"),
    ("time", "perf_counter"),
    ("time", "perf_counter_ns"),
}
_DATETIME_CALLS = {"now", "utcnow", "today"}
_UUID_CALLS = {"uuid1", "uuid4"}

#: path suffixes allowed to read the host timer family (perf_counter &
#: friends): the wall-clock profiler's entire job is timing the host.
#: The exemption is for timers ONLY — datetime, RNG, uuid and set-order
#: findings still fire in these files — and a suffix match keeps the
#: rule hot everywhere else (repro.sim, repro.net, repro.wsrf, ...).
DET001_TIMER_ALLOWLIST = ("obs/prof.py",)


def _timer_allowlisted(path: str) -> bool:
    normalized = path.replace("\\", "/")
    return normalized.endswith(DET001_TIMER_ALLOWLIST)


def det_source_sites(
    tree: ast.Module, path: str
) -> Iterator[Tuple[ast.AST, str]]:
    """``(node, message)`` for every nondeterminism site in *tree*.

    Shared between DET001 (reports each site in place) and DET002
    (seeds the interprocedural taint with the functions containing
    them), so the two rules can never disagree on what a source is.
    """
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            parts = dotted_parts(node.func)
            dotted = ".".join(parts)
            if tuple(parts[-2:]) in _WALLCLOCK and parts[0] == "time":
                if not _timer_allowlisted(path):
                    yield (
                        node,
                        f"{dotted}() reads the wall clock; use env.now so "
                        "runs are reproducible under the simulation clock",
                    )
            elif len(parts) >= 2 and parts[-1] in _DATETIME_CALLS and (
                "datetime" in parts[:-1] or parts[0] == "datetime"
            ):
                yield (
                    node,
                    f"{dotted}() reads the wall clock; derive timestamps "
                    "from env.now instead",
                )
            elif parts[:1] == ["random"] and len(parts) == 2:
                yield (
                    node,
                    f"{dotted}() uses the process-global random state; "
                    "thread an explicitly seeded np.random.Generator through "
                    "instead",
                )
            elif (
                len(parts) >= 2
                and parts[-2:] != ["random", "default_rng"]
                and parts[0] in ("np", "numpy")
                and "random" in parts[1:-1] + [parts[1]]
                and parts[-1] != "Generator"
                and len(parts) == 3
            ):
                yield (
                    node,
                    f"{dotted}() draws from numpy's global RNG; use an "
                    "explicitly seeded np.random.default_rng(seed)",
                )
            elif parts[-2:] == ["random", "default_rng"] or parts == ["default_rng"]:
                if not node.args and not node.keywords:
                    yield (
                        node,
                        "default_rng() without a seed is entropy-seeded; "
                        "pass an explicit seed so chaos/property tests "
                        "reproduce",
                    )
            elif parts[:1] == ["uuid"] and parts[-1] in _UUID_CALLS:
                yield (
                    node,
                    f"{dotted}() is nondeterministic; derive ids from a "
                    "seeded counter (see repro.wsa.headers)",
                )
            elif parts[:1] == ["os"] and parts[-1] == "urandom":
                yield (node, "os.urandom() is nondeterministic")
            elif parts[:1] == ["secrets"]:
                yield (node, f"{dotted}() is nondeterministic")
        elif isinstance(node, (ast.For, ast.comprehension)):
            it = node.iter
            if isinstance(it, ast.Set) or (
                isinstance(it, ast.Call)
                and isinstance(it.func, ast.Name)
                and it.func.id in ("set", "frozenset")
            ):
                yield (
                    node if isinstance(node, ast.For) else it,
                    "iterating an unordered set: wrap in sorted(...) so "
                    "downstream decisions are order-stable",
                )


@register_rule(
    "DET001",
    "nondeterminism",
    "wall-clock reads, global RNG use, unseeded generators and "
    "unordered set iteration break reproducible (seeded) runs",
)
def check_determinism(ctx: ModuleContext) -> Iterator[Finding]:
    symbols = enclosing_symbols(ctx.tree)
    for node, message in det_source_sites(ctx.tree, ctx.path):
        yield Finding(
            rule="DET001",
            path=ctx.path,
            line=node.lineno,
            symbol=symbols.get(id(node), ""),
            message=message,
        )


# -- SIM001: real blocking calls ---------------------------------------------------

_BLOCKING_MODULES = {"socket", "subprocess", "requests", "urllib", "http"}


@register_rule(
    "SIM001",
    "blocking call inside the simulated world",
    "real sleeps, sockets and file I/O stall the discrete-event loop; "
    "use env.timeout / the simulated fs and network",
)
def check_blocking(ctx: ModuleContext) -> Iterator[Finding]:
    if ctx.module.startswith("repro.analysis"):
        return  # the analyzer itself legitimately reads source files
    symbols = enclosing_symbols(ctx.tree)
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        parts = dotted_parts(node.func)
        dotted = ".".join(parts)
        message = None
        if parts[-2:] == ["time", "sleep"] or parts == ["sleep"]:
            message = (
                f"{dotted}() blocks the real thread; yield "
                "env.timeout(delay) to advance simulated time"
            )
        elif parts[:1] and parts[0] in _BLOCKING_MODULES and len(parts) > 1:
            message = (
                f"{dotted}() performs real I/O inside the simulation; "
                "use repro.net / repro.osim equivalents"
            )
        elif parts == ["open"]:
            message = (
                "open() performs real file I/O inside the simulation; "
                "use the simulated SimFileSystem"
            )
        elif parts[-2:] == ["threading", "Thread"] or (
            parts[:1] == ["threading"] and len(parts) > 1
        ):
            message = (
                f"{dotted}() starts a real thread; model concurrency as "
                "simulation processes (env.process)"
            )
        if message is not None:
            yield Finding(
                rule="SIM001",
                path=ctx.path,
                line=node.lineno,
                symbol=symbols.get(id(node), ""),
                message=message,
            )


# -- shared-state mutation sites (used by LOCK001 in rules_interproc) --------------

_STORE_MUTATIONS = {"save", "destroy", "create"}


def store_mutation(node: ast.Call) -> Optional[str]:
    """'store.save' if this call mutates the resource store, else None."""
    func = node.func
    if not isinstance(func, ast.Attribute):
        return None
    if func.attr == "destroy_resource":
        return "destroy_resource"
    if (
        func.attr in _STORE_MUTATIONS
        and isinstance(func.value, ast.Attribute)
        and func.value.attr == "store"
    ):
        return f"store.{func.attr}"
    return None
