"""CLI for wsrfcheck: ``python -m repro.analysis [paths...]``.

Exit status is 0 when every finding is suppressed or baselined, 1
otherwise — CI runs ``python -m repro.analysis src/repro`` and fails
the build on any new finding.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.analysis.engine import (
    analyze_paths,
    iter_rules,
    load_baseline,
    write_baseline,
)

DEFAULT_BASELINE = "wsrfcheck-baseline.json"


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="wsrfcheck: WSRF contract, determinism and sim-safety linter",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files or directories to analyze (default: src/repro)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--rules", metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--baseline", metavar="FILE", default=DEFAULT_BASELINE,
        help=f"baseline of accepted findings (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore the baseline file; report every finding",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="accept all current findings into the baseline file and exit 0",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog and exit"
    )
    opts = parser.parse_args(argv)

    if opts.list_rules:
        for rule in iter_rules():
            print(f"{rule.code}  {rule.title}")
            if rule.description:
                print(f"        {rule.description}")
        return 0

    rules = (
        [code.strip() for code in opts.rules.split(",") if code.strip()]
        if opts.rules
        else None
    )
    baseline_path = Path(opts.baseline)
    baseline = None if opts.no_baseline else load_baseline(baseline_path)

    if opts.write_baseline:
        report = analyze_paths(opts.paths, rules=rules, baseline=None)
        write_baseline(baseline_path, report.findings)
        print(
            f"wsrfcheck: wrote {len(report.findings)} finding(s) to "
            f"{baseline_path}"
        )
        return 0

    report = analyze_paths(opts.paths, rules=rules, baseline=baseline)
    if opts.format == "json":
        print(json.dumps(report.to_json(), indent=2))
    else:
        print(report.render_text())
    return report.exit_code


if __name__ == "__main__":
    sys.exit(main())
