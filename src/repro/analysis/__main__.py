"""CLI for wsrfcheck: ``python -m repro.analysis [paths...]``.

Exit-code matrix (tested by ``tests/test_analysis.py``):

- **0** — every finding is suppressed or baselined, no parse errors,
  no stale baseline entries;
- **1** — findings, parse errors, or stale baseline entries (the
  ratchet: entries matching nothing must be pruned);
- **2** — usage or I/O errors: unknown rule codes, nonexistent paths,
  an unreadable baseline file (argparse misuse also exits 2).

CI runs ``python -m repro.analysis src/repro`` and fails the build on
any new finding; ``--format sarif`` feeds the code-scanning upload.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.analysis.engine import (
    BaselineError,
    analyze_paths,
    iter_rules,
    load_baseline,
    prune_baseline,
    rule_catalog,
    write_baseline,
)

DEFAULT_BASELINE = "wsrfcheck-baseline.json"


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="wsrfcheck: WSRF contract, determinism and sim-safety linter",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files or directories to analyze (default: src/repro)",
    )
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--rules", metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--baseline", metavar="FILE", default=DEFAULT_BASELINE,
        help=f"baseline of accepted findings (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore the baseline file; report every finding",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="accept all current findings into the baseline file and exit 0 "
        "(one-time adoption; day-to-day pruning is --update-baseline)",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="prune baseline entries that no longer match any finding and "
        "exit 0; never adds entries (baselines only shrink)",
    )
    parser.add_argument(
        "--show-suppressed", action="store_true",
        help="audit view: also list findings silenced by "
        "'# wsrfcheck: ignore[...]' comments",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog and exit"
    )
    opts = parser.parse_args(argv)

    if opts.list_rules:
        for rule in iter_rules():
            kind = "program" if rule.program else "module"
            print(f"{rule.code}  [{kind}]  {rule.title}")
            if rule.description:
                print(f"        {rule.description}")
        return 0

    rules = (
        [code.strip() for code in opts.rules.split(",") if code.strip()]
        if opts.rules
        else None
    )
    if rules:
        unknown = sorted(set(rules) - set(rule_catalog()))
        if unknown:
            print(
                f"wsrfcheck: unknown rule code(s): {', '.join(unknown)}",
                file=sys.stderr,
            )
            return 2
    missing = [p for p in opts.paths if not Path(p).exists()]
    if missing:
        print(
            f"wsrfcheck: no such file or directory: {', '.join(missing)}",
            file=sys.stderr,
        )
        return 2

    baseline_path = Path(opts.baseline)
    try:
        baseline = None if opts.no_baseline else load_baseline(baseline_path)
    except BaselineError as exc:
        print(f"wsrfcheck: {exc}", file=sys.stderr)
        return 2

    if opts.write_baseline:
        report = analyze_paths(opts.paths, rules=rules, baseline=None)
        write_baseline(baseline_path, report.findings)
        print(
            f"wsrfcheck: wrote {len(report.findings)} finding(s) to "
            f"{baseline_path}"
        )
        return 0

    if opts.update_baseline:
        report = analyze_paths(opts.paths, rules=None, baseline=baseline)
        pruned = prune_baseline(baseline_path, report.matched_baseline)
        print(
            f"wsrfcheck: pruned {pruned} stale entr"
            f"{'y' if pruned == 1 else 'ies'} from {baseline_path}; "
            f"{len(report.matched_baseline)} kept"
        )
        return 0

    report = analyze_paths(opts.paths, rules=rules, baseline=baseline)
    if opts.format == "json":
        print(json.dumps(report.to_json(show_suppressed=opts.show_suppressed), indent=2))
    elif opts.format == "sarif":
        print(report.render_sarif())
    else:
        print(report.render_text(show_suppressed=opts.show_suppressed))
    return report.exit_code


if __name__ == "__main__":
    sys.exit(main())
