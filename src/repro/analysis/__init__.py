"""wsrfcheck — static whole-program analysis plus a runtime sanitizer.

WSRF.NET's central lesson is that the attribute-annotated programming
model only pays off when *tooling* checks and transforms it: the code
generator catches contract errors before they ship.  Our reproduction
declares the same contracts via ``@ResourceProperty`` / ``@WebMethod`` /
``@WSRFPortType`` — this package is the checking half of that tooling,
in two tiers.

**Tier 1 — static.**  ``python -m repro.analysis src/repro`` walks the
source tree, extracts the contract model from the decorators (no
imports — pure AST), builds a whole-program call graph, and runs the
rule catalog:

- **WSRF001** proxy drift: every ``client.call(epr, ns, "Name", {...})``
  site must match a decorated ``@WebMethod`` signature in that namespace;
- **WSRF002** undeclared resource property access, both client-side
  (``get_resource_property`` QNames) and service-side (``self.x = ...``
  writes that silently bypass ``Resource`` persistence);
- **WSRF003** faults raised by service code must be typed
  ``BaseFault`` subclasses so clients can reconstruct them;
- **WSRF004** use-after-destroy: a resource id flowing into any use
  after a definite ``destroy_resource``/``Destroy`` on every path;
- **WSRF005** EPR escape: endpoint references parked in process-global
  state that a host restart silently invalidates;
- **DET001** nondeterminism sources: wall-clock time, global RNGs,
  unseeded generators, unordered ``set`` iteration;
- **DET002** nondeterminism *reach*: service methods and detached
  processes whose behavior a DET001 source perturbs through helpers;
- **SIM001** real blocking calls (``time.sleep``, sockets, file I/O)
  inside the simulated world;
- **WAL001/WAL002** write-ahead ordering: raw ``fire_and_forget`` on
  the dispatch pipeline (lexical / through the call graph) instead of
  the post-persist outbox;
- **LOCK001** static lockset: shared WS-Resource state mutated on a
  call path from an ``env.process(...)`` root with no resource Lock
  acquired anywhere along the chain.

**Tier 2 — dynamic.**  :class:`RaceSanitizer` (``Testbed(sanitize=True)``)
checks the same properties on the paths a simulation actually takes:
vector-clock happens-before plus Eraser-style dynamic lockset per
WS-Resource row, lock-order-inversion detection, and dispatch
reentrancy.  Off by default; a single ``env.san is None`` check per
kernel hook, like ``env.prof``.

See ``docs/static_analysis.md`` for the rule catalog, the
``# wsrfcheck: ignore[RULE, ...]`` suppression syntax, baselines, SARIF
output, and how to add rules.
"""

from __future__ import annotations

from repro.analysis.engine import (
    AnalysisReport,
    Finding,
    Rule,
    analyze_paths,
    iter_rules,
    load_baseline,
    rule_catalog,
)
from repro.analysis.model import ContractModel, build_model
from repro.analysis.sanitizer import RaceSanitizer, SanitizerReport

__all__ = [
    "AnalysisReport",
    "ContractModel",
    "Finding",
    "RaceSanitizer",
    "Rule",
    "SanitizerReport",
    "analyze_paths",
    "build_model",
    "iter_rules",
    "load_baseline",
    "rule_catalog",
]
