"""wsrfcheck — static contract, determinism and sim-safety analysis.

WSRF.NET's central lesson is that the attribute-annotated programming
model only pays off when *tooling* checks and transforms it: the code
generator catches contract errors before they ship.  Our reproduction
declares the same contracts via ``@ResourceProperty`` / ``@WebMethod`` /
``@WSRFPortType`` — this package is the checking half of that tooling.

``python -m repro.analysis src/repro`` walks the source tree, extracts
the contract model from the decorators (no imports — pure AST), and
runs the rule catalog:

- **WSRF001** proxy drift: every ``client.call(epr, ns, "Name", {...})``
  site must match a decorated ``@WebMethod`` signature in that namespace;
- **WSRF002** undeclared resource property access, both client-side
  (``get_resource_property`` QNames) and service-side (``self.x = ...``
  writes that silently bypass ``Resource`` persistence);
- **WSRF003** faults raised by service code must be typed
  ``BaseFault`` subclasses so clients can reconstruct them;
- **DET001** nondeterminism: wall-clock time, global RNGs, unseeded
  generators, unordered ``set`` iteration;
- **SIM001** real blocking calls (``time.sleep``, sockets, file I/O)
  inside the simulated world;
- **SIM002** shared WS-Resource state mutated from a detached
  simulation process without holding a ``repro.sim.sync`` primitive.

See ``docs/static_analysis.md`` for the rule catalog, the
``# wsrfcheck: ignore[RULE]`` suppression syntax, and how to add rules.
"""

from __future__ import annotations

from repro.analysis.engine import (
    AnalysisReport,
    Finding,
    Rule,
    analyze_paths,
    iter_rules,
    load_baseline,
    rule_catalog,
)
from repro.analysis.model import ContractModel, build_model

__all__ = [
    "AnalysisReport",
    "ContractModel",
    "Finding",
    "Rule",
    "analyze_paths",
    "build_model",
    "iter_rules",
    "load_baseline",
    "rule_catalog",
]
