"""Runtime happens-before + lockset sanitizer for the simulator.

The static tier (``repro.analysis`` rules, notably LOCK001) proves the
*absence* of unlocked shared-state mutation on call paths it can see;
this module is the dynamic tier that checks the property on the paths a
run actually takes.  It watches three things while a simulation executes:

* **Data races** — two *writes* to the same WS-Resource row (keyed
  ``(machine, service, resource_id)`` — every machine deploys services
  under the same paths, so the rid alone is ambiguous) from different
  simulated processes, with
  no common Lock held and no happens-before edge between them.  Classic
  Eraser lockset crossed with vector-clock happens-before: holding a
  common lock *or* being causally ordered clears the pair; both missing
  makes a report.  Only write/write pairs count: the kernel is
  cooperative, so a single store call is atomic and a lone read merely
  observes one of the two orders (benign staleness) — but a racy
  load-modify-save always *ends* in two unordered writes, which is
  exactly the lost-update corruption the per-resource mutex exists to
  prevent.
* **Lock-order inversions** — process P acquires A then B while process
  Q (ever) acquired B then A.  In the FIFO simulator this is a latent
  deadlock the schedule may or may not hit; the sanitizer reports the
  cycle the first time the second edge appears.
* **Dispatch reentrancy** — a dispatch pipeline entering ``_dispatch``
  for a ``(service, rid)`` its own call stack is already dispatching.
  The per-resource mutex is not reentrant, so this deadlocks for real;
  the report names the cause while the run hangs at its deadline.

Happens-before edges come from the kernel itself: every scheduled event
is stamped with the scheduler's vector clock (``Event._san_vc``), and a
process resuming on an event joins that clock.  That single rule covers
process spawn (the boot event), process join (the terminal event),
timeouts (program order), interrupts, and lock hand-off (``release``
succeeds the next waiter's event from the releaser's context).  Code
running outside any process — kernel callbacks, test harness code
between ``run()`` calls — executes on the *kernel clock* (tid 0), which
joins every event the loop processes and is therefore causally after
everything that has actually executed.  Entering ``run()`` is a barrier
the other way: top-level code only executes while the loop is idle, so
every suspended process joins the kernel clock there (setup writes made
before a run precede everything inside it).

Crash recovery is a barrier: ``WrapperService.restore`` drops the
service's access history (the old boot's in-flight handlers are dead and
their writes rolled back) and records a recovery clock that every
subsequent dispatch of that service joins, because the host refuses
traffic until the restore completed (docs/durability.md).  This mirrors
the static tier's LOCK001 recovery allowlist.

Everything here is observation only: hooks never schedule, never touch
simulated time, and with ``env.san is None`` (the default) each hook
site is a single attribute check — the same zero-cost-off discipline as
``env.prof`` (docs/observability.md).  tests/test_sanitizer.py asserts
sanitized runs are byte-identical to bare ones.

Usage::

    tb = Testbed(n_machines=4, sanitize=True)
    ... drive the scenario ...
    tb.san.assert_clean()          # raises listing every report
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, List, Optional, Set, Tuple

__all__ = ["RaceSanitizer", "SanitizerReport"]


@dataclass(frozen=True)
class SanitizerReport:
    """One condition the sanitizer observed.

    ``kind`` is ``"data-race"``, ``"lock-order-inversion"`` or
    ``"dispatch-reentrancy"``; ``key`` locates the shared state (a
    ``service/resource_id`` pair or a lock cycle); ``time`` is the
    simulated instant of detection; ``detail`` is the human-readable
    witness (who collided with whom, doing what).
    """

    kind: str
    key: str
    time: float
    detail: str

    def __str__(self) -> str:  # pragma: no cover - formatting aid
        return f"[{self.kind}] t={self.time:g} {self.key}: {self.detail}"


VC = Dict[int, int]


def _join(into: VC, other: VC) -> None:
    for tid, tick in other.items():
        if tick > into.get(tid, 0):
            into[tid] = tick


def _happens_before(earlier: VC, later: VC) -> bool:
    return all(tick <= later.get(tid, 0) for tid, tick in earlier.items())


@dataclass(frozen=True)
class _Access:
    vc: Tuple[Tuple[int, int], ...]
    locks: FrozenSet[int]
    op: str
    time: float
    who: str


_KERNEL_TID = 0


class RaceSanitizer:
    """Attach to an :class:`~repro.sim.Environment` as ``env.san``.

    Construct it *before* services deploy: ``WrapperService.__init__``
    reads ``env.san`` to instrument its resource store, so a sanitizer
    attached afterwards sees locks and dispatches but no store traffic.
    """

    def __init__(self, env) -> None:
        self.env = env
        env.san = self
        self.reports: List[SanitizerReport] = []
        #: store accesses inspected (a liveness check for tests)
        self.accesses_checked = 0

        # -- logical threads (simulated processes + the kernel) ------------
        self._procs: Dict[int, Any] = {}  # id(Process) -> Process (pins ids)
        self._tids: Dict[int, int] = {}  # id(Process) -> tid
        self._next_tid = _KERNEL_TID + 1
        self._names: Dict[int, str] = {_KERNEL_TID: "<kernel>"}
        self._clocks: Dict[int, VC] = {_KERNEL_TID: {_KERNEL_TID: 0}}
        #: kernel clock at the last run() entry; threads first seen
        #: mid-run started after it (see on_run_begin)
        self._run_barrier: VC = {}

        # -- locks ---------------------------------------------------------
        self._locks: Dict[int, Any] = {}  # id(Lock) -> Lock (pins ids)
        self._lock_labels: Dict[int, str] = {}
        self._held: Dict[int, List[int]] = {}  # tid -> lock ids, outermost first
        self._release_vc: Dict[int, VC] = {}  # id(Lock) -> clock at last release
        self._pending_grants: Dict[int, int] = {}  # id(acquire Event) -> id(Lock)
        self._order_edges: Dict[int, Set[int]] = {}  # id(Lock) -> ids acquired inside
        self._order_witness: Dict[Tuple[int, int], str] = {}

        # -- shared state shadow -------------------------------------------
        # Rows are keyed (machine, service, rid): every machine deploys
        # services under the same paths ("ExecService"), so the rid alone
        # aliases rows of different machines' stores.
        self._shadow: Dict[Tuple[str, str, str], Dict[int, _Access]] = {}

        # -- dispatch + recovery -------------------------------------------
        self._dispatch_stack: Dict[int, List[Tuple[str, str, Optional[str]]]] = {}
        # (machine, service) -> clock after restore
        self._recovery_vc: Dict[Tuple[str, str], VC] = {}

        self._dedupe: Set[Tuple] = set()

    # -- identity -----------------------------------------------------------------

    def _tid_for(self, process) -> int:
        key = id(process)
        tid = self._tids.get(key)
        if tid is None:
            tid = self._next_tid
            self._next_tid += 1
            self._tids[key] = tid
            self._procs[key] = process
            self._names[tid] = getattr(process, "name", "") or f"proc-{tid}"
            # A thread first observed now necessarily started running
            # after the current run() began (its boot event also stamps
            # its spawner's clock; this covers spawns that predate the
            # run, e.g. machine service loops created at testbed setup).
            clock = dict(self._run_barrier)
            clock[tid] = 0
            self._clocks[tid] = clock
        return tid

    def _current_tid(self) -> int:
        process = self.env._active_process
        if process is None:
            return _KERNEL_TID
        return self._tid_for(process)

    def _tick(self, tid: int) -> VC:
        clock = self._clocks[tid]
        clock[tid] = clock.get(tid, 0) + 1
        return clock

    # -- kernel hooks (called from repro.sim with a None-checked env.san) -----------

    def on_schedule(self, event) -> None:
        """Stamp *event* with the scheduling context's clock."""
        event._san_vc = dict(self._tick(self._current_tid()))

    def on_step(self, event) -> None:
        """The loop is about to run *event*'s callbacks: advance the
        kernel clock past it, so kernel-context code (callbacks, and any
        top-level code running after this step) is ordered after it."""
        vc = getattr(event, "_san_vc", None)
        if vc is not None:
            _join(self._clocks[_KERNEL_TID], vc)

    def on_run_begin(self) -> None:
        """``Environment.run`` was entered from the top level: everything
        the kernel context did while the loop was idle (testbed setup,
        assertions between runs) precedes everything in this run."""
        barrier = self._clocks[_KERNEL_TID]
        self._run_barrier = dict(barrier)
        for tid, clock in self._clocks.items():
            if tid != _KERNEL_TID:
                _join(clock, barrier)

    def on_resume(self, process, trigger) -> None:
        """*process* resumes on *trigger*: join the trigger's clock."""
        tid = self._tid_for(process)
        clock = self._clocks[tid]
        vc = getattr(trigger, "_san_vc", None)
        if vc is not None:
            _join(clock, vc)
        clock[tid] = clock.get(tid, 0) + 1
        lock_id = self._pending_grants.pop(id(trigger), None)
        if lock_id is not None:
            self._grant(tid, lock_id)

    def on_join(self, process, target) -> None:
        """*process* consumed an already-processed *target* synchronously
        (the fast path in ``Process._resume``)."""
        self.on_resume(process, target)

    # -- lock hooks -----------------------------------------------------------------

    def on_acquire(self, lock, event) -> None:
        """``Lock.acquire`` returned *event*; ownership lands on whichever
        process resumes on it (immediately if the lock was free)."""
        lock_id = id(lock)
        self._locks.setdefault(lock_id, lock)
        self._pending_grants[id(event)] = lock_id

    def on_release(self, lock) -> None:
        tid = self._current_tid()
        lock_id = id(lock)
        held = self._held.get(tid)
        if held and lock_id in held:
            held.remove(lock_id)
        # Lock hand-off happens-before: the next holder joins this clock
        # (directly on grant if the lock went free; via the succeeded
        # waiter event's stamp otherwise).
        self._release_vc[lock_id] = dict(self._tick(tid))

    def label_lock(self, lock, label: str) -> None:
        """Name a lock for reports (``resource_lock`` labels its mutexes)."""
        self._locks.setdefault(id(lock), lock)
        self._lock_labels[id(lock)] = label

    def _lock_name(self, lock_id: int) -> str:
        return self._lock_labels.get(lock_id, f"lock@{lock_id:#x}")

    def _grant(self, tid: int, lock_id: int) -> None:
        release_vc = self._release_vc.get(lock_id)
        if release_vc is not None:
            _join(self._clocks[tid], release_vc)
        held = self._held.setdefault(tid, [])
        for outer in held:
            self._order_edge(outer, lock_id, tid)
        held.append(lock_id)

    def _order_edge(self, outer: int, inner: int, tid: int) -> None:
        if outer == inner or inner in self._order_edges.get(outer, ()):
            return
        self._order_edges.setdefault(outer, set()).add(inner)
        self._order_witness[(outer, inner)] = self._names.get(tid, "?")
        # New edge outer->inner: a path inner ->* outer closes a cycle.
        path = self._find_path(inner, outer)
        if path is None:
            return
        cycle = [outer] + path  # outer -> inner -> ... -> outer
        names = " -> ".join(self._lock_name(l) for l in cycle)
        self._report(
            "lock-order-inversion",
            " <-> ".join(sorted({self._lock_name(l) for l in cycle[:-1]})),
            f"acquisition order cycle {names} "
            f"(latest edge by {self._names.get(tid, '?')!r})",
            dedupe=("inversion", frozenset(cycle)),
        )

    def _find_path(self, start: int, goal: int) -> Optional[List[int]]:
        stack: List[Tuple[int, List[int]]] = [(start, [start])]
        seen = {start}
        while stack:
            node, path = stack.pop()
            if node == goal:
                return path
            for nxt in self._order_edges.get(node, ()):
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append((nxt, path + [nxt]))
        return None

    # -- store access hooks ----------------------------------------------------------

    def instrument_wrapper(self, wrapper) -> None:
        """Wrap *wrapper*'s store so every row mutation reports here.

        Only the mutators are wrapped (``create``/``save``/``destroy``):
        a lone read is atomic in the cooperative kernel, and any racy
        load-modify-save ends in two unordered writes anyway (module
        docstring).  ``snapshot``/``restore`` stay bare — a host bounce
        is not dispatch work.
        """
        self.instrument_store(wrapper.store, owner=wrapper.machine.name)

    def instrument_store(self, store, owner: str = "") -> None:
        if getattr(store, "_san_instrumented", False):
            return
        store._san_instrumented = True
        for op in ("create", "save", "destroy"):
            original = getattr(store, op)

            def guarded(service, resource_id, *args, _orig=original, _op=op,
                        **kwargs):
                self.on_access(owner, service, resource_id, op=_op)
                return _orig(service, resource_id, *args, **kwargs)

            setattr(store, op, guarded)

    def on_access(self, owner: str, service: str, resource_id, *,
                  op: str) -> None:
        """A write to row ``(service, resource_id)`` of *owner*'s store
        by the current context: race-check it against the last write of
        every other logical thread, then become that record."""
        self.accesses_checked += 1
        tid = self._current_tid()
        clock = self._tick(tid)
        location = (owner, service, str(resource_id))
        locks = frozenset(self._held.get(tid) or ())
        slot = self._shadow.setdefault(location, {})
        who = self._names.get(tid, "?")
        for other_tid, record in slot.items():
            if other_tid == tid:
                continue
            if record.locks & locks:
                continue  # a common lock serializes the pair
            if _happens_before(dict(record.vc), clock):
                continue  # causally ordered
            self._report(
                "data-race",
                f"{owner}:{service}/{resource_id}",
                f"{who!r} {op} (locks {self._lockset_names(locks)}) races "
                f"{record.who!r} {record.op} at t={record.time:g} (locks "
                f"{self._lockset_names(record.locks)})",
                dedupe=("race", location, frozenset((who, record.who))),
            )
        slot[tid] = _Access(
            vc=tuple(sorted(clock.items())),
            locks=locks,
            op=op,
            time=self.env.now,
            who=who,
        )

    def _lockset_names(self, locks: FrozenSet[int]) -> str:
        if not locks:
            return "{}"
        return "{" + ", ".join(sorted(self._lock_name(l) for l in locks)) + "}"

    # -- dispatch + recovery hooks ----------------------------------------------------

    def on_dispatch_enter(self, owner: str, service: str,
                          resource_id: Optional[str]) -> None:
        tid = self._current_tid()
        recovery_vc = self._recovery_vc.get((owner, service))
        if recovery_vc is not None:
            # The host only accepts traffic once its restore finished, so
            # every dispatch is causally after recovery even though no
            # event connects them (the edge is the host coming back up).
            _join(self._clocks[tid], recovery_vc)
        stack = self._dispatch_stack.setdefault(tid, [])
        key = (owner, service, resource_id)
        if resource_id is not None and key in stack:
            self._report(
                "dispatch-reentrancy",
                f"{owner}:{service}/{resource_id}",
                f"{self._names.get(tid, '?')!r} re-entered the dispatch "
                f"pipeline for a resource it is already dispatching "
                f"(stack: {[f'{o}:{s}/{r}' for o, s, r in stack]}); the "
                f"resource mutex is not reentrant, this deadlocks",
                dedupe=("reentry", key, tid),
            )
        stack.append(key)

    def on_dispatch_exit(self, owner: str, service: str,
                         resource_id: Optional[str]) -> None:
        stack = self._dispatch_stack.get(self._current_tid())
        if not stack:
            return
        key = (owner, service, resource_id)
        for i in range(len(stack) - 1, -1, -1):
            if stack[i] == key:
                del stack[i]
                break

    def on_recovery_begin(self, wrapper) -> None:
        """``WrapperService.restore`` rolled the store back: drop the
        service's access history.  The crashed boot's in-flight accesses
        describe writes the checkpoint just erased — racing against them
        is meaningless (the static tier's LOCK001 allowlists recovery
        for the same reason)."""
        scope = (wrapper.machine.name, wrapper.service_name)
        for location in [l for l in self._shadow if l[:2] == scope]:
            del self._shadow[location]
        # Recovery runs after everything that actually executed so far
        # (the host is down; its old processes are dead).
        _join(self._clocks[self._current_tid()], self._clocks[_KERNEL_TID])

    def on_recovery_end(self, wrapper) -> None:
        """Restore (including ``wsrf_recover``'s own writes) finished:
        capture the recovery clock for :meth:`on_dispatch_enter`."""
        self._recovery_vc[(wrapper.machine.name, wrapper.service_name)] = dict(
            self._tick(self._current_tid())
        )

    # -- reporting --------------------------------------------------------------------

    def _report(self, kind: str, key: str, detail: str, dedupe: Tuple) -> None:
        if dedupe in self._dedupe:
            return
        self._dedupe.add(dedupe)
        self.reports.append(
            SanitizerReport(kind=kind, key=key, time=self.env.now, detail=detail)
        )

    def summary(self) -> Dict[str, int]:
        """Report counts by kind (empty dict when clean)."""
        out: Dict[str, int] = {}
        for report in self.reports:
            out[report.kind] = out.get(report.kind, 0) + 1
        return out

    def assert_clean(self) -> None:
        """Raise :class:`AssertionError` listing every report, if any."""
        if not self.reports:
            return
        lines = "\n".join(f"  {report}" for report in self.reports)
        raise AssertionError(
            f"sanitizer observed {len(self.reports)} condition(s):\n{lines}"
        )
