"""Module-qualified call graph over the analyzed tree (pure AST).

This is the whole-program half of wsrfcheck v2: where the per-file
rules see one module at a time, the call graph links every function
definition in the analyzed tree to the call sites that can reach it,
so rules can follow a contract violation through helper layers
(``docs/static_analysis.md``).

Resolution is deliberately conservative — precision over recall, the
same stance as the per-file rules:

- ``name(...)`` resolves through local defs, module-level defs and
  ``from x import y`` / ``import x as z`` aliases;
- ``self.method(...)`` resolves through the class MRO recorded in the
  :class:`~repro.analysis.model.ContractModel`;
- ``Class.method(...)`` and ``Class(...)`` (constructor → ``__init__``)
  resolve when ``Class`` is a class in the analyzed tree;
- ``var.method(...)`` resolves when ``var`` was assigned a constructor
  call (``var = Class(...)``) earlier in the same function, or when the
  attribute chain starts from a typed ``self`` attribute the model
  knows about.

Anything else (computed attributes, duck-typed parameters) stays
unresolved rather than guessed at.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.model import ContractModel


@dataclass
class FunctionNode:
    """One function or method definition in the analyzed tree."""

    qualname: str  # "module.Class.method" or "module.fn" (or nested "module.fn.inner")
    module: str
    path: str
    name: str
    lineno: int
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    class_name: Optional[str] = None  # immediately enclosing class, if any
    #: nearest enclosing class through any function nesting: a closure
    #: inside a method (the sweeper pattern) is not a method itself
    #: (class_name is falsy) but its captured ``self`` still refers to
    #: this class, so ``self.method(...)`` resolves through it
    closure_class: Optional[str] = None


@dataclass(frozen=True)
class CallEdge:
    """A resolved call site: *caller* invokes *callee* at *lineno*."""

    caller: str
    callee: str
    lineno: int


class CallGraph:
    """Functions plus resolved call edges, with forward/reverse indexes."""

    def __init__(self) -> None:
        self.functions: Dict[str, FunctionNode] = {}
        self.edges: List[CallEdge] = []
        self._out: Dict[str, List[CallEdge]] = {}
        self._in: Dict[str, List[CallEdge]] = {}
        #: bare function/method name -> qualnames defining it
        self.by_name: Dict[str, List[str]] = {}

    def add_function(self, fn: FunctionNode) -> None:
        self.functions[fn.qualname] = fn
        self.by_name.setdefault(fn.name, []).append(fn.qualname)

    def add_edge(self, edge: CallEdge) -> None:
        self.edges.append(edge)
        self._out.setdefault(edge.caller, []).append(edge)
        self._in.setdefault(edge.callee, []).append(edge)

    def callees(self, qualname: str) -> List[CallEdge]:
        return self._out.get(qualname, [])

    def callers(self, qualname: str) -> List[CallEdge]:
        return self._in.get(qualname, [])

    def reachable_from(self, roots: Set[str]) -> Set[str]:
        """Transitive closure of callees starting at *roots* (inclusive)."""
        seen: Set[str] = set()
        stack = [r for r in roots if r in self.functions]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            for edge in self.callees(current):
                if edge.callee not in seen:
                    stack.append(edge.callee)
        return seen

    def methods_of(self, class_name: str) -> List[FunctionNode]:
        return sorted(
            (f for f in self.functions.values() if f.class_name == class_name),
            key=lambda f: f.qualname,
        )


# -- construction -------------------------------------------------------------------


def _import_aliases(tree: ast.Module, modules: Set[str]) -> Dict[str, str]:
    """Local name -> dotted target for imports of analyzed modules.

    ``from repro.wsn.base_notification import fire_and_forget`` maps
    ``fire_and_forget`` to ``repro.wsn.base_notification.fire_and_forget``;
    imports of modules outside the analyzed tree are ignored.
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            if node.module in modules or any(
                m.startswith(node.module + ".") for m in modules
            ):
                for alias in node.names:
                    local = alias.asname or alias.name
                    aliases[local] = f"{node.module}.{alias.name}"
        elif isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name in modules:
                    local = alias.asname or alias.name
                    aliases[local] = alias.name
    return aliases


class _Indexer(ast.NodeVisitor):
    """First pass: register every function definition with its scope."""

    def __init__(self, graph: CallGraph, module: str, path: str) -> None:
        self.graph = graph
        self.module = module
        self.path = path
        self.scope: List[str] = []
        self.class_stack: List[str] = []

    def _register(self, node: ast.AST, name: str, lineno: int) -> None:
        qualname = ".".join([self.module, *self.scope, name])
        closure_class = next(
            (cls for cls in reversed(self.class_stack) if cls), None
        )
        self.graph.add_function(
            FunctionNode(
                qualname=qualname,
                module=self.module,
                path=self.path,
                name=name,
                lineno=lineno,
                node=node,
                class_name=self.class_stack[-1] if self.class_stack else None,
                closure_class=closure_class,
            )
        )

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self.scope.append(node.name)
        self.class_stack.append(node.name)
        self.generic_visit(node)
        self.class_stack.pop()
        self.scope.pop()

    def _visit_fn(self, node: ast.AST, name: str, lineno: int) -> None:
        self._register(node, name, lineno)
        self.scope.append(name)
        # Methods of a class defined inside a function keep resolving;
        # the class stack only tracks the *immediately* enclosing class.
        self.class_stack.append("")
        self.generic_visit(node)
        self.class_stack.pop()
        self.scope.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_fn(node, node.name, node.lineno)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_fn(node, node.name, node.lineno)


def _attr_chain(node: ast.expr) -> List[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return list(reversed(parts))
    return []


#: ``self.<attr>`` names whose runtime type the resolver knows a priori
#: (ServiceSkeleton plumbing): attr -> class name in the analyzed tree
KNOWN_SELF_ATTR_TYPES: Dict[str, str] = {
    "wsrf": "InvocationContext",
    "wrapper": "WrapperService",
}


class _EdgeBuilder:
    """Second pass: resolve call sites inside one function body."""

    def __init__(
        self,
        graph: CallGraph,
        model: ContractModel,
        module: str,
        imports: Dict[str, str],
        local_defs: Dict[str, str],
    ) -> None:
        self.graph = graph
        self.model = model
        self.module = module
        self.imports = imports
        #: name -> qualname for defs visible at module scope
        self.local_defs = local_defs

    def _method_qualname(self, class_name: str, method: str) -> Optional[str]:
        """Resolve Class.method through the model's MRO."""
        for info in self.model.mro(class_name):
            candidate = f"{info.module}.{info.name}.{method}"
            if candidate in self.graph.functions:
                return candidate
        # The class may not be in the model (not extracted) but still
        # indexed: try the direct name in any module.
        for qualname in self.graph.by_name.get(method, []):
            fn = self.graph.functions[qualname]
            if fn.class_name == class_name:
                return qualname
        return None

    def _class_in_tree(self, name: str) -> bool:
        return name in self.model.classes

    def resolve(
        self,
        call: ast.Call,
        caller: FunctionNode,
        local_types: Dict[str, str],
        inner_defs: Dict[str, str],
    ) -> Optional[str]:
        func = call.func
        # name(...) — local def, module def, import, or constructor
        if isinstance(func, ast.Name):
            name = func.id
            if name in inner_defs:
                return inner_defs[name]
            if self._class_in_tree(name):
                return self._method_qualname(name, "__init__")
            if name in self.local_defs:
                return self.local_defs[name]
            if name in self.imports:
                target = self.imports[name]
                if target in self.graph.functions:
                    return target
                # imported class constructor
                tail = target.rsplit(".", 1)[-1]
                if self._class_in_tree(tail):
                    return self._method_qualname(tail, "__init__")
            return None
        if not isinstance(func, ast.Attribute):
            return None
        chain = _attr_chain(func)
        if len(chain) < 2:
            return None
        base, rest = chain[0], chain[1:]
        # self.method(...) and self.attr.method(...); closures inside a
        # method resolve their captured self through closure_class
        self_class = caller.class_name or caller.closure_class
        if base == "self" and self_class:
            if len(rest) == 1:
                return self._method_qualname(self_class, rest[0])
            if len(rest) == 2 and rest[0] in KNOWN_SELF_ATTR_TYPES:
                return self._method_qualname(KNOWN_SELF_ATTR_TYPES[rest[0]], rest[1])
            return None
        if len(rest) == 1:
            method = rest[0]
            # Class.method(...)
            if self._class_in_tree(base):
                return self._method_qualname(base, method)
            # var.method(...) where var = Class(...) earlier in this body
            if base in local_types:
                return self._method_qualname(local_types[base], method)
            # module_alias.fn(...)
            if base in self.imports:
                target = f"{self.imports[base]}.{method}"
                if target in self.graph.functions:
                    return target
        return None


def _constructor_class(
    value: ast.expr, model: ContractModel, imports: Dict[str, str]
) -> Optional[str]:
    """ClassName when *value* is ``ClassName(...)`` for a known class."""
    if not (isinstance(value, ast.Call) and isinstance(value.func, ast.Name)):
        return None
    name = value.func.id
    if name in model.classes:
        return name
    if name in imports:
        tail = imports[name].rsplit(".", 1)[-1]
        if tail in model.classes:
            return tail
    return None


def _return_types(
    graph: CallGraph,
    model: ContractModel,
    imports_by_module: Dict[str, Dict[str, str]],
) -> Dict[str, str]:
    """``qualname -> ClassName`` for factory functions.

    A function whose return statements hand back a constructor call —
    directly (``return Class(...)``) or through a local assigned one
    (``x = Class(...); ...; return x``) — is typed as returning that
    class, so ``var = factory(...); var.method()`` resolves.  Functions
    with conflicting candidates stay untyped.
    """
    out: Dict[str, str] = {}
    for fn in graph.functions.values():
        imports = imports_by_module.get(fn.module, {})
        local_ctors: Dict[str, str] = {}
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    cls = _constructor_class(node.value, model, imports)
                    if cls is not None:
                        local_ctors[target.id] = cls
        candidates: Set[str] = set()
        for node in ast.walk(fn.node):
            if not (isinstance(node, ast.Return) and node.value is not None):
                continue
            cls = _constructor_class(node.value, model, imports)
            if cls is None and isinstance(node.value, ast.Name):
                cls = local_ctors.get(node.value.id)
            if cls is not None:
                candidates.add(cls)
        if len(candidates) == 1:
            out[fn.qualname] = candidates.pop()
    return out


def _local_constructor_types(
    fn_node: ast.AST,
    model: ContractModel,
    imports: Dict[str, str],
    module_defs: Dict[str, str],
    return_types: Dict[str, str],
) -> Dict[str, str]:
    """``var -> ClassName`` for constructor and typed-factory assignments."""
    types: Dict[str, str] = {}
    for node in ast.walk(fn_node):
        if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
            continue
        target = node.targets[0]
        if not isinstance(target, ast.Name):
            continue
        value = node.value
        cls = _constructor_class(value, model, imports)
        if cls is not None:
            types[target.id] = cls
            continue
        # var = factory(...) where factory has an inferred return class
        if isinstance(value, ast.Call) and isinstance(value.func, ast.Name):
            name = value.func.id
            qualname = module_defs.get(name) or imports.get(name)
            if qualname is not None and qualname in return_types:
                types[target.id] = return_types[qualname]
    return types


def build_callgraph(
    modules: List[Tuple[str, str, ast.Module]], model: ContractModel
) -> CallGraph:
    """Index every function in *modules* and resolve their call sites.

    *modules* is ``[(module_name, path, tree), ...]`` — the same shape
    :func:`~repro.analysis.model.build_model` takes, typically every
    file the engine is analyzing.
    """
    graph = CallGraph()
    module_names = {m for m, _, _ in modules}
    for module_name, path, tree in modules:
        _Indexer(graph, module_name, path).visit(tree)

    imports_by_module = {
        module_name: _import_aliases(tree, module_names)
        for module_name, _path, tree in modules
    }
    return_types = _return_types(graph, model, imports_by_module)

    for module_name, path, tree in modules:
        imports = imports_by_module[module_name]
        module_defs = {
            fn.name: fn.qualname
            for fn in graph.functions.values()
            if fn.module == module_name and fn.qualname.count(".") == module_name.count(".") + 1
        }
        builder = _EdgeBuilder(graph, model, module_name, imports, module_defs)
        for fn in [f for f in graph.functions.values() if f.module == module_name]:
            local_types = _local_constructor_types(
                fn.node, model, imports, module_defs, return_types
            )
            # defs nested directly inside this function shadow module defs
            inner_defs = {
                g.name: g.qualname
                for g in graph.functions.values()
                if g.qualname.startswith(fn.qualname + ".")
                and g.qualname.count(".") == fn.qualname.count(".") + 1
            }
            for call in _own_calls(fn, graph):
                callee = builder.resolve(call, fn, local_types, inner_defs)
                if callee is not None:
                    graph.add_edge(
                        CallEdge(caller=fn.qualname, callee=callee, lineno=call.lineno)
                    )
    return graph


def _own_calls(fn: FunctionNode, graph: CallGraph) -> Iterator[ast.Call]:
    """Call expressions lexically inside *fn* but not inside a nested def."""
    nested = {
        id(g.node)
        for g in graph.functions.values()
        if g.qualname.startswith(fn.qualname + ".")
    }

    def walk(node: ast.AST) -> Iterator[ast.Call]:
        for child in ast.iter_child_nodes(node):
            if id(child) in nested or isinstance(child, ast.ClassDef):
                continue
            if isinstance(child, ast.Call):
                yield child
            yield from walk(child)

    yield from walk(fn.node)


# -- context discovery over the graph ------------------------------------------------


def process_roots(
    modules: List[Tuple[str, str, ast.Module]], graph: CallGraph
) -> Set[str]:
    """Qualnames of functions handed to ``env.process(...)``.

    These run detached from the dispatch pipeline — the contexts the
    lockset and taint rules treat as concurrent entry points.
    """
    roots: Set[str] = set()
    for module_name, _path, tree in modules:
        for node in ast.walk(tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "process"
                and node.args
            ):
                continue
            target = node.args[0]
            name = ""
            if isinstance(target, ast.Call):
                chain = _attr_chain(target.func)
                name = chain[-1] if chain else ""
                if isinstance(target.func, ast.Name):
                    name = target.func.id
            elif isinstance(target, (ast.Name, ast.Attribute)):
                chain = _attr_chain(target)
                name = chain[-1] if chain else ""
            if not name:
                continue
            for qualname in graph.by_name.get(name, []):
                if graph.functions[qualname].module == module_name:
                    roots.add(qualname)
    return roots
