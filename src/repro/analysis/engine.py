"""The wsrfcheck rule engine: file walk, suppressions, baseline, report.

Two kinds of rules share the engine.  A *module* :class:`Rule` is a
callable over one parsed module plus the global
:class:`~repro.analysis.model.ContractModel`; a *program* rule runs
once over the whole analyzed tree via a :class:`ProgramContext`, which
carries the module-qualified call graph
(:mod:`repro.analysis.callgraph`) for interprocedural analysis.  Both
yield :class:`Finding` objects; the engine handles everything around
that: collecting files, parsing, building the model and call graph,
line-level suppressions (``# wsrfcheck: ignore[WSRF001]``, multiple
comments per line combine), the checked-in baseline of accepted
findings, and stable text/JSON/SARIF rendering.

Fingerprints deliberately exclude line numbers: a baselined finding
stays baselined when unrelated edits shift the file, and resurfaces the
moment its rule, file or message changes.  The baseline is a ratchet —
entries that no longer match any finding are *stale* and fail the run
until pruned with ``--update-baseline`` (baselines only shrink).
"""

from __future__ import annotations

import ast
import hashlib
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.analysis.model import ContractModel, build_model

SUPPRESS_RE = re.compile(r"#\s*wsrfcheck:\s*ignore(?:\[([A-Za-z0-9_,\s]+)\])?")


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific site."""

    rule: str
    path: str  # repo-relative, forward slashes
    line: int
    message: str
    symbol: str = ""  # enclosing class/function, stabilizes the fingerprint

    @property
    def fingerprint(self) -> str:
        basis = "\x1f".join((self.rule, self.path, self.symbol, self.message))
        return hashlib.sha1(basis.encode("utf-8")).hexdigest()[:16]

    def to_json(self) -> Dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "symbol": self.symbol,
            "message": self.message,
            "fingerprint": self.fingerprint,
        }

    def render(self) -> str:
        where = f"{self.path}:{self.line}"
        sym = f" [{self.symbol}]" if self.symbol else ""
        return f"{where}: {self.rule}{sym}: {self.message}"


@dataclass
class ModuleContext:
    """Everything a rule sees for one file."""

    path: str  # repo-relative
    module: str  # dotted module name (best effort)
    tree: ast.Module
    source_lines: List[str]
    model: ContractModel

    def suppressed(self, line: int, rule: str) -> bool:
        if not 1 <= line <= len(self.source_lines):
            return False
        for match in SUPPRESS_RE.finditer(self.source_lines[line - 1]):
            rules = match.group(1)
            if rules is None:
                return True  # bare "# wsrfcheck: ignore" silences every rule
            if rule in {r.strip() for r in rules.split(",")}:
                return True
        return False


@dataclass
class ProgramContext:
    """Everything a whole-program rule sees: all modules plus the graph."""

    modules: List[ModuleContext]
    model: ContractModel
    callgraph: "object"  # repro.analysis.callgraph.CallGraph
    #: qualnames of functions handed to env.process (detached contexts)
    process_roots: Set[str]

    def module_for(self, path: str) -> Optional[ModuleContext]:
        for ctx in self.modules:
            if ctx.path == path:
                return ctx
        return None


RuleFn = Callable[[ModuleContext], Iterator[Finding]]
ProgramRuleFn = Callable[[ProgramContext], Iterator[Finding]]


@dataclass(frozen=True)
class Rule:
    code: str
    title: str
    fn: Callable[..., Iterator[Finding]]
    description: str = ""
    #: program rules run once over the whole tree (ProgramContext);
    #: module rules run per file (ModuleContext)
    program: bool = False


_RULES: Dict[str, Rule] = {}


def register_rule(
    code: str, title: str, description: str = ""
) -> Callable[[RuleFn], RuleFn]:
    """Decorator adding a per-module rule to the catalog."""

    def wrap(fn: RuleFn) -> RuleFn:
        _RULES[code] = Rule(code=code, title=title, fn=fn, description=description)
        return fn

    return wrap


def register_program_rule(
    code: str, title: str, description: str = ""
) -> Callable[[ProgramRuleFn], ProgramRuleFn]:
    """Decorator adding a whole-program (interprocedural) rule."""

    def wrap(fn: ProgramRuleFn) -> ProgramRuleFn:
        _RULES[code] = Rule(
            code=code, title=title, fn=fn, description=description, program=True
        )
        return fn

    return wrap


def iter_rules() -> List[Rule]:
    _ensure_rules_loaded()
    return [_RULES[code] for code in sorted(_RULES)]


def rule_catalog() -> Dict[str, Rule]:
    _ensure_rules_loaded()
    return dict(_RULES)


def _ensure_rules_loaded() -> None:
    # Imported lazily so engine <-> rules avoid a circular import.
    from repro.analysis import rules as _rules  # noqa: F401
    from repro.analysis import rules_interproc as _rules_ip  # noqa: F401


# -- file collection ---------------------------------------------------------------


def collect_files(paths: Iterable[str]) -> List[Path]:
    out: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            out.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            out.append(path)
    # de-duplicate, keep deterministic order
    seen: Set[Path] = set()
    unique = []
    for path in out:
        resolved = path.resolve()
        if resolved not in seen:
            seen.add(resolved)
            unique.append(path)
    return unique


def _relative(path: Path, root: Optional[Path]) -> str:
    try:
        rel = path.resolve().relative_to((root or Path.cwd()).resolve())
        return rel.as_posix()
    except ValueError:
        return path.as_posix()


def _module_name(rel_path: str) -> str:
    parts = Path(rel_path).with_suffix("").parts
    if "src" in parts:
        parts = parts[parts.index("src") + 1 :]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


# -- baseline ----------------------------------------------------------------------

BASELINE_VERSION = 1


class BaselineError(ValueError):
    """The baseline file exists but cannot be parsed (CLI exit 2)."""


def load_baseline(path: Optional[Path]) -> Set[str]:
    if path is None or not path.exists():
        return set()
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
        return {entry["fingerprint"] for entry in data.get("findings", [])}
    except (json.JSONDecodeError, TypeError, KeyError, UnicodeDecodeError) as exc:
        raise BaselineError(f"unreadable baseline {path}: {exc}") from exc


def write_baseline(path: Path, findings: List[Finding]) -> None:
    data = {
        "version": BASELINE_VERSION,
        "comment": (
            "Accepted wsrfcheck findings. Entries are keyed by fingerprint "
            "(rule+path+symbol+message, line-independent); remove entries as "
            "the underlying issues are fixed."
        ),
        "findings": [f.to_json() for f in sorted(
            findings, key=lambda f: (f.rule, f.path, f.line)
        )],
    }
    path.write_text(json.dumps(data, indent=2) + "\n", encoding="utf-8")


def prune_baseline(path: Path, matched: Set[str]) -> int:
    """Drop baseline entries whose fingerprint matched no finding.

    The ratchet: ``--update-baseline`` can only *shrink* the accepted
    set — new findings are never added (that would silently accept
    regressions; the one-time adoption path is ``--write-baseline``).
    Returns the number of pruned entries.
    """
    if not path.exists():
        return 0
    data = json.loads(path.read_text(encoding="utf-8"))
    before = data.get("findings", [])
    kept = [entry for entry in before if entry["fingerprint"] in matched]
    data["findings"] = kept
    path.write_text(json.dumps(data, indent=2) + "\n", encoding="utf-8")
    return len(before) - len(kept)


# -- the run -----------------------------------------------------------------------


@dataclass
class AnalysisReport:
    findings: List[Finding] = field(default_factory=list)
    suppressed: int = 0
    baselined: int = 0
    files_analyzed: int = 0
    parse_errors: List[str] = field(default_factory=list)
    #: suppressed findings, kept for the --show-suppressed audit view
    suppressed_findings: List[Finding] = field(default_factory=list)
    #: baseline fingerprints that matched no finding (the ratchet:
    #: stale entries fail the run until pruned with --update-baseline)
    stale_baseline: List[str] = field(default_factory=list)
    #: baseline fingerprints that did match a finding this run
    matched_baseline: Set[str] = field(default_factory=set)

    @property
    def exit_code(self) -> int:
        return 1 if self.findings or self.parse_errors or self.stale_baseline else 0

    def to_json(self, show_suppressed: bool = False) -> Dict:
        out: Dict = {
            "files_analyzed": self.files_analyzed,
            "suppressed": self.suppressed,
            "baselined": self.baselined,
            "stale_baseline": sorted(self.stale_baseline),
            "parse_errors": self.parse_errors,
            "findings": [f.to_json() for f in self.findings],
        }
        if show_suppressed:
            out["suppressed_findings"] = [
                f.to_json() for f in self.suppressed_findings
            ]
        return out

    def render_text(self, show_suppressed: bool = False) -> str:
        lines = [f.render() for f in self.findings]
        lines.extend(f"parse error: {err}" for err in self.parse_errors)
        if show_suppressed:
            lines.extend(
                f"{f.render()} (suppressed)" for f in self.suppressed_findings
            )
        for fingerprint in sorted(self.stale_baseline):
            lines.append(
                f"stale baseline entry {fingerprint}: matches no current "
                "finding; prune it with --update-baseline"
            )
        by_rule: Dict[str, int] = {}
        for f in self.findings:
            by_rule[f.rule] = by_rule.get(f.rule, 0) + 1
        summary = ", ".join(f"{rule}={n}" for rule, n in sorted(by_rule.items()))
        lines.append(
            f"wsrfcheck: {len(self.findings)} finding(s) in "
            f"{self.files_analyzed} file(s)"
            + (f" ({summary})" if summary else "")
            + (f"; {self.baselined} baselined" if self.baselined else "")
            + (f"; {self.suppressed} suppressed" if self.suppressed else "")
            + (
                f"; {len(self.stale_baseline)} stale baseline entr"
                f"{'y' if len(self.stale_baseline) == 1 else 'ies'}"
                if self.stale_baseline
                else ""
            )
        )
        return "\n".join(lines)

    def render_sarif(self) -> str:
        """SARIF 2.1.0 for code-scanning upload (deterministic bytes)."""
        catalog = rule_catalog()
        fired = sorted({f.rule for f in self.findings})
        rules_json = []
        for code in fired:
            rule = catalog.get(code)
            rules_json.append(
                {
                    "id": code,
                    "name": code,
                    "shortDescription": {"text": rule.title if rule else code},
                    "fullDescription": {
                        "text": rule.description if rule else ""
                    },
                }
            )
        results = [
            {
                "ruleId": f.rule,
                "level": "error",
                "message": {"text": f.message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {
                                "uri": f.path,
                                "uriBaseId": "SRCROOT",
                            },
                            "region": {"startLine": max(1, f.line)},
                        },
                        "logicalLocations": (
                            [{"fullyQualifiedName": f.symbol}] if f.symbol else []
                        ),
                    }
                ],
                "partialFingerprints": {"wsrfcheck/v1": f.fingerprint},
            }
            for f in self.findings
        ]
        doc = {
            "$schema": (
                "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json"
            ),
            "version": "2.1.0",
            "runs": [
                {
                    "tool": {
                        "driver": {
                            "name": "wsrfcheck",
                            "informationUri": "docs/static_analysis.md",
                            "rules": rules_json,
                        }
                    },
                    "originalUriBaseIds": {"SRCROOT": {"uri": "file:///"}},
                    "results": results,
                }
            ],
        }
        return json.dumps(doc, indent=2)


def analyze_paths(
    paths: Iterable[str],
    rules: Optional[Iterable[str]] = None,
    baseline: Optional[Set[str]] = None,
    root: Optional[Path] = None,
) -> AnalysisReport:
    """Run the catalog over *paths*; returns the filtered report.

    *rules* restricts to the given codes (default: all).  *baseline* is
    a set of accepted fingerprints; matching findings are counted but
    not reported, and baseline entries matching nothing are reported as
    stale (the ratchet).  Program rules run after the per-module pass,
    over a :class:`ProgramContext` carrying the call graph.
    """
    report = AnalysisReport()
    files = collect_files(paths)
    parsed: List[Tuple[str, str, ast.Module, List[str]]] = []
    for path in files:
        rel = _relative(path, root)
        try:
            source = path.read_text(encoding="utf-8")
            tree = ast.parse(source, filename=str(path))
        except (SyntaxError, UnicodeDecodeError, OSError) as exc:
            report.parse_errors.append(f"{rel}: {exc}")
            continue
        parsed.append((_module_name(rel), rel, tree, source.splitlines()))
    report.files_analyzed = len(parsed)

    model = build_model([(m, p, t) for m, p, t, _ in parsed])
    wanted = set(rules) if rules is not None else None
    catalog = [
        rule for rule in iter_rules() if wanted is None or rule.code in wanted
    ]
    module_rules = [rule for rule in catalog if not rule.program]
    program_rules = [rule for rule in catalog if rule.program]

    accepted = baseline or set()
    findings: List[Finding] = []
    contexts: List[ModuleContext] = []
    by_path: Dict[str, ModuleContext] = {}

    def classify(ctx: Optional[ModuleContext], finding: Finding) -> None:
        if ctx is not None and ctx.suppressed(finding.line, finding.rule):
            report.suppressed += 1
            report.suppressed_findings.append(finding)
        elif finding.fingerprint in accepted:
            report.baselined += 1
            report.matched_baseline.add(finding.fingerprint)
        else:
            findings.append(finding)

    for module, rel, tree, source_lines in parsed:
        ctx = ModuleContext(
            path=rel, module=module, tree=tree,
            source_lines=source_lines, model=model,
        )
        contexts.append(ctx)
        by_path[rel] = ctx
        for rule in module_rules:
            for finding in rule.fn(ctx):
                classify(ctx, finding)

    if program_rules:
        from repro.analysis.callgraph import build_callgraph, process_roots

        module_triples = [(m, p, t) for m, p, t, _ in parsed]
        graph = build_callgraph(module_triples, model)
        program_ctx = ProgramContext(
            modules=contexts,
            model=model,
            callgraph=graph,
            process_roots=process_roots(module_triples, graph),
        )
        for rule in program_rules:
            for finding in rule.fn(program_ctx):
                classify(by_path.get(finding.path), finding)

    if wanted is None:
        # Stale detection needs the full catalog: a --rules-restricted
        # run has no opinion about entries belonging to other rules.
        report.stale_baseline = sorted(accepted - report.matched_baseline)
    report.findings = sorted(findings, key=lambda f: (f.path, f.line, f.rule))
    report.suppressed_findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return report
