"""The wsrfcheck rule engine: file walk, suppressions, baseline, report.

A :class:`Rule` is a callable over one parsed module plus the global
:class:`~repro.analysis.model.ContractModel`; it yields
:class:`Finding` objects.  The engine handles everything around that:
collecting files, parsing, building the model, line-level suppressions
(``# wsrfcheck: ignore[WSRF001]``), the checked-in baseline of accepted
findings, and stable text/JSON rendering.

Fingerprints deliberately exclude line numbers: a baselined finding
stays baselined when unrelated edits shift the file, and resurfaces the
moment its rule, file or message changes.
"""

from __future__ import annotations

import ast
import hashlib
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.analysis.model import ContractModel, build_model

SUPPRESS_RE = re.compile(r"#\s*wsrfcheck:\s*ignore(?:\[([A-Za-z0-9_,\s]+)\])?")


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific site."""

    rule: str
    path: str  # repo-relative, forward slashes
    line: int
    message: str
    symbol: str = ""  # enclosing class/function, stabilizes the fingerprint

    @property
    def fingerprint(self) -> str:
        basis = "\x1f".join((self.rule, self.path, self.symbol, self.message))
        return hashlib.sha1(basis.encode("utf-8")).hexdigest()[:16]

    def to_json(self) -> Dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "symbol": self.symbol,
            "message": self.message,
            "fingerprint": self.fingerprint,
        }

    def render(self) -> str:
        where = f"{self.path}:{self.line}"
        sym = f" [{self.symbol}]" if self.symbol else ""
        return f"{where}: {self.rule}{sym}: {self.message}"


@dataclass
class ModuleContext:
    """Everything a rule sees for one file."""

    path: str  # repo-relative
    module: str  # dotted module name (best effort)
    tree: ast.Module
    source_lines: List[str]
    model: ContractModel

    def suppressed(self, line: int, rule: str) -> bool:
        if not 1 <= line <= len(self.source_lines):
            return False
        match = SUPPRESS_RE.search(self.source_lines[line - 1])
        if match is None:
            return False
        rules = match.group(1)
        if rules is None:
            return True  # bare "# wsrfcheck: ignore" silences every rule
        return rule in {r.strip() for r in rules.split(",")}


RuleFn = Callable[[ModuleContext], Iterator[Finding]]


@dataclass(frozen=True)
class Rule:
    code: str
    title: str
    fn: RuleFn
    description: str = ""


_RULES: Dict[str, Rule] = {}


def register_rule(
    code: str, title: str, description: str = ""
) -> Callable[[RuleFn], RuleFn]:
    """Decorator adding a rule to the catalog (see docs/static_analysis.md)."""

    def wrap(fn: RuleFn) -> RuleFn:
        _RULES[code] = Rule(code=code, title=title, fn=fn, description=description)
        return fn

    return wrap


def iter_rules() -> List[Rule]:
    _ensure_rules_loaded()
    return [_RULES[code] for code in sorted(_RULES)]


def rule_catalog() -> Dict[str, Rule]:
    _ensure_rules_loaded()
    return dict(_RULES)


def _ensure_rules_loaded() -> None:
    # Imported lazily so engine <-> rules avoid a circular import.
    from repro.analysis import rules as _rules  # noqa: F401


# -- file collection ---------------------------------------------------------------


def collect_files(paths: Iterable[str]) -> List[Path]:
    out: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            out.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            out.append(path)
    # de-duplicate, keep deterministic order
    seen: Set[Path] = set()
    unique = []
    for path in out:
        resolved = path.resolve()
        if resolved not in seen:
            seen.add(resolved)
            unique.append(path)
    return unique


def _relative(path: Path, root: Optional[Path]) -> str:
    try:
        rel = path.resolve().relative_to((root or Path.cwd()).resolve())
        return rel.as_posix()
    except ValueError:
        return path.as_posix()


def _module_name(rel_path: str) -> str:
    parts = Path(rel_path).with_suffix("").parts
    if "src" in parts:
        parts = parts[parts.index("src") + 1 :]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


# -- baseline ----------------------------------------------------------------------

BASELINE_VERSION = 1


def load_baseline(path: Optional[Path]) -> Set[str]:
    if path is None or not path.exists():
        return set()
    data = json.loads(path.read_text(encoding="utf-8"))
    return {entry["fingerprint"] for entry in data.get("findings", [])}


def write_baseline(path: Path, findings: List[Finding]) -> None:
    data = {
        "version": BASELINE_VERSION,
        "comment": (
            "Accepted wsrfcheck findings. Entries are keyed by fingerprint "
            "(rule+path+symbol+message, line-independent); remove entries as "
            "the underlying issues are fixed."
        ),
        "findings": [f.to_json() for f in sorted(
            findings, key=lambda f: (f.rule, f.path, f.line)
        )],
    }
    path.write_text(json.dumps(data, indent=2) + "\n", encoding="utf-8")


# -- the run -----------------------------------------------------------------------


@dataclass
class AnalysisReport:
    findings: List[Finding] = field(default_factory=list)
    suppressed: int = 0
    baselined: int = 0
    files_analyzed: int = 0
    parse_errors: List[str] = field(default_factory=list)

    @property
    def exit_code(self) -> int:
        return 1 if self.findings or self.parse_errors else 0

    def to_json(self) -> Dict:
        return {
            "files_analyzed": self.files_analyzed,
            "suppressed": self.suppressed,
            "baselined": self.baselined,
            "parse_errors": self.parse_errors,
            "findings": [f.to_json() for f in self.findings],
        }

    def render_text(self) -> str:
        lines = [f.render() for f in self.findings]
        lines.extend(f"parse error: {err}" for err in self.parse_errors)
        by_rule: Dict[str, int] = {}
        for f in self.findings:
            by_rule[f.rule] = by_rule.get(f.rule, 0) + 1
        summary = ", ".join(f"{rule}={n}" for rule, n in sorted(by_rule.items()))
        lines.append(
            f"wsrfcheck: {len(self.findings)} finding(s) in "
            f"{self.files_analyzed} file(s)"
            + (f" ({summary})" if summary else "")
            + (f"; {self.baselined} baselined" if self.baselined else "")
            + (f"; {self.suppressed} suppressed" if self.suppressed else "")
        )
        return "\n".join(lines)


def analyze_paths(
    paths: Iterable[str],
    rules: Optional[Iterable[str]] = None,
    baseline: Optional[Set[str]] = None,
    root: Optional[Path] = None,
) -> AnalysisReport:
    """Run the catalog over *paths*; returns the filtered report.

    *rules* restricts to the given codes (default: all).  *baseline* is
    a set of accepted fingerprints; matching findings are counted but
    not reported.
    """
    report = AnalysisReport()
    files = collect_files(paths)
    parsed: List[Tuple[str, str, ast.Module, List[str]]] = []
    for path in files:
        rel = _relative(path, root)
        try:
            source = path.read_text(encoding="utf-8")
            tree = ast.parse(source, filename=str(path))
        except (SyntaxError, UnicodeDecodeError, OSError) as exc:
            report.parse_errors.append(f"{rel}: {exc}")
            continue
        parsed.append((_module_name(rel), rel, tree, source.splitlines()))
    report.files_analyzed = len(parsed)

    model = build_model([(m, p, t) for m, p, t, _ in parsed])
    wanted = set(rules) if rules is not None else None
    catalog = [
        rule for rule in iter_rules() if wanted is None or rule.code in wanted
    ]

    accepted = baseline or set()
    findings: List[Finding] = []
    for module, rel, tree, source_lines in parsed:
        ctx = ModuleContext(
            path=rel, module=module, tree=tree,
            source_lines=source_lines, model=model,
        )
        for rule in catalog:
            for finding in rule.fn(ctx):
                if ctx.suppressed(finding.line, finding.rule):
                    report.suppressed += 1
                elif finding.fingerprint in accepted:
                    report.baselined += 1
                else:
                    findings.append(finding)
    report.findings = sorted(findings, key=lambda f: (f.path, f.line, f.rule))
    return report
