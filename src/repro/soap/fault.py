"""SOAP 1.1 faults."""

from __future__ import annotations

from typing import List, Optional

from repro.xmlx import NS, Element, QName

_FAULT = QName(NS.SOAP, "Fault")


class SoapFault(Exception):
    """A SOAP fault, raisable service-side and re-raised client-side.

    ``detail`` carries arbitrary elements — WS-BaseFaults (see
    :mod:`repro.wsrf.basefaults`) serializes its structured fault type
    there, which is how clients receive typed WSRF faults.
    """

    def __init__(
        self,
        code: str = "soap:Server",
        reason: str = "",
        detail: Optional[List[Element]] = None,
    ) -> None:
        super().__init__(reason or code)
        self.code = code
        self.reason = reason
        self.detail = list(detail or [])

    def to_element(self) -> Element:
        # SOAP 1.1 uses unqualified faultcode/faultstring/detail children.
        root = Element(_FAULT)
        root.subelement("faultcode", text=self.code)
        root.subelement("faultstring", text=self.reason)
        if self.detail:
            holder = root.subelement("detail")
            for item in self.detail:
                holder.append(item.copy())
        return root

    @classmethod
    def is_fault(cls, element: Element) -> bool:
        return element.tag == _FAULT

    @classmethod
    def from_element(cls, element: Element) -> "SoapFault":
        if element.tag != _FAULT:
            raise ValueError(f"not a soap:Fault: {element.tag}")
        code = element.child_text("faultcode", "soap:Server") or "soap:Server"
        reason = element.child_text("faultstring", "") or ""
        detail_el = element.find("detail")
        detail = [child.copy() for child in detail_el.children] if detail_el is not None else []
        return cls(code=code, reason=reason, detail=detail)

    def __repr__(self) -> str:
        return f"SoapFault(code={self.code!r}, reason={self.reason!r})"
