"""SOAP envelope construction, serialization and parsing."""

from __future__ import annotations

from typing import List, Optional

from repro.wsa.headers import AddressingHeaders
from repro.xmlx import NS, Element, QName, parse, to_string

_ENVELOPE = QName(NS.SOAP, "Envelope")
_HEADER = QName(NS.SOAP, "Header")
_BODY = QName(NS.SOAP, "Body")


class SoapEnvelope:
    """One SOAP message: addressing headers, extra headers and a body.

    ``body`` holds exactly one payload element (document/literal style —
    the operation's wrapper element).  ``extra_headers`` carries
    non-addressing blocks such as the WS-Security header of §4.2.
    """

    __slots__ = ("addressing", "extra_headers", "body")

    def __init__(
        self,
        addressing: AddressingHeaders,
        body: Element,
        extra_headers: Optional[List[Element]] = None,
    ) -> None:
        self.addressing = addressing
        self.body = body
        self.extra_headers = list(extra_headers or [])

    # -- wire format -----------------------------------------------------------

    def to_element(self) -> Element:
        root = Element(_ENVELOPE)
        header = root.subelement(_HEADER)
        for block in self.addressing.to_header_elements():
            header.append(block)
        for block in self.extra_headers:
            header.append(block)
        root.subelement(_BODY).append(self.body)
        return root

    def serialize(self) -> str:
        return to_string(self.to_element(), xml_declaration=True)

    @classmethod
    def from_element(cls, root: Element) -> "SoapEnvelope":
        if root.tag != _ENVELOPE:
            raise ValueError(f"not a SOAP envelope: {root.tag}")
        header = root.find(_HEADER)
        body = root.find(_BODY)
        if body is None or not body.children:
            raise ValueError("SOAP envelope lacks a body payload")
        if len(body.children) != 1:
            raise ValueError("document/literal body must hold exactly one element")
        header_blocks = list(header.children) if header is not None else []
        addressing = AddressingHeaders.from_header_elements(header_blocks)
        known = set()
        for block in addressing.to_header_elements():
            known.add(block.tag)
        extra = [
            block
            for block in header_blocks
            if block.tag.uri not in (NS.WSA,) and block.tag not in known
        ]
        return cls(addressing, body.children[0], extra_headers=extra)

    @classmethod
    def deserialize(cls, text: str) -> "SoapEnvelope":
        return cls.from_element(parse(text))

    # -- conveniences ------------------------------------------------------------

    @property
    def action(self) -> str:
        return self.addressing.action

    @property
    def payload(self) -> Element:
        return self.body

    def find_header(self, tag) -> Optional[Element]:
        want = tag if isinstance(tag, QName) else QName(tag)
        for block in self.extra_headers:
            if block.tag == want:
                return block
        return None

    def wire_size(self) -> int:
        """Serialized size in bytes (drives simulated transfer time)."""
        return len(self.serialize().encode("utf-8"))

    def __repr__(self) -> str:
        return (
            f"<SoapEnvelope action={self.addressing.action!r} "
            f"to={self.addressing.to_epr.address!r}>"
        )
