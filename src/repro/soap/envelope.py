"""SOAP envelope construction, serialization and parsing."""

from __future__ import annotations

import weakref
from typing import Dict, List, Optional

from repro.wsa.headers import AddressingHeaders
from repro.xmlx import NS, Element, QName, parse, to_string

_ENVELOPE = QName.of(NS.SOAP, "Envelope")
_HEADER = QName.of(NS.SOAP, "Header")
_BODY = QName.of(NS.SOAP, "Body")


class EnvelopeCache:
    """Parse-once / encode-once cache for identical wire messages.

    The codec fast path (docs/performance.md) hangs one of these off the
    simulated :class:`~repro.net.Network` (``network.codec``); endpoints
    pass it to :meth:`SoapEnvelope.serialize` / ``deserialize``.

    *Parse side* — keyed on the raw wire text.  The encoder registers a
    pristine copy of the tree it just walked under the wire text it
    produced, and the receiving endpoint's parse of that exact text
    *consumes* the entry: the copy is handed over wholesale (move
    semantics — exactly one receiver, free to mutate), so the common
    send→deliver round trip pays one tree copy and zero re-parses.
    Texts seen again after that (retry resends, broker redeliveries)
    are re-cached on their next sighting and served as deep copies from
    then on, so repeated deliveries can never observe each other's
    mutations (most handlers do mutate — EPR resolution pops headers).
    Texts that never passed through :meth:`encode` (snapshot restores,
    hand-built payloads) take the same lazy second-sighting route.

    *Encode side* — a per-instance memo (weak, so it dies with the
    envelope): serializing the same :class:`SoapEnvelope` object twice
    returns the identical string without re-walking the tree.  The
    client's retry loop and ``wire_size`` both re-serialize, which made
    every retried request pay the encoder twice.
    """

    __slots__ = ("capacity", "parse_hits", "parse_misses", "encode_hits", "encode_misses",
                 "_trees", "_fresh", "_seen", "_encoded")

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError("EnvelopeCache capacity must be >= 1")
        self.capacity = capacity
        #: cache effectiveness counters for the obs registry
        self.parse_hits = 0
        self.parse_misses = 0
        self.encode_hits = 0
        self.encode_misses = 0
        #: sticky entries (texts that repeated) — hits serve deep copies
        self._trees: Dict[str, Element] = {}
        #: move-once entries from the encode bridge — the first parse of
        #: the text consumes the entry and owns the tree outright
        self._fresh: Dict[str, Element] = {}
        #: texts seen exactly once — insertion into _trees is lazy (see
        #: parse) so single-transmission messages never pay a tree copy
        self._seen: Dict[str, bool] = {}
        self._encoded: "weakref.WeakKeyDictionary[SoapEnvelope, str]" = (
            weakref.WeakKeyDictionary()
        )

    def parse(self, text: str) -> "SoapEnvelope":
        tree = self._trees.get(text)
        if tree is not None:
            self.parse_hits += 1
            return SoapEnvelope.from_element(tree.copy())
        tree = self._fresh.pop(text, None)
        if tree is not None:
            # Consume the encoder's pristine copy — this receiver is the
            # only owner, so no defensive copy is needed.  Remember the
            # text: if it crosses the wire again (retry, redelivery) the
            # next parse re-caches it as a sticky entry.
            self.parse_hits += 1
            if len(self._seen) >= self.capacity:
                self._seen.pop(next(iter(self._seen)))
            self._seen[text] = True
            return SoapEnvelope.from_element(tree)
        self.parse_misses += 1
        tree = parse(text)
        if text in self._seen:
            # Second sighting: this text repeats (retry resend, broker
            # redelivery) — cache the fresh tree and hand out a copy so
            # the cached document stays pristine.
            if len(self._trees) >= self.capacity:
                self._trees.pop(next(iter(self._trees)))
            self._trees[text] = tree
            return SoapEnvelope.from_element(tree.copy())
        # First sighting: most wire texts are unique (WS-Addressing
        # MessageIDs), so don't pay a defensive copy for a tree that
        # will never be served again — just remember the text.
        if len(self._seen) >= self.capacity:
            self._seen.pop(next(iter(self._seen)))
        self._seen[text] = True
        return SoapEnvelope.from_element(tree)

    def encode(self, envelope: "SoapEnvelope") -> str:
        wire = self._encoded.get(envelope)
        if wire is None:
            self.encode_misses += 1
            tree = envelope.to_element()
            wire = to_string(tree, xml_declaration=True)
            self._encoded[envelope] = wire
            # Bridge to the parse side: the receiver of this text takes
            # the tree we just walked instead of re-parsing it.  Cache a
            # copy — to_element() aliases the envelope's own body/header
            # elements, and the handed-over document must be isolated
            # from whatever the sender later does with its envelope.
            if wire not in self._fresh and wire not in self._trees:
                if len(self._fresh) >= self.capacity:
                    self._fresh.pop(next(iter(self._fresh)))
                self._fresh[wire] = tree.copy()
        else:
            self.encode_hits += 1
        return wire


class SoapEnvelope:
    """One SOAP message: addressing headers, extra headers and a body.

    ``body`` holds exactly one payload element (document/literal style —
    the operation's wrapper element).  ``extra_headers`` carries
    non-addressing blocks such as the WS-Security header of §4.2.
    """

    # __weakref__ lets EnvelopeCache's encode memo key on the instance
    # without pinning it alive.
    __slots__ = ("addressing", "extra_headers", "body", "__weakref__")

    def __init__(
        self,
        addressing: AddressingHeaders,
        body: Element,
        extra_headers: Optional[List[Element]] = None,
    ) -> None:
        self.addressing = addressing
        self.body = body
        self.extra_headers = list(extra_headers or [])

    # -- wire format -----------------------------------------------------------

    def to_element(self) -> Element:
        root = Element(_ENVELOPE)
        header = root.subelement(_HEADER)
        for block in self.addressing.to_header_elements():
            header.append(block)
        for block in self.extra_headers:
            header.append(block)
        root.subelement(_BODY).append(self.body)
        return root

    def serialize(self, cache: Optional[EnvelopeCache] = None) -> str:
        """Wire text.  With *cache*, repeated serializations of this same
        (by-then frozen) envelope reuse the first encoding."""
        if cache is not None:
            return cache.encode(self)
        return to_string(self.to_element(), xml_declaration=True)

    @classmethod
    def from_element(cls, root: Element) -> "SoapEnvelope":
        if root.tag != _ENVELOPE:
            raise ValueError(f"not a SOAP envelope: {root.tag}")
        header = root.find(_HEADER)
        body = root.find(_BODY)
        if body is None or not body.children:
            raise ValueError("SOAP envelope lacks a body payload")
        if len(body.children) != 1:
            raise ValueError("document/literal body must hold exactly one element")
        header_blocks = list(header.children) if header is not None else []
        addressing = AddressingHeaders.from_header_elements(header_blocks)
        known = set()
        for block in addressing.to_header_elements():
            known.add(block.tag)
        extra = [
            block
            for block in header_blocks
            if block.tag.uri not in (NS.WSA,) and block.tag not in known
        ]
        return cls(addressing, body.children[0], extra_headers=extra)

    @classmethod
    def deserialize(cls, text: str, cache: Optional[EnvelopeCache] = None) -> "SoapEnvelope":
        if cache is not None:
            return cache.parse(text)
        return cls.from_element(parse(text))

    # -- conveniences ------------------------------------------------------------

    @property
    def action(self) -> str:
        return self.addressing.action

    @property
    def payload(self) -> Element:
        return self.body

    def find_header(self, tag) -> Optional[Element]:
        want = tag if isinstance(tag, QName) else QName(tag)
        for block in self.extra_headers:
            if block.tag == want:
                return block
        return None

    def wire_size(self) -> int:
        """Serialized size in bytes (drives simulated transfer time)."""
        return len(self.serialize().encode("utf-8"))

    def __repr__(self) -> str:
        return (
            f"<SoapEnvelope action={self.addressing.action!r} "
            f"to={self.addressing.to_epr.address!r}>"
        )
