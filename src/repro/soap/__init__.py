"""SOAP 1.1 message layer.

Envelopes are real XML: every message crossing the simulated network is
serialized with :func:`repro.xmlx.to_string` and re-parsed on arrival, so
header processing (WS-Addressing routing, WS-Security tokens, WSRF EPR
resolution) happens against parsed documents exactly as in the paper's
ASP.NET stack.

Two message-exchange patterns, matching §4.1 of the paper:

- request/response — ordinary web-method calls; the caller blocks until
  the reply envelope arrives;
- one-way — "closes the connection immediately after sending the
  message", used for file-upload requests and notifications; distinct
  from a void-returning method, which still sends an empty reply.
"""

from repro.soap.envelope import EnvelopeCache, SoapEnvelope
from repro.soap.fault import SoapFault
from repro.soap.types import from_typed_element, to_typed_element

__all__ = ["EnvelopeCache", "SoapEnvelope", "SoapFault", "from_typed_element", "to_typed_element"]
