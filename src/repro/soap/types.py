"""xsi-typed value (de)serialization.

The WSRF.NET wrapper serializes method arguments, return values and
resource state to XML.  This module is the equivalent of the ASP.NET
XML serializer for the primitive types the testbed uses, plus EPRs,
byte blobs, lists and string-keyed dicts.
"""

from __future__ import annotations

import base64
from typing import Any

from repro.soap.fault import SoapFault
from repro.wsa.epr import EndpointReference
from repro.xmlx import NS, Element, QName

_XSI_TYPE = QName(NS.XSI, "type")
_XSI_NIL = QName(NS.XSI, "nil")

_ITEM = QName(NS.UVACG, "item")
_ENTRY = QName(NS.UVACG, "entry")
_KEY = QName(NS.UVACG, "key")
_VALUE = QName(NS.UVACG, "value")


def to_typed_element(tag, value: Any) -> Element:
    """Serialize *value* into an element named *tag* with an xsi:type."""
    el = Element(tag)
    if value is None:
        el.attrib[_XSI_NIL] = "true"
    elif isinstance(value, bool):
        el.attrib[_XSI_TYPE] = "xsd:boolean"
        el.text = "true" if value else "false"
    elif isinstance(value, int):
        el.attrib[_XSI_TYPE] = "xsd:long"
        el.text = str(value)
    elif isinstance(value, float):
        el.attrib[_XSI_TYPE] = "xsd:double"
        el.text = repr(value)
    elif isinstance(value, str):
        el.attrib[_XSI_TYPE] = "xsd:string"
        el.text = value
    elif isinstance(value, bytes):
        el.attrib[_XSI_TYPE] = "xsd:base64Binary"
        el.text = base64.b64encode(value).decode("ascii")
    elif isinstance(value, EndpointReference):
        el.attrib[_XSI_TYPE] = "wsa:EndpointReferenceType"
        for child in value.to_xml().children:
            el.append(child)
    elif isinstance(value, Element):
        el.attrib[_XSI_TYPE] = "uva:xmlAny"
        el.append(value.copy())
    elif isinstance(value, (list, tuple)):
        el.attrib[_XSI_TYPE] = "uva:array"
        for item in value:
            el.append(to_typed_element(_ITEM, item))
    elif isinstance(value, dict):
        el.attrib[_XSI_TYPE] = "uva:map"
        for key, item in value.items():
            if not isinstance(key, str):
                raise TypeError(f"map keys must be strings, got {key!r}")
            entry = el.subelement(_ENTRY)
            entry.subelement(_KEY, text=key)
            entry.append(to_typed_element(_VALUE, item))
    else:
        raise TypeError(f"cannot serialize {type(value).__name__}: {value!r}")
    return el


def from_typed_element(element: Element) -> Any:
    """Inverse of :func:`to_typed_element`."""
    if element.get(_XSI_NIL) == "true":
        return None
    xsi_type = element.get(_XSI_TYPE)
    if xsi_type is None:
        # Untyped leaves decode as strings; this keeps hand-written
        # envelopes in tests convenient.
        return element.full_text()
    if xsi_type == "xsd:boolean":
        text = element.full_text().strip()
        if text not in ("true", "false", "1", "0"):
            raise SoapFault("soap:Client", f"bad boolean literal {text!r}")
        return text in ("true", "1")
    if xsi_type in ("xsd:long", "xsd:int"):
        return int(element.full_text().strip())
    if xsi_type in ("xsd:double", "xsd:float"):
        return float(element.full_text().strip())
    if xsi_type == "xsd:string":
        return element.full_text()
    if xsi_type == "xsd:base64Binary":
        return base64.b64decode(element.full_text().strip().encode("ascii"))
    if xsi_type == "wsa:EndpointReferenceType":
        return EndpointReference.from_xml(element)
    if xsi_type == "uva:xmlAny":
        if len(element.children) != 1:
            raise SoapFault("soap:Client", "xmlAny must wrap exactly one element")
        return element.children[0].copy()
    if xsi_type == "uva:array":
        return [from_typed_element(child) for child in element.children]
    if xsi_type == "uva:map":
        out = {}
        for entry in element.children:
            key = entry.child_text(_KEY)
            value_el = entry.find(_VALUE)
            if key is None or value_el is None:
                raise SoapFault("soap:Client", "malformed map entry")
            out[key] = from_typed_element(value_el)
        return out
    raise SoapFault("soap:Client", f"unknown xsi:type {xsi_type!r}")
