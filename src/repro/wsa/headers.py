"""WS-Addressing SOAP header block."""

from __future__ import annotations

import itertools
from typing import List, Optional

from repro.wsa.epr import EndpointReference
from repro.xmlx import NS, Element, QName

_TO = QName(NS.WSA, "To")
_ACTION = QName(NS.WSA, "Action")
_MESSAGE_ID = QName(NS.WSA, "MessageID")
_RELATES_TO = QName(NS.WSA, "RelatesTo")
_REPLY_TO = QName(NS.WSA, "ReplyTo")
_FAULT_TO = QName(NS.WSA, "FaultTo")

#: WS-Addressing's anonymous address: "reply over the same connection"
ANONYMOUS = "http://schemas.xmlsoap.org/ws/2004/03/addressing/role/anonymous"

_id_counter = itertools.count(1)


def make_message_id() -> str:
    """A unique (per-run, deterministic) WS-Addressing MessageID URI."""
    return f"uuid:msg-{next(_id_counter):08d}"


class AddressingHeaders:
    """The WS-Addressing headers of one SOAP message.

    ``to_epr`` is the full EndpointReference the sender targeted; its
    reference properties are serialized as *separate header blocks*
    alongside ``<To>`` (the WS-Addressing binding the paper describes:
    "the unique name given in the ReferenceProperties element of the
    EPR" arrives in the headers of the invocation).
    """

    __slots__ = ("to_epr", "action", "message_id", "relates_to", "reply_to", "fault_to")

    def __init__(
        self,
        to_epr: EndpointReference,
        action: str,
        message_id: Optional[str] = None,
        relates_to: Optional[str] = None,
        reply_to: Optional[EndpointReference] = None,
        fault_to: Optional[EndpointReference] = None,
    ) -> None:
        self.to_epr = to_epr
        self.action = action
        self.message_id = message_id or make_message_id()
        self.relates_to = relates_to
        self.reply_to = reply_to
        self.fault_to = fault_to

    def to_header_elements(self) -> List[Element]:
        out: List[Element] = []
        out.append(Element(_TO, text=self.to_epr.address))
        out.append(Element(_ACTION, text=self.action))
        out.append(Element(_MESSAGE_ID, text=self.message_id))
        if self.relates_to:
            out.append(Element(_RELATES_TO, text=self.relates_to))
        if self.reply_to is not None:
            out.append(self.reply_to.to_xml(_REPLY_TO))
        if self.fault_to is not None:
            out.append(self.fault_to.to_xml(_FAULT_TO))
        for name, value in self.to_epr.reference_properties.items():
            out.append(Element(name, text=value))
        return out

    @classmethod
    def from_header_elements(cls, headers: List[Element]) -> "AddressingHeaders":
        to_address = action = message_id = relates_to = None
        reply_to = fault_to = None
        ref_props = {}
        for header in headers:
            tag = header.tag
            if tag == _TO:
                to_address = header.full_text().strip()
            elif tag == _ACTION:
                action = header.full_text().strip()
            elif tag == _MESSAGE_ID:
                message_id = header.full_text().strip()
            elif tag == _RELATES_TO:
                relates_to = header.full_text().strip()
            elif tag == _REPLY_TO:
                reply_to = EndpointReference.from_xml(header)
            elif tag == _FAULT_TO:
                fault_to = EndpointReference.from_xml(header)
            elif tag.uri not in (NS.WSA, NS.WSSE):
                # Any other header is treated as an EPR reference property;
                # this is the "opaque name in the headers" WSRF convention.
                ref_props[tag] = header.full_text()
        if to_address is None:
            raise ValueError("message lacks a wsa:To header")
        if action is None:
            raise ValueError("message lacks a wsa:Action header")
        epr = EndpointReference(to_address, ref_props)
        return cls(
            to_epr=epr,
            action=action,
            message_id=message_id,
            relates_to=relates_to,
            reply_to=reply_to,
            fault_to=fault_to,
        )
