"""WS-Addressing (the 2004/03 member submission the paper relies on).

WSRF's central convention — the *implied resource pattern* — rides on
WS-Addressing: an :class:`EndpointReference` (EPR) names a WS-Resource by
combining a service ``Address`` with opaque ``ReferenceProperties``; when a
client invokes the service, the EPR's address becomes the SOAP ``<To>``
header and each reference property is copied into the header block, which
is how the WSRF.NET wrapper (our :mod:`repro.wsrf.tooling`) knows which
resource's state to load.
"""

from repro.wsa.epr import EndpointReference
from repro.wsa.headers import AddressingHeaders, make_message_id

__all__ = ["AddressingHeaders", "EndpointReference", "make_message_id"]
