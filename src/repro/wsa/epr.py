"""EndpointReference: the WS-Addressing name of a WS-Resource."""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple

from repro.xmlx import NS, Element, QName

_ADDRESS = QName(NS.WSA, "Address")
_REF_PROPS = QName(NS.WSA, "ReferenceProperties")
_EPR_TAG = QName(NS.WSA, "EndpointReference")


class EndpointReference:
    """An immutable (address, reference-properties) pair.

    ``address`` is a URI such as ``http://host:80/ExecutionService`` or
    ``soap.tcp://client-7:9000/files``.  ``reference_properties`` is a
    mapping of QName → string; WSRF.NET keys resource lookup off a single
    ``ResourceID`` property, but arbitrary properties are allowed (the
    paper notes the contents are opaque to clients).

    EPRs are hashable and comparable so clients can hold sets of them —
    the §5 "coupling" discussion is about exactly this client-side state,
    measured by the D-8 benchmark.
    """

    __slots__ = ("_address", "_props", "_hash")

    def __init__(
        self,
        address: str,
        reference_properties: Optional[Mapping[QName, str]] = None,
    ) -> None:
        if not address:
            raise ValueError("EPR requires a non-empty address")
        props: Tuple[Tuple[QName, str], ...] = ()
        if reference_properties:
            items = []
            for key, value in reference_properties.items():
                qkey = key if isinstance(key, QName) else QName(key)
                items.append((qkey, str(value)))
            items.sort(key=lambda kv: (kv[0].uri, kv[0].local))
            props = tuple(items)
        object.__setattr__(self, "_address", address)
        object.__setattr__(self, "_props", props)
        object.__setattr__(self, "_hash", hash((address, props)))

    def __setattr__(self, name, value):
        raise AttributeError("EndpointReference is immutable")

    @property
    def address(self) -> str:
        return self._address

    @property
    def reference_properties(self) -> Dict[QName, str]:
        return dict(self._props)

    def get(self, name, default: Optional[str] = None) -> Optional[str]:
        want = name if isinstance(name, QName) else QName(name)
        for key, value in self._props:
            if key == want:
                return value
        return default

    def with_property(self, name, value: str) -> "EndpointReference":
        """A copy with one reference property added/replaced."""
        props = self.reference_properties
        props[name if isinstance(name, QName) else QName(name)] = value
        return EndpointReference(self._address, props)

    # -- XML binding ----------------------------------------------------------

    def to_xml(self, tag: Optional[QName] = None) -> Element:
        root = Element(tag or _EPR_TAG)
        root.subelement(_ADDRESS, text=self._address)
        if self._props:
            holder = root.subelement(_REF_PROPS)
            for key, value in self._props:
                holder.subelement(key, text=value)
        return root

    @classmethod
    def from_xml(cls, element: Element) -> "EndpointReference":
        address_el = element.find(_ADDRESS)
        if address_el is None:
            raise ValueError(f"element {element.tag} lacks a wsa:Address child")
        props: Dict[QName, str] = {}
        holder = element.find(_REF_PROPS)
        if holder is not None:
            for child in holder.children:
                props[child.tag] = child.full_text()
        return cls(address_el.full_text().strip(), props)

    # -- value semantics -------------------------------------------------------

    def __eq__(self, other) -> bool:
        if not isinstance(other, EndpointReference):
            return NotImplemented
        return self._address == other._address and self._props == other._props

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        props = ", ".join(f"{k.local}={v!r}" for k, v in self._props)
        return f"EPR({self._address!r}{', ' if props else ''}{props})"
