"""The Execution Service (§4.2).

"The ES's WS-Resources are jobs" — the *resource as process*
abstraction.  Run() is the entry point the Scheduler calls: the ES
creates a working directory via the FSS on its machine, directs the FSS
to upload the job's files (one-way), and returns the job's EPR.  When
the FSS's "upload complete" one-way message arrives, the ES asks the
ProcSpawn Windows service to start the binary as the requested user
(credentials arrive in the encrypted WS-Security header).  When the
process exits, ProcSpawn's completion event triggers the ES to record
the exit code and broadcast it via the Notification Broker.

Job resources expose Kill/GetExitCode methods and Status/CpuTime
resource properties, exactly the §4.2 surface.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.gridapp import tracing
from repro.osim import SpawnError
from repro.osim.cpu import ProcessState
from repro.wsa import EndpointReference
from repro.wsn.base_notification import build_notify_body
from repro.wsrf.attributes import (
    Resource,
    ResourceProperty,
    ServiceSkeleton,
    WebMethod,
    WSRFPortType,
)
from repro.wsrf.basefaults import BaseFault
from repro.wsrf.lifetime import ImmediateResourceTerminationPortType
from repro.wsrf.porttypes import (
    GetMultipleResourcePropertiesPortType,
    GetResourcePropertyPortType,
    QueryResourcePropertiesPortType,
)
from repro.xmlx import NS, Element, QName

UVA = NS.UVACG

_PATH_RP = QName(UVA, "Path")


class JobFault(BaseFault):
    FAULT_QNAME = QName(UVA, "JobFault")


def _k(name: str) -> QName:
    return QName(UVA, name)


@WSRFPortType(
    GetResourcePropertyPortType,
    GetMultipleResourcePropertiesPortType,
    QueryResourcePropertiesPortType,
    ImmediateResourceTerminationPortType,
)
class ExecutionService(ServiceSkeleton):
    """WS-Resources are jobs (processes) on this machine."""

    SERVICE_NS = UVA

    job_name = Resource(default="")
    status = Resource(default="Created")  # StagingFiles|Running|Exited|Killed|Failed
    binary_name = Resource(default="")
    args = Resource(default=None)
    username = Resource(default="")
    password = Resource(default="")
    topic = Resource(default="")
    workdir_epr = Resource(default=None)
    pid = Resource(default=None)
    exit_code = Resource(default=None)

    # -- resource properties ---------------------------------------------------------

    @ResourceProperty
    @property
    def Status(self) -> str:
        """The job's status (running, exited, ...)."""
        return self.status

    @ResourceProperty
    @property
    def CpuTime(self) -> float:
        """CPU time used so far, read live from the process."""
        if self.pid is None:
            return 0.0
        process = self.machine.procspawn.find(self.pid)
        if process is None:
            return 0.0
        self.machine.cpu.refresh()
        return process.cpu_time

    @ResourceProperty
    @property
    def WorkingDirectory(self):
        return self.workdir_epr

    # -- operations --------------------------------------------------------------------

    @WebMethod(requires_resource=False)
    def Run(
        self,
        job_name: str,
        executable: str,
        files: List[Dict],
        topic: str,
        args: Optional[List[str]] = None,
    ) -> Dict:
        """Start the run pipeline for one job; returns {job, dir} EPRs.

        ``files`` entries are upload tuples ``{"source_epr": EPR,
        "filename": ..., "jobname": ...}``; the executable must be among
        the jobnames.  Credentials come from the WS-Security header.
        """
        machine = self.machine
        credentials = self._authenticate_request()
        tracing.record(machine, 3, f"ES@{machine.name}", f"run {job_name}")

        # "the ES first creates a new directory by contacting the FSS that
        # lives on its machine" (step 4).
        fss_epr = EndpointReference(machine.service_url("FileSystem"))
        dir_epr = yield from self.client.call(
            fss_epr, UVA, "CreateDirectory", category="fss"
        )
        tracing.record(machine, 4, f"ES@{machine.name}",
                       f"created working dir for {job_name}")

        rid = self.create_resource(
            job_name=job_name,
            status="StagingFiles",
            binary_name=executable,
            args=list(args or []),
            username=credentials.username,
            password=credentials.password,
            topic=topic,
            workdir_epr=dir_epr,
        )
        job_epr = self.epr_for(rid)

        # Direct the FSS to upload the input files (one-way, step 4).
        yield from self.client.call(
            dir_epr, UVA, "Upload",
            {"files": files, "notify_epr": job_epr, "token": rid},
            category="upload-request", one_way=True,
        )

        # Broadcast the job's EPR so the Scheduler and client can poll it
        # (step 9): "the ES can send out a notification containing the
        # job's EPR".
        self._broadcast(
            f"{topic}/{job_name}/created",
            _job_event("JobCreated", job_name, job_epr=job_epr, dir_epr=dir_epr),
        )
        return {"job": job_epr, "dir": dir_epr}

    @WebMethod(one_way=True)
    def UploadComplete(self, token: str):
        """One-way from the FSS: inputs staged; start the process (step 8)."""
        machine = self.machine
        rid = self.resource_id
        tracing.record(machine, 7, f"ES@{machine.name}", f"upload complete for {rid}")

        # Resolve the working directory path via the FSS's Path RP — the
        # stated purpose of that resource property in §4.1.
        workdir_path = yield from self.client.get_resource_property(
            self.workdir_epr, _PATH_RP, category="fss"
        )

        tracing.record(machine, 8, f"ES@{machine.name}",
                       f"ProcSpawn {self.binary_name} as {self.username}")
        try:
            process = yield from machine.procspawn.spawn(
                f"{workdir_path}/{self.binary_name}",
                list(self.args or []),
                self.username,
                self.password,
                workdir_path,
            )
        except SpawnError as exc:
            self.status = "Failed"
            self.exit_code = -2
            self._broadcast(
                f"{self.topic}/{self.job_name}/exited",
                _job_event(
                    "JobExited", self.job_name, exit_code=-2,
                    job_epr=self.wsrf.my_epr(), dir_epr=self.workdir_epr,
                    detail=str(exc),
                ),
            )
            return
        self.status = "Running"
        self.pid = process.pid
        self._broadcast(
            f"{self.topic}/{self.job_name}/started",
            _job_event("JobStarted", self.job_name, job_epr=self.wsrf.my_epr(),
                       dir_epr=self.workdir_epr),
        )
        self._watch_process(rid, process)

    def _authenticate_request(self):
        """Extract the credentials a job should run under.

        The WSRF.NET path: decrypt the WS-Security UsernameToken.  The
        GT4 subclass overrides this with GSI verification + gridmap.
        """
        return self.wsrf.credentials()

    @WebMethod
    def Kill(self) -> str:
        """Terminate the job's process."""
        if self.pid is None:
            raise JobFault(
                description=f"job {self.resource_id!r} has no process",
                timestamp=self.env.now,
            )
        process = self.machine.procspawn.find(self.pid)
        if process is not None and process.is_running:
            process.kill()
            return "killed"
        return "already-exited"

    @WebMethod
    def GetExitCode(self) -> Optional[int]:
        """The job's exit code, or None if it has not exited."""
        return self.exit_code

    def wsrf_on_destroy(self):
        """Destroying a job resource kills any live process first."""
        if self.pid is not None:
            process = self.machine.procspawn.find(self.pid)
            if process is not None and process.is_running:
                process.kill()

    @classmethod
    def wsrf_recover(cls, wrapper) -> None:
        """After a crash, non-terminal jobs are lost: their processes and
        staged files died with the machine, and no watcher survives to
        record an exit.  Forget them so the Scheduler's next Status probe
        gets ResourceUnknownFault and re-dispatches.  Terminal jobs keep
        their resources — GetExitCode and output fetches still work.
        """
        machine = wrapper.machine
        status_key = _k("status")
        pid_key = _k("pid")
        for rid in list(wrapper.store.list_ids(wrapper.service_name)):
            state = wrapper.store.load(wrapper.service_name, rid)
            if status_key not in state:
                continue
            if state.get(status_key) in ("Exited", "Killed", "Failed"):
                continue
            pid = state.get(pid_key)
            if pid is not None:
                process = machine.procspawn.find(pid)
                if process is not None and process.is_running:
                    process.kill()
            wrapper.destroy_resource(rid)

    # -- internals ---------------------------------------------------------------------

    def _broadcast(self, topic_path: str, payload: Element) -> None:
        """Send one Notify to the broker (which multicasts, step 9).

        Honors the write-ahead contract (WAL001): sent through the
        invocation's outbox, the event leaves this host only after the
        db_save stage persists the state change it announces (a
        ``JobStarted`` must never outlive a crash that erased the
        ``Running`` status it reported).  From the detached process
        watcher the invocation is already closed and its own save done,
        so the send fires immediately.
        """
        wrapper = self.wsrf.wrapper
        broker_epr = getattr(wrapper, "broker_epr", None)
        if broker_epr is None:
            return  # testbed without a broker: events are dropped
        tracing.record(self.machine, 9, f"ES@{self.machine.name}", topic_path)
        body = build_notify_body(topic_path, payload, wrapper.service_epr())
        self.wsrf.send_after_persist(broker_epr, body)

    def _watch_process(self, rid: str, process) -> None:
        """Detached watcher: on exit, persist the outcome and broadcast.

        This is the ProcSpawn → ES completion notification of step 10,
        modeled as the Windows service firing the process's done event.
        """
        wrapper = self.wsrf.wrapper
        machine = self.machine
        env = self.env
        host = getattr(machine, "host", None)
        epoch = getattr(host, "boot_epoch", 0)

        def stale() -> bool:
            # The watcher belongs to this boot of the machine: once the
            # host crashes, its observation dies unpersisted — recovery
            # (wsrf_recover) re-dispatches the job instead.
            return host is not None and (
                host.down or getattr(host, "boot_epoch", 0) != epoch
            )

        def watcher(env):
            code = yield process.done
            if stale():
                return
            tracing.record(machine, 10, f"ProcSpawn@{machine.name}",
                           f"{rid} exited {code}")
            lock = wrapper.resource_lock(rid)
            yield lock.acquire()
            try:
                if stale() or not wrapper.store.exists(wrapper.service_name, rid):
                    return  # job resource destroyed while running
                yield machine.db_delay()
                state = wrapper.store.load(wrapper.service_name, rid)
                state[_k("status")] = (
                    "Killed" if process.state == ProcessState.KILLED else "Exited"
                )
                state[_k("exit_code")] = code
                yield machine.db_delay()
                if stale():
                    return  # crashed between observing and persisting
                wrapper.store.save(wrapper.service_name, rid, state)
            finally:
                lock.release()
            # The outcome is persisted; the broadcast may follow (the
            # write-ahead ordering, done manually by this detached
            # process since it runs outside any invocation).
            topic = state[_k("topic")]
            job_name = state[_k("job_name")]
            self._broadcast(
                f"{topic}/{job_name}/exited",
                _job_event(
                    "JobExited", job_name, exit_code=code,
                    job_epr=wrapper.epr_for(rid),
                    dir_epr=state[_k("workdir_epr")],
                ),
            )

        env.process(watcher(env))


def _job_event(kind: str, job_name: str, exit_code=None, job_epr=None,
               dir_epr=None, detail: str = "") -> Element:
    event = Element(QName(UVA, kind))
    event.subelement(QName(UVA, "JobName"), text=job_name)
    if exit_code is not None:
        event.subelement(QName(UVA, "ExitCode"), text=str(exit_code))
    if job_epr is not None:
        event.append(job_epr.to_xml(QName(UVA, "JobEPR")))
    if dir_epr is not None:
        event.append(dir_epr.to_xml(QName(UVA, "DirEPR")))
    if detail:
        event.subelement(QName(UVA, "Detail"), text=detail)
    return event


def parse_job_event(payload: Element) -> Dict:
    """Decode a job event payload into a plain dict."""
    out: Dict = {"kind": payload.tag.local}
    name = payload.child_text(QName(UVA, "JobName"))
    if name is not None:
        out["job_name"] = name
    code = payload.child_text(QName(UVA, "ExitCode"))
    if code is not None:
        out["exit_code"] = int(code)
    job_el = payload.find(QName(UVA, "JobEPR"))
    if job_el is not None:
        out["job_epr"] = EndpointReference.from_xml(job_el)
    dir_el = payload.find(QName(UVA, "DirEPR"))
    if dir_el is not None:
        out["dir_epr"] = EndpointReference.from_xml(dir_el)
    detail = payload.child_text(QName(UVA, "Detail"))
    if detail:
        out["detail"] = detail
    return out
