"""The cross-zone aggregator catalog: a ServiceGroup of ServiceGroups.

Each federation zone runs its own Node Info Service (a WS-ServiceGroup
of processors, §4.4).  The aggregator — deployed on the federation's
root machine — is a second-order ServiceGroup whose entries are the
*zone NIS groups themselves*: each entry's member EPR points at a zone
NIS and its content document caches that zone's processor catalog with
a fetch timestamp.

The staleness contract (docs/federation.md): ``GetAllProcessors``
serves an entry's cached catalog if it was fetched within the last
``staleness_s`` simulated seconds; older entries are re-fetched from
the zone NIS inline.  A zone that cannot be reached (partitioned, host
down) is served *stale* rather than blocking or erroring — schedulers
consulting the catalog during a zone outage still see the federation's
last known shape, which is exactly when they need it most.
"""

from __future__ import annotations

from typing import Dict, List

from repro.gridapp.node_info import parse_processor_content, processor_content
from repro.net import DeliveryError
from repro.soap import SoapFault
from repro.wsa import EndpointReference
from repro.wsrf.attributes import WebMethod
from repro.wsrf.servicegroup import ServiceGroupService
from repro.xmlx import NS, Element, QName

UVA = NS.UVACG
SG = NS.WSRF_SG

ZONE_CATALOG = QName(UVA, "ZoneCatalog")


def zone_catalog_content(
    zone: str,
    nis_epr: EndpointReference,
    fetched_at: float,
    processors: List[Dict],
) -> Element:
    """The Content document caching one zone's processor catalog."""
    el = Element(ZONE_CATALOG)
    el.subelement(QName(UVA, "Zone"), text=zone)
    el.append(nis_epr.to_xml(QName(UVA, "NisEPR")))
    el.subelement(QName(UVA, "FetchedAt"), text=repr(float(fetched_at)))
    for p in processors:
        el.append(
            processor_content(
                p["name"], p["cpu_speed"], p["ram_mb"],
                p["utilization"], p["updated_at"],
            )
        )
    return el


def parse_zone_catalog(el: Element) -> Dict:
    nis_el = el.find(QName(UVA, "NisEPR"))
    return {
        "zone": el.child_text(QName(UVA, "Zone"), ""),
        "nis_epr": (
            EndpointReference.from_xml(nis_el) if nis_el is not None else None
        ),
        "fetched_at": float(el.child_text(QName(UVA, "FetchedAt"), "0.0")),
        "processors": [
            parse_processor_content(child)
            for child in el.children
            if child.tag == QName(UVA, "ProcessorInfo")
        ],
    }


class AggregatorCatalogService(ServiceGroupService):
    """ServiceGroup-of-ServiceGroups with staleness-bounded entries."""

    @WebMethod(requires_resource=False)
    def GetAllProcessors(self) -> List[Dict]:
        """Every processor in the federation, tagged with its zone.

        Fresh entries (fetched within ``staleness_s``) are served from
        cache; stale ones are re-fetched from the zone NIS inline.  An
        unreachable zone is served stale — the catalog never blocks on
        a dead zone.
        """
        wrapper = self.wsrf.wrapper
        group_id = getattr(wrapper, "agg_group_rid", None)
        if group_id is None:
            return []
        staleness_s = getattr(wrapper, "staleness_s", 5.0)
        group_state = wrapper.store.load(wrapper.service_name, group_id)
        out: List[Dict] = []
        for entry_id in group_state.get(QName(SG, "entry_ids")) or []:
            # Same serialization discipline as NIS ReportUtilization:
            # the refresh below is a load-modify-save on the entry row
            # outside a requires_resource dispatch, so take the entry's
            # own resource lock for the whole read-refresh-serve cycle.
            lock = wrapper.resource_lock(entry_id)
            yield lock.acquire()
            try:
                try:
                    state = wrapper.store.load(wrapper.service_name, entry_id)
                except KeyError:
                    continue
                content = state.get(QName(SG, "content"))
                if content is None:
                    continue
                catalog = parse_zone_catalog(content)
                age = self.env.now - catalog["fetched_at"]
                if age > staleness_s and catalog["nis_epr"] is not None:
                    try:
                        processors = yield from self.client.call(
                            catalog["nis_epr"], SG, "GetProcessors",
                            category="nis",
                        )
                    except (DeliveryError, SoapFault):
                        wrapper.catalog_stale_served = (
                            getattr(wrapper, "catalog_stale_served", 0) + 1
                        )
                    else:
                        catalog["processors"] = processors
                        catalog["fetched_at"] = self.env.now
                        state[QName(SG, "content")] = zone_catalog_content(
                            catalog["zone"], catalog["nis_epr"],
                            catalog["fetched_at"], processors,
                        )
                        wrapper.store.save(
                            wrapper.service_name, entry_id, state
                        )
                        wrapper.catalog_refreshes = (
                            getattr(wrapper, "catalog_refreshes", 0) + 1
                        )
                for p in catalog["processors"]:
                    out.append(dict(p, zone=catalog["zone"]))
            finally:
                lock.release()
        return out


def setup_aggregator(wrapper, zones, staleness_s: float) -> str:
    """Create the aggregator group with one entry per zone.

    Runs at testbed assembly (the administrator seeds the federation
    catalog, mirroring ``setup_node_info``); entries start with the
    zones' assembly-time processor parameters so the catalog is usable
    before the first refresh.  Returns the group resource id.
    """
    group_rid = wrapper.create_resource_from_fields(
        {"kind": "group", "entry_ids": [], "content_rule": ZONE_CATALOG.clark()}
    )
    wrapper.agg_group_rid = group_rid
    wrapper.staleness_s = staleness_s
    entry_ids = []
    for zone in zones:
        nis_epr = zone.node_info.service_epr()
        processors = [
            {
                "name": machine.name,
                "cpu_speed": machine.params.cpu_speed,
                "ram_mb": machine.params.ram_mb,
                "utilization": machine.utilization(),
                "updated_at": wrapper.env.now,
            }
            for machine in zone.machines
        ]
        entry_rid = wrapper.create_resource_from_fields(
            {
                "kind": "entry",
                "member_epr": nis_epr,
                "content": zone_catalog_content(
                    zone.name, nis_epr, wrapper.env.now, processors
                ),
                "group_id": group_rid,
            }
        )
        entry_ids.append(entry_rid)
    state = wrapper.store.load(wrapper.service_name, group_rid)
    state[QName(SG, "entry_ids")] = entry_ids
    wrapper.store.save(wrapper.service_name, group_rid, state)
    wrapper._pending_db_ops = 0  # assembly-time writes are not billed
    return group_rid
