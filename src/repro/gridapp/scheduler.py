"""The Scheduler Service (§4.5) — "the heart of the remote job execution
testbed because it coordinates the activities of the other grid
components".

WS-Resources are *job sets*.  On submission the Scheduler generates a
unique topic for the job set, subscribes both itself and the client's
notification listener at the broker, and dispatches every job whose
dependencies are satisfied.  Each dispatch polls the Node Info service
for "the latest information about the grid's processors" and picks "the
fastest, most available machine" (the paper's straightforward
algorithm; random and round-robin baselines are provided for the D-6
benchmark).  As jobs complete, the Scheduler "fills in" the locations
of their output files — the EPRs of the working directories the ESs
created — so dependent jobs can fetch them, and schedules the next job
with no uncompleted dependencies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.gridapp import tracing
from repro.gridapp.execution_service import parse_job_event
from repro.gridapp.jobset import FileRef, JobSetSpec
from repro.net import Uri
from repro.wsa import EndpointReference
from repro.net import DeliveryError
from repro.wsn.base_notification import (
    NotificationConsumerPortType,
    build_subscribe_body,
)
from repro.wsn.topics import FULL_DIALECT
from repro.wsrf.attributes import (
    Resource,
    ResourceProperty,
    ServiceSkeleton,
    WebMethod,
    WSRFPortType,
)
from repro.soap import SoapFault
from repro.wsrf.basefaults import BaseFault, EndpointUnreachableFault
from repro.wsrf.lifetime import ImmediateResourceTerminationPortType
from repro.wsrf.porttypes import (
    GetMultipleResourcePropertiesPortType,
    GetResourcePropertyPortType,
    QueryResourcePropertiesPortType,
)
from repro.wssec import UsernameToken, build_security_header, has_x509_token
from repro.xmlx import NS, QName

UVA = NS.UVACG
SG = NS.WSRF_SG


class SchedulingFault(BaseFault):
    FAULT_QNAME = QName(UVA, "SchedulingFault")


@dataclass(frozen=True)
class FaultToleranceConfig:
    """Opt-in re-dispatch behaviour for the Scheduler.

    Attach an instance as ``wrapper.fault_tolerance`` (or pass
    ``fault_tolerance=`` to the Testbed) to make the Scheduler survive
    Execution Services that become unreachable mid-run: dispatches fail
    over to alternate NIS-cataloged machines, and a per-job-set watchdog
    probes dispatched jobs, re-dispatching any whose ES stops answering
    and synthesizing completions whose JobExited notification was lost.
    Without it the Scheduler keeps the paper's original fail-fast
    behaviour (one transport fault marks the set Failed).
    """

    #: machines tried per scheduling pass before the dispatch fails
    max_dispatch_attempts: int = 3
    #: watchdog-driven recoveries allowed per job before giving up
    max_redispatches: int = 3
    #: seconds between watchdog sweeps over a running job set
    watchdog_period: float = 5.0
    #: re-dispatch a job stuck in Created/StagingFiles this long
    stuck_after: float = 30.0

    def __post_init__(self) -> None:
        if self.max_dispatch_attempts < 1:
            raise ValueError("max_dispatch_attempts must be >= 1")
        if self.max_redispatches < 0:
            raise ValueError("max_redispatches must be >= 0")
        if self.watchdog_period <= 0:
            raise ValueError("watchdog_period must be positive")
        if self.stuck_after <= 0:
            raise ValueError("stuck_after must be positive")


def choose_machine(processors: List[Dict], policy: str, rng=None, rr_state=None) -> Dict:
    """Pick a machine from the NIS catalog.

    ``best`` — the paper's algorithm: fastest, most available (highest
    ``speed × (1 - utilization)``; name breaks ties deterministically).
    ``random`` / ``roundrobin`` — the D-6 baselines.
    """
    if not processors:
        raise SchedulingFault(description="no processors available in the VO")
    ordered = sorted(processors, key=lambda p: p["name"])
    if policy == "best":
        def score(p):
            # "fastest, most available": nominal speed discounted by the
            # reported utilization, split across jobs already queued there
            # by this scheduler.  The availability floor keeps queue depth
            # meaningful on machines reporting 100% busy.
            availability = max(0.1, 1.0 - p["utilization"])
            return p["cpu_speed"] * availability / (1.0 + p.get("queued", 0))

        return max(ordered, key=lambda p: (score(p), p["name"]))
    if policy == "random":
        if rng is None:
            raise SchedulingFault(description="random policy needs an RNG")
        return ordered[int(rng.integers(0, len(ordered)))]
    if policy == "roundrobin":
        index = rr_state["next"] % len(ordered)
        rr_state["next"] += 1
        return ordered[index]
    raise SchedulingFault(description=f"unknown scheduling policy {policy!r}")


@WSRFPortType(
    GetResourcePropertyPortType,
    GetMultipleResourcePropertiesPortType,
    QueryResourcePropertiesPortType,
    ImmediateResourceTerminationPortType,
    NotificationConsumerPortType,
)
class SchedulerService(ServiceSkeleton):
    """WS-Resources are job sets."""

    SERVICE_NS = UVA

    jobs = Resource(default=None)  # wire-form job specs
    status = Resource(default="Running")  # Running|Completed|Failed
    topic = Resource(default="")
    client_listener_epr = Resource(default=None)
    client_fs_epr = Resource(default=None)
    username = Resource(default="")
    password = Resource(default="")
    job_phase = Resource(default=None)  # {job: pending|dispatched|done|failed}
    job_machine = Resource(default=None)  # {job: machine name}
    job_dirs = Resource(default=None)  # {job: dir EPR} — the "filled in" outputs
    job_eprs = Resource(default=None)  # {job: job EPR}
    job_exit_codes = Resource(default=None)  # {job: int}
    delegated_cred = Resource(default=None)  # the client's signed X.509 header
    # -- fault-tolerance bookkeeping (unused unless FT is configured) --
    job_attempts = Resource(default=None)  # {job: dispatch count}
    job_excluded = Resource(default=None)  # {job: [machines not to reuse]}
    job_dispatched_at = Resource(default=None)  # {job: sim time of dispatch}

    # -- resource properties -----------------------------------------------------------

    @ResourceProperty
    @property
    def Status(self) -> str:
        return self.status

    @ResourceProperty
    @property
    def Topic(self) -> str:
        return self.topic

    @ResourceProperty
    @property
    def Progress(self) -> Dict:
        phases = self.job_phase or {}
        return {
            "total": len(phases),
            "done": sum(1 for p in phases.values() if p == "done"),
            "failed": sum(1 for p in phases.values() if p == "failed"),
            "dispatched": sum(1 for p in phases.values() if p == "dispatched"),
        }

    # -- operations -----------------------------------------------------------------------

    @WebMethod(requires_resource=False)
    def SubmitJobSet(
        self,
        jobs: List[Dict],
        listener_epr: Optional[EndpointReference] = None,
        fileserver_epr: Optional[EndpointReference] = None,
        origin: str = "",
    ) -> Dict:
        """Step 1: accept a job set; returns {"jobset": EPR, "topic": str}.

        *origin* (federation only) names the zone a stolen job set was
        first submitted to; this Scheduler adopts it as its own.
        """
        machine = self.machine
        wrapper = self.wsrf.wrapper
        spec = JobSetSpec.from_wire(jobs)
        spec.validate()
        credentials = self.wsrf.credentials()
        # GSI delegation: if the client's security header also carries a
        # signed X.509 token, keep it to authenticate dispatches to GT4
        # machines on the client's behalf (a proxy-credential stand-in).
        from repro.xmlx import NS as _NS

        sec_header = self.wsrf.envelope.find_header(QName(_NS.WSSE, "Security"))
        delegated = (
            sec_header.copy()
            if sec_header is not None and has_x509_token(sec_header)
            else None
        )
        tracing.record(machine, 1, "Scheduler", f"job set of {len(spec.jobs)} jobs")
        if origin:
            # Work stealing: a federated client re-routed this job set
            # here after zone *origin* stopped answering.
            wrapper.jobsets_stolen = getattr(wrapper, "jobsets_stolen", 0) + 1
            tracing.record(
                machine, 12, "Scheduler",
                f"adopting job set of {len(spec.jobs)} jobs from zone {origin}",
            )

        seq = getattr(wrapper, "_jobset_seq", 0) + 1
        wrapper._jobset_seq = seq
        topic = f"jobset-{seq:04d}"

        rid = self.create_resource(
            jobs=jobs,
            status="Running",
            topic=topic,
            client_listener_epr=listener_epr,
            client_fs_epr=fileserver_epr,
            username=credentials.username,
            password=credentials.password,
            job_phase={job.name: "pending" for job in spec.jobs},
            job_machine={},
            job_dirs={},
            job_eprs={},
            job_exit_codes={},
            delegated_cred=delegated,
            job_attempts={},
            job_excluded={},
            job_dispatched_at={},
        )
        jobset_epr = self.epr_for(rid)

        ft = getattr(wrapper, "fault_tolerance", None)
        if ft is not None:
            _start_watchdog(wrapper, rid, jobset_epr, ft)

        # "The SS then invokes the Subscribe() method on the Notification
        # Broker to subscribe both itself and the client's notification
        # listener to receive notifications about the new topic."
        # Federated zones subscribe at the *root* broker — zone brokers
        # uplink every publish there, so subscribers see events from any
        # zone a job may run in.
        broker_epr = getattr(wrapper, "subscribe_broker_epr", None) or getattr(
            wrapper, "broker_epr", None
        )
        if broker_epr is not None:
            yield from self.client.invoke(
                broker_epr,
                build_subscribe_body(jobset_epr, f"{topic}/**", FULL_DIALECT),
                category="subscribe",
            )
            if listener_epr is not None:
                yield from self.client.invoke(
                    broker_epr,
                    build_subscribe_body(listener_epr, f"{topic}/**", FULL_DIALECT),
                    category="subscribe",
                )

        # Kick the first scheduling pass via a one-way self-message so it
        # runs under the job set resource's lock with state loaded.
        yield from self.client.call(
            jobset_epr, UVA, "Activate", category="scheduler", one_way=True
        )
        return {"jobset": jobset_epr, "topic": topic}

    @WebMethod(one_way=True)
    def Activate(self):
        yield from self._schedule_ready_jobs()

    @WebMethod
    def CancelJobSet(self) -> str:
        """Kill all dispatched jobs and mark the set failed."""
        phases = dict(self.job_phase or {})
        eprs = self.job_eprs or {}
        for name, phase in phases.items():
            if phase == "dispatched" and name in eprs:
                try:
                    yield from self.client.call(eprs[name], UVA, "Kill")
                except BaseFault:
                    pass
            if phase in ("pending", "dispatched"):
                phases[name] = "failed"
        self.job_phase = phases
        self.status = "Failed"
        self._announce("cancelled")
        return "cancelled"

    # -- notification handling ----------------------------------------------------------------

    def on_notification(self, topic, payload, producer):
        """Job events from the broker (delivered to the job set's EPR)."""
        event = parse_job_event(payload)
        kind = event.get("kind")
        job_name = event.get("job_name")
        if not job_name or self.status != "Running":
            return
        if kind == "JobCreated":
            eprs = dict(self.job_eprs or {})
            dirs = dict(self.job_dirs or {})
            if self._is_stale(job_name, event):
                return
            if "job_epr" in event:
                eprs[job_name] = event["job_epr"]
            if "dir_epr" in event:
                # "The Scheduler then makes sure that any further jobs that
                # reference the output of this job will use this EPR."
                dirs[job_name] = event["dir_epr"]
            self.job_eprs = eprs
            self.job_dirs = dirs
            return
        if kind != "JobExited":
            return
        if self._is_stale(job_name, event):
            return
        if (self.job_phase or {}).get(job_name) in ("done", "failed"):
            # Duplicate terminal event (the watchdog may have synthesized
            # this completion already from a Status probe).
            return
        yield from self._job_exited(job_name, event.get("exit_code", -1))

    def _is_stale(self, job_name: str, event: Dict) -> bool:
        """True if *event* came from a superseded dispatch of *job_name*."""
        current = (self.job_eprs or {}).get(job_name)
        return (
            "job_epr" in event
            and current is not None
            and event["job_epr"] != current
        )

    def _job_exited(self, job_name: str, code: int):
        phases = dict(self.job_phase or {})
        codes = dict(self.job_exit_codes or {})
        codes[job_name] = code
        if code == 0:
            phases[job_name] = "done"
            self.job_phase = phases
            self.job_exit_codes = codes
            if all(phase == "done" for phase in phases.values()):
                self.status = "Completed"
                self._announce("completed")
            else:
                # "When the Scheduler gets the message that a job has
                # completed, it schedules the next job that no longer has
                # any uncompleted dependencies."
                yield from self._schedule_ready_jobs()
        else:
            phases[job_name] = "failed"
            self.job_phase = phases
            self.job_exit_codes = codes
            self.status = "Failed"
            self._announce("failed", detail=f"{job_name} exited {code}")

    # -- internals ---------------------------------------------------------------------------

    def _schedule_ready_jobs(self):
        spec = JobSetSpec.from_wire(self.jobs or [])
        name_map = spec.name_map()
        phases = dict(self.job_phase or {})
        # With the performance layer on, one NIS GetProcessors catalog is
        # shared by every dispatch of this scheduling pass (the catalog
        # lags reality anyway; in-flight placements are folded in per
        # dispatch below, so placement decisions are unchanged).
        pass_cache: Dict[str, List[Dict]] = {}
        for job in spec.jobs:
            if phases.get(job.name) != "pending":
                continue
            if any(
                phases.get(dep) != "done" for dep in job.dependencies(name_map)
            ):
                continue
            try:
                yield from self._dispatch_with_failover(job, name_map, pass_cache)
            except (SoapFault, DeliveryError, LookupError) as fault:
                # A dispatch failure must not unwind the whole pass (the
                # already-recorded placements would be lost): mark the job
                # and the set failed, announce, and stop scheduling.
                failed = dict(self.job_phase or {})
                failed[job.name] = "failed"
                self.job_phase = failed
                self.status = "Failed"
                detail = getattr(fault, "description", str(fault))
                self._announce("failed", detail=detail)
                return
            phases = dict(self.job_phase or {})  # _dispatch updates it

    def _ft(self) -> Optional[FaultToleranceConfig]:
        return getattr(self.wsrf.wrapper, "fault_tolerance", None)

    def _dispatch_with_failover(self, job, name_map, pass_cache=None):
        """Dispatch *job*, failing over to other machines under FT.

        Transport failures (the target never answered Run, even after
        client-level retries) exclude the machine and try the next best
        one, up to ``max_dispatch_attempts``.  SchedulingFaults — no
        machines, missing credentials — are configuration problems and
        stay terminal.
        """
        ft = self._ft()
        if ft is None:
            yield from self._dispatch(job, name_map, pass_cache=pass_cache)
            return
        excluded = set((self.job_excluded or {}).get(job.name, ()))
        for attempt in range(1, ft.max_dispatch_attempts + 1):
            self._last_target = None
            try:
                yield from self._dispatch(
                    job, name_map, exclude=excluded, pass_cache=pass_cache
                )
                return
            except DeliveryError as fault:
                if attempt >= ft.max_dispatch_attempts:
                    raise
                dead = self._last_target
                if dead is not None:
                    excluded.add(dead)
                    by_job = {
                        k: list(v) for k, v in (self.job_excluded or {}).items()
                    }
                    by_job[job.name] = sorted(excluded)
                    self.job_excluded = by_job
                tracing.record(
                    self.machine, 11, "Scheduler",
                    f"dispatch of {job.name} to {dead or '?'} failed; failing over",
                )
                self._announce_recovery(job.name, dead or "?", str(fault))

    def _dispatch(self, job, name_map, exclude=(), pass_cache=None):
        wrapper = self.wsrf.wrapper
        machine = self.machine
        # Step 2: poll the NIS.
        tracing.record(machine, 2, "Scheduler", f"poll NIS for {job.name}")
        nis_epr = getattr(wrapper, "nis_epr", None)
        if nis_epr is None:
            raise SchedulingFault(description="scheduler has no Node Info service")
        perf = getattr(wrapper, "perf", None)
        batch_nis = (
            perf is not None and perf.nis_pass_cache and pass_cache is not None
        )
        if batch_nis and "processors" in pass_cache:
            # Performance layer: reuse this pass's catalog instead of
            # polling once per job.  Each dispatch still gets private
            # dict copies (the queued-folding below mutates them).
            processors = [dict(p) for p in pass_cache["processors"]]
            wrapper.nis_polls_elided = getattr(wrapper, "nis_polls_elided", 0) + 1
        else:
            processors = yield from self.client.call(
                nis_epr, SG, "GetProcessors", category="nis"
            )
            if batch_nis:
                pass_cache["processors"] = [dict(p) for p in processors]
        policy = getattr(wrapper, "scheduling_policy", "best")
        if not hasattr(wrapper, "_rr_state"):
            wrapper._rr_state = {"next": 0}
        # The NIS catalog lags (utilization reports are periodic and
        # threshold-gated), but the Scheduler knows exactly which of this
        # job set's jobs are already in flight — fold those into
        # "most available" so back-to-back dispatches spread.
        in_flight: Dict[str, int] = {}
        phases = self.job_phase or {}
        for name, where in (self.job_machine or {}).items():
            if phases.get(name) == "dispatched":
                in_flight[where] = in_flight.get(where, 0) + 1
        if exclude:
            processors = [p for p in processors if p["name"] not in exclude]
        processors = [
            dict(p, queued=in_flight.get(p["name"], 0)) for p in processors
        ]
        aggregator_epr = getattr(wrapper, "aggregator_epr", None)
        if aggregator_epr is not None:
            fed = getattr(wrapper, "federation", None)
            cap = fed.max_queued_per_machine if fed is not None else 4
            if not processors or all(p["queued"] >= cap for p in processors):
                # The local zone is full (or exclusions emptied it):
                # consult the cross-zone aggregator catalog for capacity
                # anywhere in the federation.
                tracing.record(
                    machine, 12, "Scheduler",
                    f"zone {getattr(wrapper, 'zone', '?')} full; consulting "
                    f"aggregator for {job.name}",
                )
                catalog = yield from self.client.call(
                    aggregator_epr, SG, "GetAllProcessors", category="nis"
                )
                remote = [
                    dict(p, queued=in_flight.get(p["name"], 0))
                    for p in catalog
                    if p["name"] not in exclude
                ]
                if remote:
                    processors = remote
        if exclude and not processors:
            raise SchedulingFault(
                description=(
                    f"no processors left for {job.name!r} after excluding "
                    f"{sorted(exclude)}"
                )
            )
        chosen = choose_machine(
            processors, policy, rng=getattr(wrapper, "rng", None),
            rr_state=wrapper._rr_state,
        )
        target = chosen["name"]
        zone = getattr(wrapper, "zone", None)
        if zone is not None and chosen.get("zone", zone) != zone:
            wrapper.cross_zone_dispatches = (
                getattr(wrapper, "cross_zone_dispatches", 0) + 1
            )
            tracing.record(
                machine, 12, "Scheduler",
                f"{job.name} dispatched cross-zone to "
                f"{chosen['zone']}:{target}",
            )

        files = [self._resolve(job.executable, job.name, name_map)]
        for ref in job.inputs:
            files.append(self._resolve(ref, job.name, name_map))

        gt4_machines = getattr(wrapper, "gt4_machines", set())
        if target in gt4_machines:
            # GT4 node: forward the client's delegated X.509 credential.
            if self.delegated_cred is None:
                raise SchedulingFault(
                    description=(
                        f"machine {target!r} requires a grid credential but the "
                        "client delegated none at submission"
                    )
                )
            header = self.delegated_cred.copy()
        else:
            certs = getattr(wrapper, "machine_certs", {})
            if target not in certs:
                raise SchedulingFault(
                    description=f"no certificate known for machine {target!r}"
                )
            header = build_security_header(
                UsernameToken(self.username, self.password), certs[target]
            )
        es_epr = EndpointReference(f"http://{target}:80/ExecService")
        tracing.record(machine, 3, "Scheduler", f"{job.name} -> {target}")
        self._last_target = target
        result = yield from self.client.call(
            es_epr,
            UVA,
            "Run",
            {
                "job_name": job.name,
                "executable": job.executable.jobname,
                "files": files,
                "topic": self.topic,
                "args": job.args,
            },
            extra_headers=[header],
            category="dispatch",
        )
        phases = dict(self.job_phase or {})
        phases[job.name] = "dispatched"
        self.job_phase = phases
        machines = dict(self.job_machine or {})
        machines[job.name] = target
        self.job_machine = machines
        eprs = dict(self.job_eprs or {})
        eprs[job.name] = result["job"]
        self.job_eprs = eprs
        dirs = dict(self.job_dirs or {})
        dirs[job.name] = result["dir"]
        self.job_dirs = dirs
        attempts = dict(self.job_attempts or {})
        attempts[job.name] = attempts.get(job.name, 0) + 1
        self.job_attempts = attempts
        stamped = dict(self.job_dispatched_at or {})
        stamped[job.name] = self.env.now
        self.job_dispatched_at = stamped

    # -- fault tolerance (watchdog-driven re-dispatch) --------------------------------

    @WebMethod(one_way=True)
    def Watchdog(self):
        """One periodic FT sweep over this job set (self-sent one-way).

        For every dispatched job, probe its Status resource property at
        the Execution Service:

        * unreachable (transport fault after client retries) or resource
          unknown → re-dispatch elsewhere;
        * terminal status whose JobExited notification never arrived →
          fetch GetExitCode and synthesize the completion;
        * stuck in Created/StagingFiles past ``stuck_after`` (a lost
          one-way Upload/UploadComplete) → re-dispatch.

        Ends with a scheduling pass, which also self-heals a lost
        Activate self-message.
        """
        ft = self._ft()
        if ft is None or self.status != "Running":
            return
        eprs = dict(self.job_eprs or {})
        stamped = self.job_dispatched_at or {}
        for name, phase in dict(self.job_phase or {}).items():
            if self.status != "Running":
                return  # a recovery exhausted its budget mid-sweep
            if phase != "dispatched" or name not in eprs:
                continue
            try:
                status = yield from self.client.get_resource_property(
                    eprs[name], QName(UVA, "Status"), category="watchdog"
                )
            except DeliveryError as fault:
                self._recover(name, f"Execution Service unreachable: {fault}")
                continue
            except SoapFault:
                # e.g. ResourceUnknownFault: the ES restarted and forgot
                # the job; treat like an unreachable endpoint.
                self._recover(name, "job resource lost at the Execution Service")
                continue
            if status in ("Exited", "Killed", "Failed"):
                try:
                    code = yield from self.client.call(
                        eprs[name], UVA, "GetExitCode", category="watchdog"
                    )
                except (SoapFault, DeliveryError):
                    continue  # try again next sweep
                yield from self._job_exited(
                    name, code if code is not None else -1
                )
            elif status in ("Created", "StagingFiles"):
                since = stamped.get(name)
                if since is not None and self.env.now - since >= ft.stuck_after:
                    self._recover(
                        name,
                        f"staging stalled for {self.env.now - since:.1f}s",
                        exclude_machine=False,
                    )
        if self.status == "Running":
            yield from self._schedule_ready_jobs()

    def _recover(self, job_name: str, reason: str, exclude_machine: bool = True):
        """Re-queue *job_name* after its dispatch was lost (§watchdog)."""
        ft = self._ft()
        done = (self.job_attempts or {}).get(job_name, 1)
        from_machine = (self.job_machine or {}).get(job_name, "?")
        if ft is None or done - 1 >= ft.max_redispatches:
            phases = dict(self.job_phase or {})
            phases[job_name] = "failed"
            self.job_phase = phases
            self.status = "Failed"
            self._announce(
                "failed",
                detail=f"{job_name}: recovery budget exhausted ({reason})",
            )
            return
        if exclude_machine and from_machine != "?":
            by_job = {k: list(v) for k, v in (self.job_excluded or {}).items()}
            names = by_job.setdefault(job_name, [])
            if from_machine not in names:
                names.append(from_machine)
            self.job_excluded = by_job
        phases = dict(self.job_phase or {})
        phases[job_name] = "pending"
        self.job_phase = phases
        tracing.record(
            self.machine, 11, "Scheduler",
            f"recover {job_name} from {from_machine}: {reason}",
        )
        self._announce_recovery(job_name, from_machine, reason)

    def _announce_recovery(self, job_name: str, from_machine: str, reason: str):
        """Broadcast a JobRecovery event carrying a typed WS-BaseFault."""
        wrapper = self.wsrf.wrapper
        # Recovery count lives on the wrapper (not the skeleton instance,
        # which is rebuilt per invocation) so obs collection can read it.
        wrapper.recoveries_announced = getattr(wrapper, "recoveries_announced", 0) + 1
        broker_epr = getattr(wrapper, "broker_epr", None)
        if broker_epr is None:
            return
        from repro.wsn.base_notification import build_notify_body
        from repro.xmlx import Element

        payload = Element(QName(UVA, "JobRecovery"))
        payload.set("job", job_name)
        payload.set("from", from_machine)
        fault = EndpointUnreachableFault(
            description=reason, timestamp=self.env.now
        )
        payload.append(fault.to_detail_element())
        body = build_notify_body(
            f"{self.topic}/recovery", payload, wrapper.service_epr()
        )
        # Write-ahead contract (WAL001): the recovery bookkeeping this
        # event describes must be persisted before the event leaves.
        self.wsrf.send_after_persist(broker_epr, body)

    def _resolve(self, ref: FileRef, job_name: str, name_map) -> Dict:
        """Turn a FileRef into the paper's {EPR, filename, jobname} tuple."""
        uri = Uri.parse(ref.source_url)
        if uri.scheme == "local":
            if self.client_fs_epr is None:
                raise SchedulingFault(
                    description=(
                        f"job {job_name!r} needs {ref.source_url!r} but the "
                        "client provided no file server"
                    )
                )
            return {
                "source_epr": self.client_fs_epr,
                "filename": uri.path,
                "jobname": ref.jobname,
            }
        dep = ref.depends_on(name_map)
        if dep is not None:
            dirs = self.job_dirs or {}
            if dep not in dirs:
                raise SchedulingFault(
                    description=(
                        f"job {job_name!r} needs output of {dep!r} but its "
                        "location is not known yet"
                    )
                )
            return {
                "source_epr": dirs[dep],
                "filename": uri.path,
                "jobname": ref.jobname,
            }
        raise SchedulingFault(
            description=f"unsupported input URI scheme {uri.scheme!r}"
        )

    def _announce(self, outcome: str, detail: str = "") -> None:
        """Broadcast the job set's terminal status on its topic."""
        wrapper = self.wsrf.wrapper
        broker_epr = getattr(wrapper, "broker_epr", None)
        if broker_epr is None:
            return
        from repro.wsn.base_notification import build_notify_body
        from repro.xmlx import Element

        payload = Element(QName(UVA, "JobSetStatus"), text=outcome)
        if detail:
            payload.set("detail", detail)
        body = build_notify_body(
            f"{self.topic}/{outcome}", payload, wrapper.service_epr()
        )
        # Write-ahead contract (WAL001): the terminal status must be on
        # disk before the fabric hears about it.
        self.wsrf.send_after_persist(broker_epr, body)

    # -- crash recovery ------------------------------------------------------------------

    @classmethod
    def wsrf_recover(cls, wrapper) -> None:
        """Re-adopt in-flight job sets after the scheduler host bounced.

        Everything needed to resume is in the store: for each job set
        still ``Running`` at the checkpoint, restart its watchdog (the
        old boot's detached processes are gone) and nudge a scheduling
        pass via the usual one-way Activate self-message, which runs
        under the resource lock and re-dispatches anything pending.
        Jobs the dead boot had dispatched stay dispatched — the watchdog
        probes them and synthesizes or re-dispatches as usual, so no
        completed work is redone just because the coordinator blinked.
        """
        status_key = QName(UVA, "status")
        topic_key = QName(UVA, "topic")
        seq = getattr(wrapper, "_jobset_seq", 0)
        ft = getattr(wrapper, "fault_tolerance", None)
        readopted = 0
        for rid in wrapper.store.list_ids(wrapper.service_name):
            state = wrapper.store.load(wrapper.service_name, rid)
            topic = state.get(topic_key, "")
            # The topic sequence is derived state: recover the high-water
            # mark so post-restart submissions get fresh topics.
            if isinstance(topic, str) and topic.startswith("jobset-"):
                try:
                    seq = max(seq, int(topic[len("jobset-"):]))
                except ValueError:
                    pass
            if state.get(status_key) != "Running":
                continue
            readopted += 1
            jobset_epr = wrapper.epr_for(rid)
            if ft is not None:
                _start_watchdog(wrapper, rid, jobset_epr, ft)
            _nudge_scheduling_pass(wrapper, jobset_epr)
        wrapper._jobset_seq = seq
        if readopted:
            #: created lazily so default obs exports stay byte-identical
            wrapper.jobsets_readopted = (
                getattr(wrapper, "jobsets_readopted", 0) + readopted
            )


def _nudge_scheduling_pass(wrapper, jobset_epr):
    """Detached one-way Activate: kick a re-adopted job set's scheduling."""

    def nudge(env):
        try:
            yield from wrapper.client.call(
                jobset_epr, UVA, "Activate", category="scheduler", one_way=True
            )
        except Exception:
            pass  # the watchdog self-heals a lost nudge

    return wrapper.env.process(nudge(wrapper.env))


def _start_watchdog(wrapper, rid: str, jobset_epr, ft: FaultToleranceConfig):
    """Detached per-job-set process driving periodic Watchdog sweeps.

    It peeks the stored job set state between sleeps and stops once the
    set leaves Running (or is destroyed); each tick is a one-way
    self-message so the sweep itself runs through the normal dispatch
    pipeline, under the resource lock with state loaded (the Activate
    pattern).  The loopback link is exempt from fault injection, so the
    watchdog keeps ticking no matter how lossy the wide network is.
    """
    env = wrapper.env
    status_key = QName(UVA, "status")
    host = getattr(wrapper.machine, "host", None)
    epoch = getattr(host, "boot_epoch", 0)

    def loop(env):
        while True:
            yield env.timeout(ft.watchdog_period)
            if host is not None and getattr(host, "boot_epoch", 0) != epoch:
                # This watchdog belongs to a dead boot; wsrf_recover
                # started a replacement, so exit instead of double-probing.
                return
            try:
                state = wrapper.store.load(wrapper.service_name, rid)
            except Exception:
                return  # job set destroyed
            if state.get(status_key, "Running") != "Running":
                return
            try:
                yield from wrapper.client.call(
                    jobset_epr, UVA, "Watchdog",
                    category="watchdog", one_way=True,
                )
            except Exception:
                return  # scheduler host itself went down

    # Every failure path inside loop() is absorbed, so the detached
    # process can never re-raise at the end of the run.
    return env.process(loop(env))
