"""Stand up the whole UVa Campus Grid testbed on simulated machines.

Mirrors the paper's deployment: every grid machine runs a File System
service and an Execution service (web services in IIS) plus the
ProcSpawn and Processor Utilization Windows services; a central machine
hosts the single Notification Broker, the Scheduler and the Node Info
service.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.gridapp.client import GridClient
from repro.gridapp.execution_service import ExecutionService
from repro.gridapp.filesystem_service import GRID_ROOT, FileSystemService
from repro.gridapp.node_info import NodeInfoService, setup_node_info
from repro.gridapp.scheduler import SchedulerService
from repro.gridapp.tracing import EventTrace
from repro.gridapp.utilization import ProcessorUtilizationService
from repro.gt4 import Gt4ExecutionService, LinuxMachine
from repro.net import Network, NetworkParams
from repro.osim import Machine, MachineParams, ProgramRegistry
from repro.sim import Environment
from repro.wsn.base_notification import attach_notification_producer
from repro.wsn.broker import NotificationBrokerService
from repro.wsrf import deploy
from repro.wssec import CertificateAuthority
from repro.wssec.x509 import enroll

#: default grid account present on every machine
GRID_USER = "griduser"
GRID_PASSWORD = "gridpw-2004"


class Testbed:
    """One simulated campus grid, ready to run job sets."""

    __test__ = False  # not a pytest test class, despite living in test imports

    def __init__(
        self,
        n_machines: int = 4,
        machine_speeds: Optional[Sequence[float]] = None,
        seed: int = 42,
        network_params: Optional[NetworkParams] = None,
        utilization_threshold: float = 0.10,
        utilization_period: float = 1.0,
        start_utilization_services: bool = True,
        scheduling_policy: str = "best",
        cores_per_machine: int = 1,
        n_linux_machines: int = 0,
        retry_policy=None,
        fault_tolerance=None,
        broker_redelivery=None,
        observability: bool = False,
        perf=None,
        profile: bool = False,
        sanitize: bool = False,
        federation=None,
    ) -> None:
        """Assemble the grid; optional knobs enable fault tolerance.

        ``retry_policy``/``fault_tolerance``/``broker_redelivery`` (see
        docs/fault_tolerance.md) work as follows: ``retry_policy`` (a
        :class:`repro.net.retry.RetryPolicy`) is attached to every
        service's outbound client and becomes the default for
        :meth:`make_client`; ``fault_tolerance`` (a
        :class:`repro.gridapp.scheduler.FaultToleranceConfig`) turns on
        Scheduler re-dispatch; ``broker_redelivery`` (another
        RetryPolicy) bounds broker notification redelivery before a dead
        subscriber is dropped.  All default to off, preserving the
        paper's fail-fast semantics.

        ``perf`` (a :class:`repro.perf.PerfConfig`, see
        docs/performance.md) opts every service into the hot-path
        performance layer: write-through state caching with load/save
        elision, batched broker notification fan-out, and per-pass NIS
        catalog reuse in the Scheduler.  Also off by default;
        tests/test_perf_equivalence.py proves enabling it changes only
        simulated latencies.

        ``profile=True`` attaches a
        :class:`repro.obs.WallClockProfiler` (``self.prof``) measuring
        the *host* CPU cost of the run by subsystem stage; it reads only
        the wall clock and never the simulation, so simulated results
        stay byte-identical (benchmarks/bench_wallclock.py asserts it).

        ``sanitize=True`` attaches a
        :class:`repro.analysis.RaceSanitizer` (``self.san``): a runtime
        happens-before + lockset checker flagging data races on
        WS-Resource rows, lock-order inversions and dispatch reentrancy
        (docs/static_analysis.md).  Observation only — simulated results
        stay byte-identical (tests/test_sanitizer.py asserts it); call
        ``tb.san.assert_clean()`` after a run.

        ``federation`` (a
        :class:`repro.gridapp.federation.FederationConfig`, or an int
        zone count, see docs/federation.md) replaces the single-site
        topology with a federated one: per-zone central machines each
        running a Scheduler + NIS + broker, grid machines sharded
        round-robin across zones, a root machine carrying the root
        broker and the cross-zone aggregator catalog.  ``None`` (the
        default) keeps the paper's Fig. 3 single-site grid and every
        existing trace/export byte-identical.
        """
        if n_machines < 1:
            raise ValueError("a grid needs at least one machine")
        self.env = Environment()
        self.network = Network(self.env, params=network_params)
        self.network.trace = EventTrace(self.env)
        self.trace = self.network.trace
        # Attached before any service deploys so every wrapper
        # self-registers with the collector.
        self.obs = None
        if observability:
            from repro.obs import Observability

            self.obs = Observability(self.env).attach(self.network)
        # Opt-in wall-clock profiler (docs/observability.md): attributes
        # host CPU time to subsystem stages.  Attached per-testbed (never
        # a module global) so differential two-testbed runs in one
        # process can profile one side without contaminating the other.
        self.prof = None
        if profile:
            from repro.obs import WallClockProfiler

            self.prof = WallClockProfiler()
            self.env.prof = self.prof
            self.network.prof = self.prof
        # Opt-in runtime sanitizer: attached before any service deploys
        # so every wrapper instruments its store at construction.
        self.san = None
        if sanitize:
            from repro.analysis.sanitizer import RaceSanitizer

            self.san = RaceSanitizer(self.env)
        self.rng = np.random.default_rng(seed)
        self.ca = CertificateAuthority()
        self.programs = ProgramRegistry()
        self.perf = perf
        # Codec fast path (docs/performance.md): one EnvelopeCache per
        # fabric, attached before any endpoint is built so every
        # serialize/deserialize site picks it up via network.codec.
        if perf is not None and perf.codec_envelope_cache:
            from repro.soap import EnvelopeCache

            self.network.codec = EnvelopeCache()

        if machine_speeds is None:
            # Heterogeneous campus desktops: 1.0x to 2.0x, deterministic.
            machine_speeds = [
                1.0 + (i % 4) * 0.333 for i in range(n_machines)
            ]
        if len(machine_speeds) != n_machines:
            raise ValueError("machine_speeds length must equal n_machines")

        # -- topology: single site (the paper's Fig. 3) or federated zones ---
        self.federation = None
        self.zones: List = []
        self.root = None
        if federation is not None:
            from repro.gridapp.federation import FederationConfig

            if isinstance(federation, int):
                federation = FederationConfig(n_zones=federation)
            if n_linux_machines:
                raise ValueError(
                    "federation and n_linux_machines are mutually exclusive"
                )
            self.federation = federation
            self._assemble_federated(
                federation, n_machines, machine_speeds, seed,
                utilization_threshold, utilization_period,
                start_utilization_services, scheduling_policy,
                cores_per_machine, perf,
            )
        else:
            self._assemble_single(
                n_machines, machine_speeds, seed, utilization_threshold,
                utilization_period, start_utilization_services,
                scheduling_policy, cores_per_machine, n_linux_machines, perf,
            )

        # -- fault-tolerance layer (all opt-in) ----------------------------------
        self.retry_policy = retry_policy
        if fault_tolerance is not None:
            for scheduler in self._schedulers:
                scheduler.fault_tolerance = fault_tolerance
        if broker_redelivery is not None:
            from repro.wsn.broker import enable_redelivery

            for broker in self._brokers:
                enable_redelivery(broker, broker_redelivery)
        if perf is not None and perf.notification_batch_window_s > 0:
            from repro.wsn.batching import enable_batching

            # Only the brokers' fan-out batches: they are the producers
            # with per-event subscriber multiplicity (the ES->broker leg
            # is already a single message per event).
            for broker in self._brokers:
                enable_batching(broker, perf.notification_batch_window_s)
        if retry_policy is not None:
            for wrapper in self._wrappers:
                wrapper.client.retry_policy = retry_policy

        self._client_seq = 0

    def _assemble_single(
        self,
        n_machines: int,
        machine_speeds: Sequence[float],
        seed: int,
        utilization_threshold: float,
        utilization_period: float,
        start_utilization_services: bool,
        scheduling_policy: str,
        cores_per_machine: int,
        n_linux_machines: int,
        perf,
    ) -> None:
        """The paper's Fig. 3 deployment: one central machine."""
        # -- central services machine ---------------------------------------------
        self.central = Machine(
            self.network, "uvacg-central", params=MachineParams(cpu_speed=2.0),
            programs=self.programs,
        )
        self._enroll(self.central)
        self.broker = deploy(
            NotificationBrokerService, self.central, "NotificationBroker", perf=perf
        )
        attach_notification_producer(self.broker)
        self.node_info = deploy(NodeInfoService, self.central, "NodeInfo", perf=perf)
        self.scheduler = deploy(SchedulerService, self.central, "Scheduler", perf=perf)

        # -- grid machines ------------------------------------------------------------
        self.machines: List[Machine] = []
        self.fss: Dict[str, object] = {}
        self.es: Dict[str, object] = {}
        self.utilization_services: Dict[str, ProcessorUtilizationService] = {}
        for i in range(n_machines):
            machine = Machine(
                self.network,
                f"node{i:02d}",
                params=MachineParams(
                    cpu_speed=float(machine_speeds[i]), cores=cores_per_machine
                ),
                programs=self.programs,
            )
            machine.users.add_user(GRID_USER, GRID_PASSWORD)
            machine.fs.mkdir(GRID_ROOT)
            self._enroll(machine)
            self.machines.append(machine)
            self.fss[machine.name] = deploy(
                FileSystemService, machine, "FileSystem", perf=perf
            )
            es = deploy(ExecutionService, machine, "ExecService", perf=perf)
            es.broker_epr = self.broker.service_epr()
            self.es[machine.name] = es
            util = ProcessorUtilizationService(
                machine,
                self.node_info.service_epr(),
                threshold=utilization_threshold,
                period=utilization_period,
            )
            self.utilization_services[machine.name] = util
            if start_utilization_services:
                util.start()

        # -- Linux/GT4 machines (paper 6: UVaCG's Windows+Linux goal) -----------
        self.linux_machines = []
        for i in range(n_linux_machines):
            machine = LinuxMachine(self.network, f"linux{i:02d}", programs=self.programs)
            machine.users.add_user(GRID_USER, GRID_PASSWORD)
            machine.trusted_ca = self.ca
            self._enroll(machine)
            self.machines.append(machine)
            self.linux_machines.append(machine)
            self.fss[machine.name] = deploy(
                FileSystemService, machine, "FileSystem", perf=perf
            )
            es = deploy(Gt4ExecutionService, machine, "ExecService", perf=perf)
            es.broker_epr = self.broker.service_epr()
            self.es[machine.name] = es
            util = ProcessorUtilizationService(
                machine,
                self.node_info.service_epr(),
                threshold=utilization_threshold,
                period=utilization_period,
            )
            self.utilization_services[machine.name] = util
            if start_utilization_services:
                util.start()

        # -- wiring -------------------------------------------------------------------
        setup_node_info(self.node_info, self.machines)
        self.scheduler.nis_epr = self.node_info.service_epr()
        self.scheduler.broker_epr = self.broker.service_epr()
        self.scheduler.machine_certs = {m.name: m.cert for m in self.machines}
        self.scheduler.scheduling_policy = scheduling_policy
        self.scheduler.rng = np.random.default_rng(seed + 1)
        self.scheduler.gt4_machines = {m.name for m in self.linux_machines}

        self._schedulers = [self.scheduler]
        self._brokers = [self.broker]
        self._wrappers = (
            [self.scheduler, self.broker, self.node_info]
            + list(self.fss.values())
            + list(self.es.values())
        )

    def _assemble_federated(
        self,
        config,
        n_machines: int,
        machine_speeds: Sequence[float],
        seed: int,
        utilization_threshold: float,
        utilization_period: float,
        start_utilization_services: bool,
        scheduling_policy: str,
        cores_per_machine: int,
        perf,
    ) -> None:
        """The federated deployment (docs/federation.md).

        One root machine (root broker + aggregator catalog), one central
        machine per zone (Scheduler + NIS + zone broker uplinked to the
        root), grid machines sharded round-robin across zones.
        """
        from repro.gridapp.aggregator import (
            AggregatorCatalogService,
            setup_aggregator,
        )
        from repro.gridapp.federation import Zone
        from repro.wsn.broker import federate_brokers

        if config.n_zones > n_machines:
            raise ValueError(
                f"{config.n_zones} zones need at least that many grid "
                f"machines (got {n_machines})"
            )

        # -- root machine: federation-wide services --------------------------------
        self.root = Machine(
            self.network, "uvacg-root", params=MachineParams(cpu_speed=2.0),
            programs=self.programs,
        )
        self._enroll(self.root)
        self.root_broker = deploy(
            NotificationBrokerService, self.root, "NotificationBroker",
            perf=perf,
        )
        attach_notification_producer(self.root_broker)
        self.root_broker.zone = "root"
        self.aggregator = deploy(
            AggregatorCatalogService, self.root, "AggregatorCatalog",
            perf=perf,
        )
        self.aggregator.zone = "root"

        # -- zone central machines ----------------------------------------------------
        self.zones = []
        for z in range(config.n_zones):
            zone_name = f"z{z:02d}"
            central = Machine(
                self.network, f"uvacg-{zone_name}",
                params=MachineParams(cpu_speed=2.0), programs=self.programs,
            )
            self._enroll(central)
            broker = deploy(
                NotificationBrokerService, central, "NotificationBroker",
                perf=perf,
            )
            attach_notification_producer(broker)
            federate_brokers(broker, self.root_broker.service_epr())
            node_info = deploy(NodeInfoService, central, "NodeInfo", perf=perf)
            scheduler = deploy(SchedulerService, central, "Scheduler", perf=perf)
            for wrapper in (broker, node_info, scheduler):
                wrapper.zone = zone_name
            self.zones.append(
                Zone(
                    name=zone_name, central=central, broker=broker,
                    node_info=node_info, scheduler=scheduler,
                )
            )

        # -- grid machines, sharded round-robin across zones -----------------------
        self.machines = []
        self.linux_machines = []
        self.fss = {}
        self.es = {}
        self.utilization_services = {}
        for i in range(n_machines):
            zone = self.zones[i % config.n_zones]
            machine = Machine(
                self.network,
                f"node{i:02d}",
                params=MachineParams(
                    cpu_speed=float(machine_speeds[i]), cores=cores_per_machine
                ),
                programs=self.programs,
            )
            machine.users.add_user(GRID_USER, GRID_PASSWORD)
            machine.fs.mkdir(GRID_ROOT)
            self._enroll(machine)
            self.machines.append(machine)
            zone.machines.append(machine)
            fss = deploy(FileSystemService, machine, "FileSystem", perf=perf)
            fss.zone = zone.name
            self.fss[machine.name] = fss
            es = deploy(ExecutionService, machine, "ExecService", perf=perf)
            es.broker_epr = zone.broker.service_epr()
            es.zone = zone.name
            self.es[machine.name] = es
            util = ProcessorUtilizationService(
                machine,
                zone.node_info.service_epr(),
                threshold=utilization_threshold,
                period=utilization_period,
            )
            self.utilization_services[machine.name] = util
            if start_utilization_services:
                util.start()

        # -- wiring ------------------------------------------------------------------
        # Cross-zone dispatch means any zone's Scheduler may target any
        # grid machine, so every Scheduler knows every machine's cert.
        machine_certs = {m.name: m.cert for m in self.machines}
        for z, zone in enumerate(self.zones):
            setup_node_info(zone.node_info, zone.machines)
            scheduler = zone.scheduler
            scheduler.nis_epr = zone.node_info.service_epr()
            scheduler.broker_epr = zone.broker.service_epr()
            scheduler.subscribe_broker_epr = self.root_broker.service_epr()
            scheduler.machine_certs = machine_certs
            scheduler.scheduling_policy = scheduling_policy
            scheduler.rng = np.random.default_rng(seed + 1 + z)
            scheduler.gt4_machines = set()
            scheduler.federation = config
            scheduler.aggregator_epr = self.aggregator.service_epr()
        setup_aggregator(self.aggregator, self.zones, config.staleness_s)

        # Zone 0 doubles as the default site, so single-site helpers
        # (make_client, restart_host, existing assertions) keep working
        # against a federated testbed.
        self.central = self.zones[0].central
        self.broker = self.zones[0].broker
        self.node_info = self.zones[0].node_info
        self.scheduler = self.zones[0].scheduler

        self._schedulers = [zone.scheduler for zone in self.zones]
        self._brokers = [self.root_broker] + [z.broker for z in self.zones]
        self._wrappers = (
            self._schedulers
            + self._brokers
            + [zone.node_info for zone in self.zones]
            + [self.aggregator]
            + list(self.fss.values())
            + list(self.es.values())
        )

    def _enroll(self, machine: Machine) -> None:
        machine.keys, machine.cert = enroll(self.ca, machine.name)

    # -- clients -----------------------------------------------------------------------

    def make_client(
        self,
        host_name: Optional[str] = None,
        username: str = GRID_USER,
        password: str = GRID_PASSWORD,
        grid_identity: bool = False,
        retry_policy=None,
    ) -> GridClient:
        """A scientist's machine, attached to the campus network.

        ``grid_identity=True`` enrolls the scientist with the campus CA
        and adds grid-mapfile entries on every Linux machine (mapping
        the subject to the shared grid account) — required before the
        Scheduler may dispatch this client's jobs to GT4 nodes.
        """
        if host_name is None:
            self._client_seq += 1
            host_name = f"client{self._client_seq:02d}"
        user_keys = user_cert = None
        if grid_identity:
            subject = f"CN={username}/O=UVaCG/host={host_name}"
            user_keys, user_cert = enroll(self.ca, subject)
            for machine in self.linux_machines:
                machine.add_gridmap_entry(subject, GRID_USER)
        return GridClient(
            self.network,
            host_name,
            username,
            password,
            scheduler_epr=self.scheduler.service_epr(),
            scheduler_cert=self.central.cert,
            user_keys=user_keys,
            user_cert=user_cert,
            retry_policy=(
                retry_policy if retry_policy is not None else self.retry_policy
            ),
        )

    def make_federated_client(self, **kwargs):
        """A scientist's machine with federation-aware routing.

        Wraps :meth:`make_client` in a
        :class:`repro.gridapp.federation.FederatedGridClient` that
        shards job sets across zones by consistent hash and fails over
        (and, by default, steals work) when a zone dies.
        """
        from repro.gridapp.federation import FederatedGridClient, ZoneRoute

        if not self.zones:
            raise ValueError(
                "make_federated_client needs Testbed(federation=...)"
            )
        routes = [
            ZoneRoute(z.name, z.scheduler.service_epr(), z.central.cert)
            for z in self.zones
        ]
        return FederatedGridClient(
            self.make_client(**kwargs), routes, self.federation
        )

    # -- execution helpers -----------------------------------------------------------------

    def run(self, coroutine):
        """Run a client coroutine to completion; returns its value."""
        proc = self.env.process(coroutine)
        self.env.run(until=proc)
        return proc.value

    def run_job_set(self, client: GridClient, spec):
        """Submit *spec* and simulate until it completes (or fails).

        Returns (outcome, jobset_epr, topic).
        """
        return self.run(client.run_job_set(spec))

    def settle(self, extra_time: float = 10.0) -> None:
        """Advance simulated time so in-flight messages land.

        The heap never fully drains while the Processor Utilization
        samplers run (they tick forever), so settling is a bounded
        time advance, not a drain.
        """
        self.env.run(until=self.env.now + extra_time)

    # -- fault injection ---------------------------------------------------------------

    def restart_host(self, name: str, at: Optional[float] = None,
                     down_for: float = 5.0):
        """Schedule a crash-restart of machine *name* (docs/durability.md).

        At time *at* (immediately if None/past) the host's durable state
        is checkpointed — what its disks hold at the instant of the power
        cut — and the host goes down: requests and replies in flight die
        with ``DeliveryError``, handlers mid-dispatch become zombies that
        can no longer persist or send.  After *down_for* simulated
        seconds the host boots from the checkpoint: volatile state
        (caches, locks, watchers, processes) is gone, services re-adopt
        in-flight work via ``wsrf_recover``, and the boot epoch advances
        so leftovers of the old boot cannot write into the new one.

        Returns the simpy process so callers can wait on the reboot.
        """
        machine = self._machine_named(name)
        host = machine.host

        def _bounce(env):
            if at is not None and at > env.now:
                yield env.timeout(at - env.now)
            span = None
            if self.obs is not None:
                span = self.obs.start_span(
                    "host.restart", attrs={"host": name, "down_for": down_for}
                )
            snap = host.snapshot()
            host.down = True
            yield env.timeout(down_for)
            host.restore(snap)
            host.down = False
            if span is not None:
                self.obs.finish(span)

        return self.env.process(_bounce(self.env))

    def zone_hosts(self, index: int) -> set:
        """Host names belonging to zone *index* (central + grid machines)."""
        zone = self.zones[index]
        return {zone.central.name} | {m.name for m in zone.machines}

    def partition_zone(self, index: int) -> None:
        """Sever zone *index* from every other host on the network.

        The zone keeps running internally (its Scheduler can still talk
        to its own machines) but nothing crosses the cut — clients time
        out against its Scheduler and its broker's uplink to the root
        goes dark.  Undo with :meth:`heal_zone`.
        """
        inside = self.zone_hosts(index)
        for a in inside:
            for b in self.network.hosts:
                if b not in inside:
                    self.network.partition(a, b)

    def heal_zone(self, index: int) -> None:
        inside = self.zone_hosts(index)
        for a in inside:
            for b in list(self.network.hosts):
                if b not in inside:
                    self.network.heal(a, b)

    def _machine_named(self, name: str) -> Machine:
        if self.central.name == name:
            return self.central
        if self.root is not None and self.root.name == name:
            return self.root
        for zone in self.zones:
            if zone.central.name == name:
                return zone.central
        for machine in self.machines:
            if machine.name == name:
                return machine
        raise KeyError(f"no grid machine named {name!r}")
