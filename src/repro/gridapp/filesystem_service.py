"""The File System Service (§4.1).

Directories are the WS-Resources; each has "a single Resource Property
that provides the actual path to the directory".  Read/Write/List work
in the directory named by the invocation EPR.  Upload is the one-way
staging operation: the ES sends a list of {EPR, filename, jobname}
tuples; the FSS pulls each file — over WSE soap.tcp from the client's
machine, over SOAP/HTTP from another FSS, or with a local filesystem
copy when the source directory is on its own machine — then sends a
one-way "upload complete" notification back so the job may start.
"""

from __future__ import annotations

from typing import Dict, List

from repro.gridapp import tracing
from repro.net import Uri
from repro.osim.filesystem import FileContent, FsError
from repro.soap import SoapFault
from repro.wsa import EndpointReference
from repro.wsrf.attributes import (
    Resource,
    ResourceProperty,
    ServiceSkeleton,
    WebMethod,
    WSRFPortType,
)
from repro.wsrf.basefaults import BaseFault
from repro.wsrf.lifetime import (
    ImmediateResourceTerminationPortType,
    ScheduledResourceTerminationPortType,
)
from repro.wsrf.porttypes import (
    GetMultipleResourcePropertiesPortType,
    GetResourcePropertyPortType,
    QueryResourcePropertiesPortType,
)
from repro.wsrf.tooling import RESOURCE_ID
from repro.xmlx import NS, QName

UVA = NS.UVACG

#: root under which the FSS creates its working directories
GRID_ROOT = "c:/uvacg"


class FileAccessFault(BaseFault):
    FAULT_QNAME = QName(UVA, "FileAccessFault")


# -- file content on the wire --------------------------------------------------------


def content_to_wire(content: FileContent) -> Dict:
    """Encode file content for a SOAP response.

    Real bytes ride inside the envelope (base64-typed, so the simulated
    wire charges their true cost); synthetic bulk content travels as a
    descriptor, and the *caller* charges the bulk bytes via
    ``Network.bulk_transfer`` (see :func:`fetch_remote_file`).
    """
    if content.is_synthetic:
        return {"kind": "synthetic", "size": content.size, "digest": content.digest}
    return {"kind": "data", "data": content.to_bytes()}


def wire_to_content(data: Dict) -> FileContent:
    kind = data.get("kind")
    if kind == "data":
        return FileContent.from_bytes(data["data"])
    if kind == "synthetic":
        return FileContent.synthetic(int(data["size"]))
    raise SoapFault("soap:Client", f"unknown file wire kind {kind!r}")


def fetch_remote_file(client, network, my_host: str, source_epr: EndpointReference,
                      filename: str, category: str):
    """Coroutine: pull one file from any Read-speaking endpoint.

    Works against a remote FSS directory resource (http) and against the
    client's lightweight WSE TCP file server (soap.tcp) — both expose
    the same ``Read(filename)`` operation.  Synthetic descriptors are
    followed by an explicit bulk transfer so big files cost real wire
    time without being materialized.
    """
    result = yield from client.call(
        source_epr, UVA, "Read", {"filename": filename}, category=category
    )
    content = wire_to_content(result)
    if content.is_synthetic:
        uri = Uri.parse(source_epr.address)
        yield from network.bulk_transfer(
            uri.host, my_host, uri.scheme, content.size, category=category
        )
    return content


@WSRFPortType(
    GetResourcePropertyPortType,
    GetMultipleResourcePropertiesPortType,
    QueryResourcePropertiesPortType,
    ImmediateResourceTerminationPortType,
    ScheduledResourceTerminationPortType,
)
class FileSystemService(ServiceSkeleton):
    """WS-Resources are directories on this machine."""

    SERVICE_NS = UVA

    dir_path = Resource(default="")

    @ResourceProperty
    @property
    def Path(self) -> str:
        """The actual path of the directory this WS-Resource represents."""
        return self.dir_path

    # -- factory ---------------------------------------------------------------------

    @WebMethod(requires_resource=False)
    def CreateDirectory(self) -> EndpointReference:
        """Make a fresh working directory and return its WS-Resource EPR."""
        root = getattr(self.machine, "GRID_ROOT", GRID_ROOT)
        path = self.machine.fs.create_unique_dir(root, prefix="wsr")
        rid = self.create_resource(dir_path=path)
        return self.epr_for(rid)

    # -- directory operations ----------------------------------------------------------

    @WebMethod
    def Read(self, filename: str) -> Dict:
        """Return the named file's content from this directory."""
        try:
            content = self.machine.fs.read_file(f"{self.dir_path}/{filename}")
        except FsError as exc:
            raise FileAccessFault(description=str(exc), timestamp=self.env.now)
        return content_to_wire(content)

    @WebMethod
    def Write(self, filename: str, data: bytes) -> int:
        """Create a file with the given name in this directory."""
        try:
            self.machine.fs.write_file(f"{self.dir_path}/{filename}", data)
        except FsError as exc:
            raise FileAccessFault(description=str(exc), timestamp=self.env.now)
        return len(data)

    @WebMethod
    def WriteSynthetic(self, filename: str, size: int) -> int:
        """Create a synthetic bulk file (benchmark payloads)."""
        try:
            self.machine.fs.write_file(
                f"{self.dir_path}/{filename}", FileContent.synthetic(size)
            )
        except FsError as exc:
            raise FileAccessFault(description=str(exc), timestamp=self.env.now)
        return size

    @WebMethod
    def List(self) -> List[str]:
        """The contents of the directory represented by the invocation EPR."""
        try:
            return self.machine.fs.listdir(self.dir_path)
        except FsError as exc:
            raise FileAccessFault(description=str(exc), timestamp=self.env.now)

    def wsrf_on_destroy(self) -> None:
        """Destroying a directory WS-Resource removes its files too."""
        if self.dir_path and self.machine.fs.is_dir(self.dir_path):
            self.machine.fs.remove_tree(self.dir_path)

    # -- staging -----------------------------------------------------------------------

    @WebMethod(one_way=True)
    def Upload(self, files: List[Dict], notify_epr: EndpointReference, token: str):
        """One-way: pull the listed files into this directory, then notify.

        ``files`` entries are the paper's tuples: ``{"source_epr": EPR,
        "filename": name-at-source, "jobname": name-for-the-job}``.
        """
        machine = self.machine
        for item in files:
            source: EndpointReference = item["source_epr"]
            filename = item["filename"]
            jobname = item["jobname"]
            uri = Uri.parse(source.address)
            local_fss = (
                uri.scheme == "http"
                and uri.host == machine.name
                and uri.path.strip("/") == self.wsrf.wrapper.path
            )
            if local_fss:
                # "If the file happens to already be on the FSS's machine,
                # the FSS simply moves the file within the portion of the
                # file system it controls" — a copy here, since other jobs
                # may also consume the source file (documented deviation).
                src_rid = source.get(RESOURCE_ID)
                src_state = self.wsrf.wrapper.store.load(
                    self.wsrf.wrapper.service_name, src_rid
                )
                src_dir = src_state[QName(UVA, "dir_path")]
                content = machine.fs.read_file(f"{src_dir}/{filename}")
                tracing.record(machine, 6, f"FSS@{machine.name}",
                               f"local copy {filename} -> {jobname}")
            else:
                step = 5 if uri.scheme == "soap.tcp" else 6
                category = "file-tcp" if uri.scheme == "soap.tcp" else "file-http"
                tracing.record(machine, step, f"FSS@{machine.name}",
                               f"fetch {filename} from {source.address}")
                content = yield from fetch_remote_file(
                    self.client, machine.network, machine.name, source,
                    filename, category,
                )
            machine.fs.write_file(f"{self.dir_path}/{jobname}", content)
        # "When the upload is complete, the FSS will send another one-way
        # message (which we call a notification) back to the Execution
        # service indicating that the job may start."
        tracing.record(machine, 7, f"FSS@{machine.name}", f"upload complete {token}")
        yield from self.client.call(
            notify_epr, UVA, "UploadComplete", {"token": token},
            category="upload-complete", one_way=True,
        )
