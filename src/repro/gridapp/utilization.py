"""The Processor Utilization Windows service (§4.4).

"Each machine in the system runs the Processor Utilization Windows
service.  This service asynchronously notifies the NIS whenever the
utilization of the machine's processors changes by more than a
configurable amount."  Here: a sampling loop that pushes one-way
ReportUtilization messages when the delta since the last report exceeds
``threshold`` (the D-7 benchmark sweeps this knob against a periodic-
push baseline).
"""

from __future__ import annotations

from typing import Optional

from repro.osim.winservice import WindowsService
from repro.wsa import EndpointReference
from repro.wsrf.client import WsrfClient
from repro.xmlx import NS

SG = NS.WSRF_SG


class ProcessorUtilizationService(WindowsService):
    service_name = "Processor Utilization"

    def __init__(
        self,
        machine,
        nis_epr: EndpointReference,
        threshold: float = 0.10,
        period: float = 1.0,
        always_report: bool = False,
    ) -> None:
        super().__init__(machine)
        self.nis_epr = nis_epr
        self.threshold = threshold
        self.period = period
        #: baseline mode for D-7: report every sample regardless of delta
        self.always_report = always_report
        self.reports_sent = 0
        self._last_reported: Optional[float] = None
        self._client = WsrfClient(machine.network, machine.name)
        self._proc = None

    def on_start(self) -> None:
        env = self.machine.env

        def sampler(env):
            while self.running:
                utilization = self.machine.utilization()
                delta = (
                    None
                    if self._last_reported is None
                    else abs(utilization - self._last_reported)
                )
                if (
                    self.always_report
                    or delta is None
                    or delta >= self.threshold
                ):
                    self._last_reported = utilization
                    self.reports_sent += 1
                    try:
                        yield from self._client.call(
                            self.nis_epr,
                            SG,
                            "ReportUtilization",
                            {
                                "machine_name": self.machine.name,
                                "utilization": utilization,
                            },
                            category="utilization",
                            one_way=True,
                        )
                    except Exception:
                        # NIS unreachable (partition, central down): drop
                        # the report and retry next period; the catalog
                        # simply goes stale, which is the D-7 trade-off.
                        self._last_reported = None
                yield env.timeout(self.period)

        self._proc = env.process(sampler(env))

    def on_stop(self) -> None:
        # The loop checks self.running each period and winds down.
        self._proc = None
