"""The scientist's client tooling (§4.6).

"First, the scientist uses a GUI tool to assemble the description of
their job set" — here a builder API.  "The tool starts a TCP-based
server thread that will respond to requests for any input files that
need to come from the scientist's local file system" — the
:class:`ClientFileServer`, speaking SOAP over the simulated WSE TCP
transport.  "Finally, the client program starts one of WSRF.NET's
light-weight notification receivers" — a
:class:`~repro.wsn.consumer.NotificationListener`.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.gridapp import tracing
from repro.gridapp.filesystem_service import (
    content_to_wire,
    fetch_remote_file,
)
from repro.gridapp.jobset import JobSetSpec
from repro.net import Network
from repro.osim.filesystem import FileContent, FsError, SimFileSystem
from repro.soap import SoapEnvelope, SoapFault, from_typed_element, to_typed_element
from repro.wsa import AddressingHeaders, EndpointReference
from repro.wsn import NotificationListener
from repro.wsrf.client import WsrfClient
from repro.wssec import Certificate, UsernameToken, build_security_header
from repro.wssec.tokens import x509_token_element
from repro.xmlx import NS, Element, QName

UVA = NS.UVACG

FILE_SERVER_PORT = 9000
LISTENER_PORT = 7000


def parse_job_event_safe(payload: Element) -> Dict:
    """parse_job_event, tolerating non-job payloads (returns {})."""
    from repro.gridapp.execution_service import parse_job_event

    try:
        event = parse_job_event(payload)
    except Exception:
        return {}
    return event if event.get("job_name") else {}


class ClientFileServer:
    """The client's lightweight WSE TCP file server.

    Serves ``Read(filename)`` requests from the scientist's local file
    system, speaking the same operation the FSS exposes, so the FSS can
    pull ``local://`` inputs without caring who is on the other end.
    """

    def __init__(self, network: Network, host_name: str, fs: SimFileSystem) -> None:
        self.network = network
        self.env = network.env
        self.host_name = host_name
        self.fs = fs
        self.reads_served = 0
        network.host(host_name).bind(FILE_SERVER_PORT, self)

    @property
    def epr(self) -> EndpointReference:
        return EndpointReference(
            f"soap.tcp://{self.host_name}:{FILE_SERVER_PORT}/files"
        )

    def handle(self, payload: str, ctx):
        prof = getattr(self.network, "prof", None)
        codec = getattr(self.network, "codec", None)
        if prof is None:
            envelope = SoapEnvelope.deserialize(payload, codec)
        else:
            with prof.region("soap.parse"):
                envelope = SoapEnvelope.deserialize(payload, codec)
        body = envelope.body
        if body.tag != QName(UVA, "Read"):
            fault = SoapFault("soap:Client", "file server only supports Read")
            return self._respond(envelope, fault.to_element())
        filename_el = body.find(QName(UVA, "filename"))
        if filename_el is None:
            fault = SoapFault("soap:Client", "Read lacks a filename")
            return self._respond(envelope, fault.to_element())
        filename = from_typed_element(filename_el)
        tracing.record(self.network, 5, f"ClientFS@{self.host_name}",
                       f"serving {filename}")
        try:
            content = self.fs.read_file(filename)
        except FsError as exc:
            return self._respond(
                envelope, SoapFault("soap:Client", str(exc)).to_element()
            )
        self.reads_served += 1
        response = Element(QName(UVA, "ReadResponse"))
        response.append(
            to_typed_element(QName(UVA, "ReadResult"), content_to_wire(content))
        )
        yield self.env.timeout(0)
        return self._respond(envelope, response)

    def _respond(self, request: SoapEnvelope, body: Element) -> str:
        headers = AddressingHeaders(
            to_epr=request.addressing.reply_to
            or EndpointReference(f"http://{self.host_name}/anonymous"),
            action=request.action + "Response",
            relates_to=request.addressing.message_id,
        )
        response = SoapEnvelope(headers, body)
        prof = getattr(self.network, "prof", None)
        codec = getattr(self.network, "codec", None)
        if prof is None:
            return response.serialize(codec)
        with prof.region("soap.encode"):
            return response.serialize(codec)

    def close(self) -> None:
        self.network.host(self.host_name).unbind(FILE_SERVER_PORT)


class GridClient:
    """Everything the scientist's machine runs."""

    def __init__(
        self,
        network: Network,
        host_name: str,
        username: str,
        password: str,
        scheduler_epr: EndpointReference,
        scheduler_cert: Certificate,
        user_keys=None,
        user_cert=None,
        retry_policy=None,
    ) -> None:
        self.network = network
        self.env = network.env
        self.host_name = host_name
        self.credentials = UsernameToken(username, password)
        self.scheduler_epr = scheduler_epr
        self.scheduler_cert = scheduler_cert
        #: optional grid identity (GSI): enables dispatch to GT4 machines
        self.user_keys = user_keys
        self.user_cert = user_cert
        if host_name not in network.hosts:
            network.add_host(host_name)
        #: the scientist's local file system (not part of the grid)
        self.fs = SimFileSystem(host_name)
        self.fs.mkdir("c:/data")
        self.file_server = ClientFileServer(network, host_name, self.fs)
        self.listener = NotificationListener(network, host_name, port=LISTENER_PORT)
        self.soap = WsrfClient(network, host_name, retry_policy=retry_policy)
        #: completion events by topic, fed by the listener
        self._completions: Dict[str, object] = {}
        self.listener.on_topic("**", self._on_note)

    # -- local files ------------------------------------------------------------------

    def add_local_file(self, path: str, content) -> str:
        """Put a file on the scientist's machine; returns a local:// URL."""
        if isinstance(content, bytes):
            content = FileContent.from_bytes(content)
        self.fs.write_file(path, content)
        return f"local://{path}"

    def add_program_binary(self, program, path: Optional[str] = None) -> str:
        """Stage a registered Program's binary locally (the executable)."""
        path = path or f"c:/data/{program.name}.exe"
        return self.add_local_file(path, program.binary_content())

    # -- job set construction -------------------------------------------------------------

    def new_job_set(self) -> JobSetSpec:
        return JobSetSpec()

    # -- submission and monitoring ----------------------------------------------------------

    def submit(self, spec: JobSetSpec, scheduler_epr=None, scheduler_cert=None,
               origin: str = ""):
        """Coroutine: submit the job set; returns (jobset_epr, topic).

        *scheduler_epr*/*scheduler_cert* override the default Scheduler
        (federation routing submits to a zone's Scheduler); *origin*,
        when non-empty, names the zone a stolen job set came from.
        """
        spec.validate()
        scheduler_epr = scheduler_epr or self.scheduler_epr
        scheduler_cert = scheduler_cert or self.scheduler_cert
        tracing.record(self.network, 1, f"Client@{self.host_name}",
                       f"submit {len(spec.jobs)} jobs")
        header = build_security_header(self.credentials, scheduler_cert)
        if self.user_keys is not None and self.user_cert is not None:
            # Delegate a signed identity token alongside the encrypted
            # username/password, for dispatch to GT4 machines.
            header.append(
                x509_token_element(self.user_keys, self.user_cert, self.env.now)
            )
        args = {
            "jobs": spec.to_wire(),
            "listener_epr": self.listener.epr,
            "fileserver_epr": self.file_server.epr,
        }
        if origin:
            # Only on the wire when set, so default submissions keep
            # their exact historical byte shape.
            args["origin"] = origin
        result = yield from self.soap.call(
            scheduler_epr,
            UVA,
            "SubmitJobSet",
            args,
            extra_headers=[header],
            category="submit",
        )
        return result["jobset"], result["topic"]

    def _on_note(self, note) -> None:
        parts = note.topic.split("/")
        if len(parts) == 2 and parts[1] in ("completed", "failed", "cancelled"):
            event = self._completions.get(parts[0])
            if event is not None and not event.triggered:
                event.succeed(parts[1])

    def wait_for_completion(self, topic: str):
        """Coroutine: block until the job set announces a terminal state."""
        for note in self.listener.received:
            parts = note.topic.split("/")
            if parts[0] == topic and len(parts) == 2 and parts[1] in (
                "completed", "failed", "cancelled",
            ):
                return parts[1]
        event = self._completions.get(topic)
        if event is None:
            event = self.env.event()
            self._completions[topic] = event
        outcome = yield event
        return outcome

    def run_job_set(self, spec: JobSetSpec):
        """Coroutine: submit and wait; returns (outcome, jobset_epr, topic)."""
        jobset_epr, topic = yield from self.submit(spec)
        outcome = yield from self.wait_for_completion(topic)
        return outcome, jobset_epr, topic

    def poll_until_complete(self, jobset_epr, period: float = 2.0,
                            give_up_after: Optional[float] = None):
        """Coroutine: poll the job set's Status RP until it is terminal.

        The listener path rides one-way notifications, which a lossy
        network may drop outright; polling the Scheduler is
        request/response, so a retry policy on this client makes it
        converge whenever the Scheduler is reachable at all.  Returns
        the outcome lowercased ("completed"/"failed"), or "timeout" if
        ``give_up_after`` simulated seconds pass first.
        """
        deadline = (
            None if give_up_after is None else self.env.now + give_up_after
        )
        while True:
            status = yield from self.soap.get_resource_property(
                jobset_epr, QName(UVA, "Status"), category="poll"
            )
            if status in ("Completed", "Failed"):
                return status.lower()
            if deadline is not None and self.env.now >= deadline:
                return "timeout"
            yield self.env.timeout(period)

    def run_job_set_polled(self, spec: JobSetSpec, period: float = 2.0,
                           give_up_after: Optional[float] = None):
        """Coroutine: like run_job_set but monitored by polling (FT path)."""
        jobset_epr, topic = yield from self.submit(spec)
        outcome = yield from self.poll_until_complete(
            jobset_epr, period=period, give_up_after=give_up_after
        )
        return outcome, jobset_epr, topic

    def progress_messages(self, topic: str) -> List[str]:
        """The §4.6 GUI's progress display: this job set's event stream."""
        return [
            note.topic
            for note in self.listener.received
            if note.topic.split("/")[0] == topic
        ]

    # -- durable client-side state (the §5 durability question) --------------------

    def export_state(self) -> bytes:
        """Serialize every EPR this client holds, as an XML document.

        §5 asks "how durable does that client-side information need to
        be (e.g., should it survive client shutdown?)".  This makes the
        answer an API: persist the returned bytes, restart, and
        :meth:`import_state` restores the EPR inventory without any
        network traffic (rediscovery via the Scheduler remains the
        fallback when even this is lost — benchmark D-8).
        """
        root = Element(QName(UVA, "ClientState"))
        for note in self.listener.received:
            event = parse_job_event_safe(note.payload)
            if not event:
                continue
            topic_root = note.topic.split("/")[0]
            entry = root.subelement(QName(UVA, "Held"))
            entry.set("topic", topic_root)
            entry.set("job", event.get("job_name", ""))
            for key, tag in (("job_epr", "JobEPR"), ("dir_epr", "DirEPR")):
                if key in event:
                    entry.append(event[key].to_xml(QName(UVA, tag)))
        from repro.xmlx import to_string

        return to_string(root).encode("utf-8")

    def import_state(self, blob: bytes) -> Dict[str, Dict[str, Dict[str, EndpointReference]]]:
        """Inverse of :meth:`export_state`.

        Returns ``{topic: {job: {"job": EPR, "dir": EPR}}}`` so a
        restarted client can resume polling jobs and fetching outputs.
        """
        from repro.xmlx import parse

        root = parse(blob.decode("utf-8"))
        out: Dict[str, Dict[str, Dict[str, EndpointReference]]] = {}
        for entry in root.findall(QName(UVA, "Held")):
            topic = entry.get("topic") or ""
            job = entry.get("job") or ""
            slot = out.setdefault(topic, {}).setdefault(job, {})
            job_el = entry.find(QName(UVA, "JobEPR"))
            dir_el = entry.find(QName(UVA, "DirEPR"))
            if job_el is not None:
                slot["job"] = EndpointReference.from_xml(job_el)
            if dir_el is not None:
                slot["dir"] = EndpointReference.from_xml(dir_el)
        return out

    # -- results -----------------------------------------------------------------------------

    def fetch_output(self, dir_epr: EndpointReference, filename: str):
        """Coroutine: retrieve a file a job produced, via its dir EPR.

        "The client can use this EPR to retrieve files generated by the
        job or monitor progress by watching for changes in that
        directory."
        """
        content = yield from fetch_remote_file(
            self.soap, self.network, self.host_name, dir_epr, filename,
            category="result-fetch",
        )
        return content

    def list_output_dir(self, dir_epr: EndpointReference):
        """Coroutine: List() on a job's working directory."""
        names = yield from self.soap.call(dir_epr, UVA, "List", category="result-fetch")
        return names
