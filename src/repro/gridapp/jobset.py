"""Job and job-set descriptions (§4: "tuples of {executable, input
files, output files}").

Input URIs follow §4.6:

- ``local://c:\\file1`` — from the scientist's local file system, served
  by the client's WSE TCP file server;
- ``job1://output2`` — the file ``output2`` produced by the job named
  ``job1`` ("from wherever job1 ends up executing"): a dependency edge
  the Scheduler resolves once it knows where job1 ran;
- ``http://host:80/FSS`` + filename — a directory on some grid machine's
  File System Service.

The executable is just another input file (the paper uploads it with the
inputs), conventionally named ``job.exe`` in the working directory.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.net import Uri


@dataclass(frozen=True)
class FileRef:
    """One input file: where it comes from and what the job calls it."""

    source_url: str  # local://…, jobN://…, or http://host/Service|filename
    jobname: str  # the name the job expects in its working directory

    RESERVED_SCHEMES = ("local", "http", "soap.tcp")

    def scheme(self) -> str:
        return Uri.parse(self.source_url).scheme

    def depends_on(self, name_map: Optional[Dict[str, str]] = None) -> Optional[str]:
        """The producing job's name for ``<jobname>://`` references.

        URI schemes are case-insensitive (parsing lowercases them), so
        references are matched against the job set's names via
        *name_map* (lowercased name -> actual name).  Without a map, any
        non-reserved scheme is assumed to be a job reference.
        """
        scheme = self.scheme()
        if scheme in self.RESERVED_SCHEMES:
            return None
        if name_map is None:
            return scheme
        return name_map.get(scheme)

    def to_wire(self) -> Dict[str, Any]:
        return {"source_url": self.source_url, "jobname": self.jobname}

    @classmethod
    def from_wire(cls, data: Dict[str, Any]) -> "FileRef":
        return cls(source_url=data["source_url"], jobname=data["jobname"])


@dataclass
class JobSpec:
    """One job in a job set."""

    name: str
    executable: FileRef  # uploaded like any input, run as the binary
    inputs: List[FileRef] = field(default_factory=list)
    outputs: List[str] = field(default_factory=list)  # files the job produces
    args: List[str] = field(default_factory=list)

    def dependencies(self, name_map: Optional[Dict[str, str]] = None) -> List[str]:
        """Names of jobs whose outputs this job consumes."""
        deps = []
        for ref in [self.executable, *self.inputs]:
            dep = ref.depends_on(name_map)
            if dep is not None and dep not in deps:
                deps.append(dep)
        return deps

    def to_wire(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "executable": self.executable.to_wire(),
            "inputs": [ref.to_wire() for ref in self.inputs],
            "outputs": list(self.outputs),
            "args": list(self.args),
        }

    @classmethod
    def from_wire(cls, data: Dict[str, Any]) -> "JobSpec":
        return cls(
            name=data["name"],
            executable=FileRef.from_wire(data["executable"]),
            inputs=[FileRef.from_wire(item) for item in data["inputs"]],
            outputs=list(data["outputs"]),
            args=list(data["args"]),
        )


class JobSetValidationError(ValueError):
    """Duplicate names, unknown dependencies, or dependency cycles."""


@dataclass
class JobSetSpec:
    """A collection of jobs "in which the output of one is used as input
    to the next" — a DAG, validated before submission."""

    jobs: List[JobSpec] = field(default_factory=list)

    def add(self, job: JobSpec) -> JobSpec:
        self.jobs.append(job)
        return job

    def job(self, name: str) -> JobSpec:
        for job in self.jobs:
            if job.name == name:
                return job
        raise KeyError(f"no job named {name!r}")

    def name_map(self) -> Dict[str, str]:
        """Lowercased job name -> actual name (URI schemes lowercase)."""
        return {job.name.lower(): job.name for job in self.jobs}

    def validate(self) -> None:
        names = [job.name for job in self.jobs]
        if len(set(names)) != len(names):
            raise JobSetValidationError("duplicate job names in job set")
        if not self.jobs:
            raise JobSetValidationError("empty job set")
        lowered = self.name_map()
        if len(lowered) != len(names):
            raise JobSetValidationError(
                "job names must be unique case-insensitively (they become "
                "URI schemes in jobname:// references)"
            )
        for name in lowered:
            if name in FileRef.RESERVED_SCHEMES:
                raise JobSetValidationError(
                    f"job name {lowered[name]!r} collides with a reserved URI scheme"
                )
        for job in self.jobs:
            for ref in [job.executable, *job.inputs]:
                scheme = ref.scheme()
                if scheme in FileRef.RESERVED_SCHEMES:
                    continue
                if scheme not in lowered:
                    raise JobSetValidationError(
                        f"job {job.name!r} references {ref.source_url!r} but no "
                        f"job in the set is named {scheme!r}"
                    )
            for dep in job.dependencies(lowered):
                if dep == job.name:
                    raise JobSetValidationError(
                        f"job {job.name!r} depends on itself"
                    )
        self.topological_order()  # raises on cycles

    def topological_order(self) -> List[str]:
        """Kahn's algorithm; raises :class:`JobSetValidationError` on cycles."""
        lowered = self.name_map()
        deps = {job.name: set(job.dependencies(lowered)) for job in self.jobs}
        ready = sorted(name for name, dd in deps.items() if not dd)
        order: List[str] = []
        remaining = {name: set(dd) for name, dd in deps.items() if dd}
        while ready:
            name = ready.pop(0)
            order.append(name)
            newly = []
            for other, dd in list(remaining.items()):
                dd.discard(name)
                if not dd:
                    newly.append(other)
                    del remaining[other]
            ready.extend(sorted(newly))
        if remaining:
            raise JobSetValidationError(
                f"dependency cycle among jobs {sorted(remaining)}"
            )
        return order

    def to_wire(self) -> List[Dict[str, Any]]:
        return [job.to_wire() for job in self.jobs]

    @classmethod
    def from_wire(cls, data: List[Dict[str, Any]]) -> "JobSetSpec":
        return cls(jobs=[JobSpec.from_wire(item) for item in data])
