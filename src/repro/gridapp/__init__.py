"""The UVa Campus Grid remote job execution testbed (paper §4).

This package is the application the paper builds: the five web-service
types of Fig. 3 plus the two Windows services, the client tooling and a
:class:`Testbed` assembler that stands the whole grid up on simulated
machines.

===============================  ==============================================
paper component                  module
===============================  ==============================================
File System Service (§4.1)       :mod:`repro.gridapp.filesystem_service`
Execution Service (§4.2)         :mod:`repro.gridapp.execution_service`
Notification Broker (§4.3)       :mod:`repro.wsn.broker` (deployed here)
Node Info Service (§4.4)         :mod:`repro.gridapp.node_info`
Scheduler Service (§4.5)         :mod:`repro.gridapp.scheduler`
ProcSpawn Windows service        :mod:`repro.osim.procspawn`
Processor Utilization service    :mod:`repro.gridapp.utilization`
client GUI tool + TCP server +   :mod:`repro.gridapp.client`
  notification receiver (§4.6)
job set descriptions             :mod:`repro.gridapp.jobset`
testbed assembly                 :mod:`repro.gridapp.testbed`
Fig. 3 step tracing              :mod:`repro.gridapp.tracing`
===============================  ==============================================
"""

from repro.perf import PerfConfig
from repro.gridapp.jobset import FileRef, JobSetSpec, JobSpec
from repro.gridapp.tracing import EventTrace, TraceEvent
from repro.gridapp.filesystem_service import FileSystemService
from repro.gridapp.execution_service import ExecutionService
from repro.gridapp.node_info import NodeInfoService, processor_content
from repro.gridapp.scheduler import FaultToleranceConfig, SchedulerService
from repro.gridapp.utilization import ProcessorUtilizationService
from repro.gridapp.client import GridClient
from repro.gridapp.aggregator import AggregatorCatalogService
from repro.gridapp.federation import (
    FederatedGridClient,
    FederationConfig,
    HashRing,
)
from repro.gridapp.report import JobSetReport, build_report, render_gantt, render_summary
from repro.gridapp.testbed import Testbed

__all__ = [
    "AggregatorCatalogService",
    "EventTrace",
    "ExecutionService",
    "FaultToleranceConfig",
    "FederatedGridClient",
    "FederationConfig",
    "FileRef",
    "FileSystemService",
    "GridClient",
    "HashRing",
    "JobSetReport",
    "build_report",
    "render_gantt",
    "render_summary",
    "JobSetSpec",
    "JobSpec",
    "NodeInfoService",
    "PerfConfig",
    "ProcessorUtilizationService",
    "SchedulerService",
    "Testbed",
    "TraceEvent",
    "processor_content",
]
