"""The Node Info Service (§4.4).

"The Node Info service (NIS) is a service group (as defined by
WS-ServiceGroups) whose members represent the processors available for
scheduling."  It *is* our generic :class:`ServiceGroupService` with two
additions: ``ReportUtilization`` (the one-way message each machine's
Processor Utilization Windows service sends when load changes by more
than the configured threshold) and ``GetProcessors`` (the catalog the
Scheduler polls in step 2).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.wsa import EndpointReference
from repro.wsrf.servicegroup import ServiceGroupService
from repro.wsrf.attributes import WebMethod
from repro.xmlx import NS, Element, QName

UVA = NS.UVACG
SG = NS.WSRF_SG

PROCESSOR_INFO = QName(UVA, "ProcessorInfo")


def processor_content(
    name: str,
    cpu_speed: float,
    ram_mb: int,
    utilization: float,
    updated_at: float,
) -> Element:
    """The Content document describing one processor."""
    el = Element(PROCESSOR_INFO)
    el.subelement(QName(UVA, "Name"), text=name)
    el.subelement(QName(UVA, "CpuSpeed"), text=repr(float(cpu_speed)))
    el.subelement(QName(UVA, "RamMb"), text=str(int(ram_mb)))
    el.subelement(QName(UVA, "Utilization"), text=repr(float(utilization)))
    el.subelement(QName(UVA, "UpdatedAt"), text=repr(float(updated_at)))
    return el


def parse_processor_content(el: Element) -> Dict:
    return {
        "name": el.child_text(QName(UVA, "Name"), ""),
        "cpu_speed": float(el.child_text(QName(UVA, "CpuSpeed"), "1.0")),
        "ram_mb": int(el.child_text(QName(UVA, "RamMb"), "0")),
        "utilization": float(el.child_text(QName(UVA, "Utilization"), "0.0")),
        "updated_at": float(el.child_text(QName(UVA, "UpdatedAt"), "0.0")),
    }


class NodeInfoService(ServiceGroupService):
    """ServiceGroup + the processor catalog operations."""

    # Inherits SERVICE_NS = NS.WSRF_SG, so Add/CreateGroup keep their
    # spec QNames; ReportUtilization/GetProcessors live there too.

    @WebMethod(requires_resource=False, one_way=True)
    def ReportUtilization(self, machine_name: str, utilization: float) -> int:
        """One-way from a machine's Processor Utilization service.

        A service-level operation, so the dispatch pipeline holds no
        resource lock for us — but this is a load-modify-save on the
        machine's entry row, and one-way sends carry no reply ordering:
        a redelivered or delayed report can still be in flight when the
        next one lands.  Serialize on the entry's own resource lock,
        exactly as a ``requires_resource`` dispatch would be.
        """
        wrapper = self.wsrf.wrapper
        entry_id = self._entry_for(machine_name)
        if entry_id is None:
            return 0
        lock = wrapper.resource_lock(entry_id)
        yield lock.acquire()
        try:
            state = wrapper.store.load(wrapper.service_name, entry_id)
            content_key = QName(SG, "content")
            content = state.get(content_key)
            if content is None:
                return 0
            info = parse_processor_content(content)
            state[content_key] = processor_content(
                info["name"], info["cpu_speed"], info["ram_mb"],
                utilization, self.env.now,
            )
            wrapper.store.save(wrapper.service_name, entry_id, state)
        finally:
            lock.release()
        return 1

    @WebMethod(requires_resource=False)
    def GetProcessors(self) -> List[Dict]:
        """The Scheduler's step-2 poll: every known processor's state."""
        wrapper = self.wsrf.wrapper
        group_id = getattr(wrapper, "nis_group_rid", None)
        if group_id is None:
            return []
        group_state = wrapper.store.load(wrapper.service_name, group_id)
        out: List[Dict] = []
        for entry_id in group_state.get(QName(SG, "entry_ids")) or []:
            try:
                state = wrapper.store.load(wrapper.service_name, entry_id)
            except KeyError:
                continue
            content = state.get(QName(SG, "content"))
            if content is not None:
                out.append(parse_processor_content(content))
        return out

    def _entry_for(self, machine_name: str) -> Optional[str]:
        """Entry resource id for a machine, via a wrapper-side index."""
        wrapper = self.wsrf.wrapper
        index = getattr(wrapper, "_processor_index", None)
        if index is None:
            index = {}
            wrapper._processor_index = index
        entry_id = index.get(machine_name)
        if entry_id is not None and wrapper.store.exists(wrapper.service_name, entry_id):
            return entry_id
        # (Re)build the index from the group.
        index.clear()
        group_id = getattr(wrapper, "nis_group_rid", None)
        if group_id is None:
            return None
        group_state = wrapper.store.load(wrapper.service_name, group_id)
        for eid in group_state.get(QName(SG, "entry_ids")) or []:
            try:
                state = wrapper.store.load(wrapper.service_name, eid)
            except KeyError:
                continue
            content = state.get(QName(SG, "content"))
            if content is not None:
                index[parse_processor_content(content)["name"]] = eid
        return index.get(machine_name)


def setup_node_info(wrapper, machines) -> str:
    """Create the NIS group and register every machine's processor.

    Runs at testbed assembly (no network traffic — the administrator
    seeds the catalog); thereafter the Processor Utilization services
    keep it fresh over the wire.  Returns the group resource id.
    """
    group_rid = wrapper.create_resource_from_fields(
        {"kind": "group", "entry_ids": [], "content_rule": PROCESSOR_INFO.clark()}
    )
    wrapper.nis_group_rid = group_rid
    entry_ids = []
    for machine in machines:
        content = processor_content(
            machine.name,
            machine.params.cpu_speed,
            machine.params.ram_mb,
            machine.utilization(),
            wrapper.env.now,
        )
        entry_rid = wrapper.create_resource_from_fields(
            {
                "kind": "entry",
                "member_epr": EndpointReference(machine.service_url("ExecService")),
                "content": content,
                "group_id": group_rid,
            }
        )
        entry_ids.append(entry_rid)
    state = wrapper.store.load(wrapper.service_name, group_rid)
    state[QName(SG, "entry_ids")] = entry_ids
    wrapper.store.save(wrapper.service_name, group_rid, state)
    wrapper._pending_db_ops = 0  # assembly-time writes are not billed
    return group_rid
