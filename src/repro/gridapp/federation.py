"""The federation layer: zones, consistent-hash sharding, and the
federation-aware submission proxy (docs/federation.md).

The paper's Fig. 3 topology is one site: a single Scheduler, NIS and
broker.  A federated testbed (``Testbed(federation=FederationConfig())``)
stands up several *zones* — each a full central machine with its own
Scheduler, NIS ServiceGroup and Notification Broker — plus one root
machine carrying the cross-zone aggregator catalog and the root broker.
Job sets are sharded across zones by consistent hash on a deterministic
job-set id; the :class:`FederatedGridClient` routes ``SubmitJobSet`` to
the owning zone, fails over to ring successors when the owner is
unreachable at submission, and (with ``work_stealing``) re-submits a job
set to the next live zone when the owning Scheduler stops answering
Status polls mid-run.

Everything here is deterministic: the ring hashes with SHA-256 (never
Python's salted ``hash()``), so a mapping computed today is the mapping
every run and every process computes.
"""

from __future__ import annotations

import bisect
import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.net import DeliveryError
from repro.wsa import EndpointReference
from repro.xmlx import NS, QName

UVA = NS.UVACG

_STATUS_RP = QName(UVA, "Status")


@dataclass(frozen=True)
class FederationConfig:
    """Opt-in federation topology knobs (``Testbed(federation=...)``).

    ``None`` (the Testbed default) keeps the paper's single-site
    topology and every existing trace/export byte-identical.
    """

    #: number of scheduler zones (each gets a central machine)
    n_zones: int = 2
    #: virtual nodes per zone on the consistent-hash ring
    vnodes: int = 64
    #: aggregator catalog entries older than this are re-fetched from
    #: the zone NIS on read; unreachable zones are served stale instead
    staleness_s: float = 5.0
    #: client-driven work stealing: re-submit a job set to the next
    #: live zone when the owning Scheduler stops answering polls
    work_stealing: bool = True
    #: a zone counts as *full* when every local machine already has
    #: this many of the scheduler's jobs in flight; further dispatches
    #: consult the cross-zone aggregator catalog
    max_queued_per_machine: int = 4

    def __post_init__(self) -> None:
        if self.n_zones < 1:
            raise ValueError("a federation needs at least one zone")
        if self.vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        if self.staleness_s < 0:
            raise ValueError("staleness_s must be >= 0")
        if self.max_queued_per_machine < 1:
            raise ValueError("max_queued_per_machine must be >= 1")


class HashRing:
    """Consistent hashing with virtual nodes, SHA-256 based.

    Deterministic and seed-free: the same zone names always produce the
    same ring, in any process (DET001 — no salted ``hash()``, no RNG).
    Adding or removing a zone remaps only the keys that land on that
    zone's arcs (~``1/n`` of the key space), the classic consistent-
    hashing guarantee the property tests in ``tests/test_federation.py``
    pin down.
    """

    def __init__(self, zones: Sequence[str], vnodes: int = 64) -> None:
        if not zones:
            raise ValueError("a hash ring needs at least one zone")
        if len(set(zones)) != len(zones):
            raise ValueError(f"duplicate zone names: {sorted(zones)}")
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.zones: Tuple[str, ...] = tuple(sorted(zones))
        self.vnodes = vnodes
        points: List[Tuple[int, str]] = []
        for zone in self.zones:
            for v in range(vnodes):
                points.append((self._point(f"{zone}#{v}"), zone))
        points.sort()
        self._points = points
        self._hashes = [p[0] for p in points]

    @staticmethod
    def _point(label: str) -> int:
        digest = hashlib.sha256(label.encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big")

    def owner(self, key: str) -> str:
        """The zone owning *key*: first ring point at or after its hash."""
        index = bisect.bisect_left(self._hashes, self._point(key))
        if index == len(self._points):
            index = 0
        return self._points[index][1]

    def preference(self, key: str) -> List[str]:
        """Every zone, ordered by ring walk from *key* (owner first).

        The failover order: when the owner is unreachable the submission
        proxy tries successors in this order, so two clients (or one
        client twice) derive the same order without coordination.
        """
        start = bisect.bisect_left(self._hashes, self._point(key))
        order: List[str] = []
        for i in range(len(self._points)):
            zone = self._points[(start + i) % len(self._points)][1]
            if zone not in order:
                order.append(zone)
                if len(order) == len(self.zones):
                    break
        return order

    def with_zone(self, zone: str) -> "HashRing":
        return HashRing(self.zones + (zone,), vnodes=self.vnodes)

    def without_zone(self, zone: str) -> "HashRing":
        remaining = [z for z in self.zones if z != zone]
        return HashRing(remaining, vnodes=self.vnodes)


@dataclass
class Zone:
    """One federation zone as assembled by the Testbed."""

    name: str
    central: object  # the zone's central Machine
    broker: object  # zone NotificationBroker wrapper
    node_info: object  # zone NIS wrapper
    scheduler: object  # zone Scheduler wrapper
    machines: List[object] = field(default_factory=list)


@dataclass(frozen=True)
class ZoneRoute:
    """What a client needs to submit to one zone's Scheduler."""

    name: str
    scheduler_epr: EndpointReference
    scheduler_cert: object


@dataclass
class Submission:
    """A routed job set: where it lives now and where it may fail over."""

    spec: object
    jobset_epr: EndpointReference
    topic: str
    zone: str
    order: Tuple[str, ...]  # the ring's preference order at submit time


class FederatedGridClient:
    """The federation-aware submission proxy (client side).

    Wraps a plain :class:`~repro.gridapp.client.GridClient` (one host,
    one listener, one file server) with zone routing: job sets shard to
    ``ring.owner(jobset_id)``, submission fails over along the ring's
    preference order, and polling steals a job set to the next live zone
    when the owning Scheduler becomes unreachable.  Stealing re-submits
    the whole set (at-least-once at job-set granularity, like every
    other redelivery in the stack); the adopting Scheduler records the
    origin zone (``jobsets_stolen``) and runs it on its own machines.
    """

    def __init__(
        self,
        client,
        routes: Sequence[ZoneRoute],
        config: Optional[FederationConfig] = None,
    ) -> None:
        self.client = client
        self.env = client.env
        self.config = config or FederationConfig(n_zones=len(routes))
        self.routes: Dict[str, ZoneRoute] = {r.name: r for r in routes}
        if len(self.routes) != len(routes):
            raise ValueError("duplicate zone names in routes")
        self.ring = HashRing(list(self.routes), vnodes=self.config.vnodes)
        #: submissions re-routed because the owning zone was unreachable
        self.submit_failovers = 0
        #: job sets re-submitted to another zone mid-run
        self.steals = 0
        self._seq = 0

    # -- delegation to the underlying client ---------------------------------------

    def new_job_set(self):
        return self.client.new_job_set()

    def add_local_file(self, path, content):
        return self.client.add_local_file(path, content)

    def add_program_binary(self, program, path=None):
        return self.client.add_program_binary(program, path)

    def fetch_output(self, dir_epr, filename):
        return self.client.fetch_output(dir_epr, filename)

    @property
    def listener(self):
        return self.client.listener

    # -- routing -----------------------------------------------------------------------

    def next_jobset_id(self) -> str:
        """Deterministic client-side job-set id (the sharding key)."""
        self._seq += 1
        return f"{self.client.host_name}/jobset-{self._seq:04d}"

    def zone_for(self, jobset_id: str) -> str:
        return self.ring.owner(jobset_id)

    def submit(self, spec) -> "Submission":
        """Coroutine: route the job set to its owning zone.

        Tries the ring's preference order; a zone whose Scheduler never
        answers (``DeliveryError`` after client retries) is skipped and
        counted in ``submit_failovers``.  Raises the last transport
        fault when every zone is unreachable.
        """
        spec.validate()
        order = tuple(self.ring.preference(self.next_jobset_id()))
        return (yield from self._submit_along(spec, order))

    def _submit_along(self, spec, order: Tuple[str, ...], origin: str = ""):
        last_fault = None
        for zone_name in order:
            route = self.routes[zone_name]
            try:
                jobset_epr, topic = yield from self.client.submit(
                    spec,
                    scheduler_epr=route.scheduler_epr,
                    scheduler_cert=route.scheduler_cert,
                    origin=origin,
                )
            except DeliveryError as fault:
                last_fault = fault
                self.submit_failovers += 1
                continue
            return Submission(
                spec=spec, jobset_epr=jobset_epr, topic=topic,
                zone=zone_name, order=order,
            )
        raise last_fault if last_fault is not None else DeliveryError(
            "no zones to submit to"
        )

    # -- monitoring with work stealing ----------------------------------------------

    def poll_until_complete(
        self,
        submission: "Submission",
        period: float = 2.0,
        give_up_after: Optional[float] = None,
    ):
        """Coroutine: poll the owning zone; steal on owner loss.

        Returns ``(outcome, submission)`` — the submission may differ
        from the input when the job set was stolen to another zone.
        """
        deadline = (
            None if give_up_after is None else self.env.now + give_up_after
        )
        while True:
            try:
                status = yield from self.client.soap.get_resource_property(
                    submission.jobset_epr, _STATUS_RP, category="poll"
                )
            except DeliveryError:
                if not self.config.work_stealing:
                    raise
                submission = yield from self._steal(submission)
                continue
            if status in ("Completed", "Failed"):
                return status.lower(), submission
            if deadline is not None and self.env.now >= deadline:
                return "timeout", submission
            yield self.env.timeout(period)

    def _steal(self, submission: "Submission"):
        """Re-submit to the next live zone after the owner went dark.

        The dead zone's partial work is orphaned; the adopting zone runs
        the whole set on its own machines (duplicate execution of jobs
        the dead zone finished is possible and safe — job outputs are
        deterministic and fetched from the adopting zone's directories).
        """
        order = tuple(z for z in submission.order if z != submission.zone)
        if not order:
            raise DeliveryError(
                f"zone {submission.zone!r} unreachable and no zones remain"
            )
        self.steals += 1
        return (
            yield from self._submit_along(
                submission.spec, order, origin=submission.zone
            )
        )

    def run_job_set_polled(
        self,
        spec,
        period: float = 2.0,
        give_up_after: Optional[float] = None,
    ):
        """Coroutine: submit, then poll with stealing until terminal.

        Same return shape as ``GridClient.run_job_set_polled``:
        ``(outcome, jobset_epr, topic)`` — of wherever the job set
        finished.
        """
        submission = yield from self.submit(spec)
        outcome, submission = yield from self.poll_until_complete(
            submission, period=period, give_up_after=give_up_after
        )
        return outcome, submission.jobset_epr, submission.topic
