"""Job-set reporting: turn the notification stream into human output.

The paper's client "displays the messages to keep the user informed of
the job set's progress"; this module is that display, grown up: a
per-job timeline (text Gantt) and a summary table, computed purely from
the WS-Notification events a client received — no privileged access to
server state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.gridapp.execution_service import parse_job_event


@dataclass(frozen=True)
class RecoveryEvent:
    """One Scheduler re-dispatch, from a JobRecovery notification."""

    at: float
    from_machine: str


@dataclass
class JobTimeline:
    name: str
    created_at: Optional[float] = None
    started_at: Optional[float] = None
    exited_at: Optional[float] = None
    exit_code: Optional[int] = None
    machine_hint: str = ""
    recoveries: List[RecoveryEvent] = field(default_factory=list)

    @property
    def staging_s(self) -> Optional[float]:
        if self.created_at is None or self.started_at is None:
            return None
        return self.started_at - self.created_at

    @property
    def running_s(self) -> Optional[float]:
        if self.started_at is None or self.exited_at is None:
            return None
        return self.exited_at - self.started_at

    @property
    def outcome(self) -> str:
        if self.exit_code is None:
            return "running" if self.started_at is not None else "staging"
        return "ok" if self.exit_code == 0 else f"exit={self.exit_code}"


@dataclass
class JobSetReport:
    topic: str
    jobs: Dict[str, JobTimeline] = field(default_factory=dict)
    submitted_at: Optional[float] = None
    finished_at: Optional[float] = None
    outcome: str = "running"

    @property
    def makespan_s(self) -> Optional[float]:
        if self.submitted_at is None or self.finished_at is None:
            return None
        return self.finished_at - self.submitted_at

    @property
    def total_recoveries(self) -> int:
        return sum(len(job.recoveries) for job in self.jobs.values())


def build_report(received, topic: str) -> JobSetReport:
    """Digest a listener's notifications for one job set."""
    report = JobSetReport(topic=topic)
    for note in received:
        parts = note.topic.split("/")
        if parts[0] != topic:
            continue
        if report.submitted_at is None:
            report.submitted_at = note.at
        if len(parts) == 2 and parts[1] in ("completed", "failed", "cancelled"):
            report.finished_at = note.at
            report.outcome = parts[1]
            continue
        if len(parts) == 2 and parts[1] == "recovery":
            # FT layer: <JobRecovery job=... from=...> with a WS-BaseFault
            # detail (see docs/fault_tolerance.md).
            name = note.payload.get("job") or ""
            if name:
                job = report.jobs.setdefault(name, JobTimeline(name))
                job.recoveries.append(
                    RecoveryEvent(
                        at=note.at,
                        from_machine=note.payload.get("from") or "?",
                    )
                )
            continue
        event = parse_job_event(note.payload)
        name = event.get("job_name")
        if not name:
            continue
        job = report.jobs.setdefault(name, JobTimeline(name))
        kind = event.get("kind")
        if kind == "JobCreated":
            job.created_at = note.at
            dir_epr = event.get("dir_epr")
            if dir_epr is not None:
                # http://node03:80/FileSystem -> node03
                job.machine_hint = dir_epr.address.split("//")[-1].split(":")[0]
        elif kind == "JobStarted":
            job.started_at = note.at
        elif kind == "JobExited":
            job.exited_at = note.at
            job.exit_code = event.get("exit_code")
    return report


def render_gantt(report: JobSetReport, width: int = 60) -> str:
    """An ASCII timeline: ``.`` staging, ``#`` running, per job."""
    jobs = sorted(report.jobs.values(), key=lambda j: (j.created_at or 0, j.name))
    if not jobs:
        return f"(no job events for {report.topic})"
    t0 = report.submitted_at or min(j.created_at or 0 for j in jobs)
    t1 = report.finished_at or max(
        (j.exited_at or j.started_at or j.created_at or t0) for j in jobs
    )
    span = max(t1 - t0, 1e-9)

    def column(t: Optional[float]) -> int:
        if t is None:
            return width
        return min(width - 1, max(0, int((t - t0) / span * (width - 1))))

    name_w = max(len(j.name) for j in jobs)
    host_w = max([len(j.machine_hint) for j in jobs] + [4])
    lines = [
        f"{report.topic}: {report.outcome}"
        + (f" in {report.makespan_s:.2f}s" if report.makespan_s else "")
    ]
    for job in jobs:
        c0 = column(job.created_at)
        c1 = column(job.started_at)
        c2 = column(job.exited_at)
        bar = [" "] * width
        for i in range(c0, c1):
            bar[i] = "."
        for i in range(c1, c2):
            bar[i] = "#"
        if c2 < width and job.exited_at is not None:
            bar[c2] = "#" if job.exit_code == 0 else "X"
        for recovery in job.recoveries:
            bar[column(recovery.at)] = "R"
        lines.append(
            f"  {job.name:<{name_w}}  {job.machine_hint:<{host_w}}  |{''.join(bar)}|"
            f" {job.outcome}"
        )
    lines.append(
        f"  {'':{name_w}}  {'':{host_w}}  |{'-' * width}|"
    )
    lines.append(
        f"  {'':{name_w}}  {'':{host_w}}   {t0:<.2f}s{'':{max(0, width - 14)}}{t1:.2f}s"
    )
    return "\n".join(lines)


def render_run_metrics(obs) -> str:
    """Key run metrics from an attached Observability (see repro.obs).

    Complements the notification-derived views above with fabric-side
    numbers: message/byte counts per transport and the Fig. 1
    dispatch-stage latency breakdown.  Used by the FIG-3 benchmark to
    record the perf trajectory (BENCH_fig3.json).
    """
    from repro.obs.dashboard import render_pipeline_breakdown

    obs.collect()
    reg = obs.registry
    lines = ["run metrics:"]
    lines.append(
        f"  messages: {int(reg.value('net.messages'))} "
        f"({int(reg.value('net.bytes'))} B on the wire)"
    )
    for name, labels, metric in reg.query("net.messages"):
        if labels.get("scheme"):
            lines.append(f"    {labels['scheme']}: {int(metric.value)}")
    recoveries = sum(m.value for _, _, m in reg.query("scheduler.recoveries"))
    if recoveries:
        lines.append(f"  scheduler recoveries: {int(recoveries)}")
    lines.append(render_pipeline_breakdown({"metrics": reg.snapshot(), "spans": []}))
    return "\n".join(lines)


def render_summary(report: JobSetReport) -> str:
    """A per-job summary table (staging / run / outcome)."""
    lines = [f"job set {report.topic}: {report.outcome}"]
    for name in sorted(report.jobs):
        job = report.jobs[name]
        staging = f"{job.staging_s:.2f}s" if job.staging_s is not None else "-"
        running = f"{job.running_s:.2f}s" if job.running_s is not None else "-"
        recovered = (
            f"  recovered x{len(job.recoveries)}" if job.recoveries else ""
        )
        lines.append(
            f"  {name:<12} on {job.machine_hint or '?':<10} "
            f"staging {staging:>8}  run {running:>8}  {job.outcome}{recovered}"
        )
    if report.total_recoveries:
        lines.append(f"  recoveries: {report.total_recoveries}")
    if report.makespan_s is not None:
        lines.append(f"  makespan: {report.makespan_s:.2f}s")
    return "\n".join(lines)
