"""Client-side lightweight notification receiver.

§4.6: "the client program starts one of WSRF.NET's light-weight
notification receivers to receive asynchronous, WS-Notification
compliant, notifications via HTTP."  The listener binds directly to a
port on the client's host (no IIS involved — it is deliberately
lightweight), parses inbound wsnt:Notify envelopes and runs registered
callbacks whose topic expression matches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.net import Network
from repro.soap import SoapEnvelope
from repro.wsa import EndpointReference
from repro.wsn.base_notification import NOTIFY, parse_notify_body
from repro.wsn.topics import FULL_DIALECT, TopicExpression
from repro.xmlx import Element


@dataclass(frozen=True)
class ReceivedNotification:
    at: float
    topic: str
    payload: Element
    producer: Optional[EndpointReference]


class NotificationListener:
    """Binds to ``http://<host>:<port>/<path>`` and dispatches callbacks."""

    def __init__(
        self,
        network: Network,
        host_name: str,
        port: int = 7000,
        path: str = "notify",
    ) -> None:
        self.network = network
        self.env = network.env
        self.host_name = host_name
        self.port = port
        self.path = path.strip("/")
        self._callbacks: List[Tuple[TopicExpression, Callable]] = []
        #: every notification ever received, in arrival order
        self.received: List[ReceivedNotification] = []
        network.host(host_name).bind(port, self)

    @property
    def epr(self) -> EndpointReference:
        """The ConsumerReference to put in Subscribe requests."""
        return EndpointReference(f"http://{self.host_name}:{self.port}/{self.path}")

    def on_topic(self, expression: str, callback: Callable, dialect: str = FULL_DIALECT):
        """Run ``callback(notification)`` for matching topics."""
        self._callbacks.append((TopicExpression(expression, dialect), callback))

    def close(self) -> None:
        self.network.host(self.host_name).unbind(self.port)

    # -- network server protocol -----------------------------------------------------

    def handle(self, payload: str, ctx):
        prof = getattr(self.network, "prof", None)
        codec = getattr(self.network, "codec", None)
        if prof is None:
            envelope = SoapEnvelope.deserialize(payload, codec)
        else:
            with prof.region("soap.parse"):
                envelope = SoapEnvelope.deserialize(payload, codec)
        if envelope.body.tag != NOTIFY:
            raise ValueError(
                f"notification listener received non-Notify {envelope.body.tag}"
            )
        for topic, message, producer in parse_notify_body(envelope.body):
            note = ReceivedNotification(
                at=self.env.now, topic=topic, payload=message, producer=producer
            )
            self.received.append(note)
            for expression, callback in self._callbacks:
                if expression.matches(topic):
                    callback(note)
        yield self.env.timeout(0)
        return None

    def topics_seen(self) -> List[str]:
        return [note.topic for note in self.received]
