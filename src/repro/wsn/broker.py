"""WS-BrokeredNotification: the NotificationBroker service of §4.3.

"Notification Brokers ... are used when notification producers and
consumers can not or do not care to have direct knowledge of each
other" and serve as "a multicast mechanism": producers send one Notify
to the broker; the broker re-publishes to every subscriber whose topic
expression matches.  The Scheduler subscribes both itself and the
client's listener to a job set's topic (§4.6 step 1); Execution
Services broadcast job events through the broker (steps 9-10).
"""

from __future__ import annotations

from typing import List

from repro.soap import SoapFault
from repro.wsa import EndpointReference
from repro.wsn.base_notification import (
    NotificationConsumerPortType,
    NotificationProducerPortType,
    SubscriptionManagerPortType,
    attach_notification_producer,
)
from repro.wsrf.tooling import InvocationContext
from repro.wsrf.attributes import (
    ResourceProperty,
    ServiceSkeleton,
    WebMethod,
    WSRFPortType,
)
from repro.wsrf.lifetime import ImmediateResourceTerminationPortType
from repro.wsrf.porttypes import GetResourcePropertyPortType, SpecPortType
from repro.xmlx import NS, Element, QName

REGISTER_PUBLISHER = QName(NS.WSBN, "RegisterPublisher")
PAUSE_PUBLISHING = QName(NS.WSBN, "PausePublishing")
RESUME_PUBLISHING = QName(NS.WSBN, "ResumePublishing")


class RegisterPublisherPortType(SpecPortType):
    """wsbn:RegisterPublisher — record a producer with the broker.

    With ``<Demand>true</Demand>`` and a ``<Topic>`` root, the broker
    manages the publisher's output: it sends one-way PausePublishing
    when no unpaused subscription could match under the topic root, and
    ResumePublishing when interest (re)appears — WS-BrokeredNotification
    demand-based publishing.  (Topic-space intersection is approximated
    by root/first-segment matching; see NotificationProducer.
    active_interest_in.)
    """

    OPERATIONS = {REGISTER_PUBLISHER: "register_publisher"}
    OPTIONAL_RESOURCE_OPS = frozenset({REGISTER_PUBLISHER})

    def register_publisher(self, request: Element) -> Element:
        ref = request.find(QName(NS.WSBN, "PublisherReference"))
        if ref is None:
            raise SoapFault("soap:Client", "RegisterPublisher lacks a reference")
        epr = EndpointReference.from_xml(ref)
        registry = _publishers(self.wrapper)
        if epr not in registry:
            registry.append(epr)
        demand = (request.child_text(QName(NS.WSBN, "Demand"), "") or "").strip()
        if demand == "true":
            topic_root = (request.child_text(QName(NS.WSBN, "Topic"), "") or "").strip()
            if not topic_root:
                raise SoapFault(
                    "soap:Client", "demand registration needs a Topic root"
                )
            manager = _demand_manager(self.wrapper)
            manager.register(epr, topic_root, ctx=self.instance.wsrf)
        return Element(QName(NS.WSBN, "RegisterPublisherResponse"))


class _DemandManager:
    """Broker-side demand evaluation + pause/resume signalling."""

    def __init__(self, wrapper) -> None:
        self.wrapper = wrapper
        #: {publisher EPR: (topic_root, currently_told_to_publish)}
        self.entries = {}
        producer = attach_notification_producer(wrapper)
        producer.on_subscriptions_changed.append(self.reevaluate)

    def register(self, epr, topic_root: str, ctx=None) -> None:
        self.entries[epr] = [topic_root, None]  # unknown state yet
        self.reevaluate(ctx)

    def reevaluate(self, ctx=None) -> None:
        """Re-derive demand and signal publishers whose state flipped.

        Pause/Resume sends honor the write-ahead contract: when a live
        dispatch context is supplied, the one-way control messages queue
        on its outbox and leave only after the dispatch persists the
        subscription change.  With no dispatch in flight (recovery
        rebuild, resource-destroy callbacks) the state is already
        durable, so a closed context sends immediately.
        """
        producer = getattr(self.wrapper, "notification_producer", None)
        if producer is None:
            return
        send = ctx
        if send is None:
            send = InvocationContext(self.wrapper, None, None, None)
            send._outbox_closed = True
        for epr, entry in self.entries.items():
            topic_root, told = entry
            want = producer.active_interest_in(topic_root)
            if want == told:
                continue
            entry[1] = want
            body = Element(RESUME_PUBLISHING if want else PAUSE_PUBLISHING)
            body.subelement(QName(NS.WSBN, "Topic"), text=topic_root)
            send.send_after_persist(epr, body, category="demand-control")


def _demand_manager(wrapper) -> _DemandManager:
    manager = getattr(wrapper, "demand_manager", None)
    if manager is None:
        manager = _DemandManager(wrapper)
        wrapper.demand_manager = manager
    return manager


class DemandPublisherPortType(SpecPortType):
    """Publisher-side Pause/ResumePublishing control surface.

    Import this into a producer service and consult
    ``wrapper.publishing_paused`` (a set of paused topic roots) before
    publishing.
    """

    OPERATIONS = {
        PAUSE_PUBLISHING: "pause_publishing",
        RESUME_PUBLISHING: "resume_publishing",
    }
    OPTIONAL_RESOURCE_OPS = frozenset({PAUSE_PUBLISHING, RESUME_PUBLISHING})

    def _paused_set(self) -> set:
        if not hasattr(self.wrapper, "publishing_paused"):
            self.wrapper.publishing_paused = set()
        return self.wrapper.publishing_paused

    def pause_publishing(self, request: Element) -> Element:
        root = (request.child_text(QName(NS.WSBN, "Topic"), "") or "").strip()
        self._paused_set().add(root)
        return Element(QName(NS.WSBN, "PausePublishingResponse"))

    def resume_publishing(self, request: Element) -> Element:
        root = (request.child_text(QName(NS.WSBN, "Topic"), "") or "").strip()
        self._paused_set().discard(root)
        return Element(QName(NS.WSBN, "ResumePublishingResponse"))


def _publishers(wrapper) -> List[EndpointReference]:
    if not hasattr(wrapper, "registered_publishers"):
        wrapper.registered_publishers = []
    return wrapper.registered_publishers


@WSRFPortType(
    NotificationProducerPortType,
    NotificationConsumerPortType,
    SubscriptionManagerPortType,
    RegisterPublisherPortType,
    GetResourcePropertyPortType,
    ImmediateResourceTerminationPortType,
)
class NotificationBrokerService(ServiceSkeleton):
    """The testbed's single broker: consume, then multicast.

    All real state (subscriptions) lives in the producer attachment; the
    broker's own WS-Resources are its subscriptions, so PauseSubscription
    and Destroy work on them directly.
    """

    SERVICE_NS = NS.WSBN

    def on_notification(self, topic, payload, producer):
        """Inbound Notify (consumer side) → republish to subscribers."""
        # Routed through notify() so the broker's fan-out spans parent to
        # the inbound Notify's dispatch span.
        self.notify(topic, payload)

    @ResourceProperty
    @property
    def RegisteredPublishers(self):
        return [epr.to_xml() for epr in _publishers(self.wsrf.wrapper)]

    @ResourceProperty
    @property
    def SubscriptionCount(self) -> int:
        producer = getattr(self.wsrf.wrapper, "notification_producer", None)
        return len(producer.subscriptions) if producer is not None else 0

    @ResourceProperty
    @property
    def DroppedSubscribers(self) -> int:
        """Subscriptions dropped after exhausting redelivery attempts."""
        producer = getattr(self.wsrf.wrapper, "notification_producer", None)
        return len(producer.dropped_subscribers) if producer is not None else 0

    @WebMethod(requires_resource=False)
    def Ping(self) -> str:
        """Liveness probe used by testbed assembly."""
        return "broker-alive"


def deploy_broker(machine, path: str = "NotificationBroker"):
    """Deploy a broker and pre-attach its producer engine."""
    from repro.wsrf.tooling import deploy

    wrapper = deploy(NotificationBrokerService, machine, path)
    attach_notification_producer(wrapper)
    return wrapper


def federate_brokers(zone_broker, root_epr: EndpointReference) -> str:
    """Uplink a zone broker into a root broker (broker hierarchy).

    The zone broker subscribes the root broker's consumer endpoint to
    ``**`` — every notification published at the zone is re-published
    at the root, where federation-wide subscribers (schedulers, client
    listeners) attach.  The hierarchy is strictly upward — the root
    never re-publishes down to zone brokers — so no notification loops.

    Runs at testbed assembly (the administrator wires the topology), so
    the subscription rows are not billed as traffic-driven db ops.
    Returns the uplink's subscription resource id.
    """
    from repro.wsn.topics import FULL_DIALECT, TopicExpression

    producer = attach_notification_producer(zone_broker)
    rid = producer.add_subscription(
        root_epr, TopicExpression("**", FULL_DIALECT)
    )
    zone_broker._pending_db_ops = 0  # assembly-time writes are not billed
    return rid


def enable_redelivery(wrapper, policy):
    """Give *wrapper*'s producer bounded notification redelivery.

    *policy* is a :class:`repro.net.retry.RetryPolicy`; a consumer that
    stays unreachable for ``policy.max_attempts`` one-way sends has its
    subscription destroyed (visible via the broker's DroppedSubscribers
    resource property).  Pass ``None`` to restore pure fire-and-forget.
    """
    producer = attach_notification_producer(wrapper)
    producer.redelivery_policy = policy
    return producer
