"""WS-Notification: asynchronous messaging between services and clients.

Implements the three specs the paper uses:

- **WS-BaseNotification** — Subscribe/Notify; subscriptions are
  WS-Resources (pausable and lifetime-managed);
- **WS-Topics** — topic trees with Simple, Concrete and Full dialects;
- **WS-BrokeredNotification** — the NotificationBroker "multicast
  mechanism" of §4.3: producers send one Notify to the broker, the
  broker fans out to every matching subscriber.

Service authors never see message formats: ``self.notify(topic, payload)``
is the paper's "single function that services may invoke"; clients use a
:class:`NotificationListener` — "one of WSRF.NET's light-weight
notification receivers" (§4.6) — to receive WS-Notification-compliant
messages over HTTP on their own host.
"""

from repro.wsn.topics import (
    CONCRETE_DIALECT,
    FULL_DIALECT,
    SIMPLE_DIALECT,
    TopicExpression,
    TopicExpressionError,
)
from repro.wsn.base_notification import (
    NotificationConsumerPortType,
    NotificationProducerPortType,
    SubscriptionManagerPortType,
    attach_notification_producer,
    build_notify_batch_body,
    build_notify_body,
    build_subscribe_body,
    parse_notify_body,
)
from repro.wsn.batching import NotificationBatcher, enable_batching
from repro.wsn.consumer import NotificationListener, ReceivedNotification
from repro.wsn.broker import (
    DemandPublisherPortType,
    NotificationBrokerService,
    RegisterPublisherPortType,
)

__all__ = [
    "CONCRETE_DIALECT",
    "FULL_DIALECT",
    "SIMPLE_DIALECT",
    "DemandPublisherPortType",
    "NotificationBatcher",
    "NotificationBrokerService",
    "NotificationConsumerPortType",
    "NotificationListener",
    "NotificationProducerPortType",
    "ReceivedNotification",
    "RegisterPublisherPortType",
    "SubscriptionManagerPortType",
    "TopicExpression",
    "TopicExpressionError",
    "attach_notification_producer",
    "build_notify_batch_body",
    "build_notify_body",
    "enable_batching",
    "build_subscribe_body",
    "parse_notify_body",
]
