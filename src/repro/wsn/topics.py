"""WS-Topics: topic paths and the three expression dialects.

A *topic path* is a ``/``-separated string, e.g.
``jobset-0007/job2/status``.  The Scheduler "generates a unique topic
name for events related to this job set" (§4.6); child segments organize
the event kinds beneath it.

Dialects (URIs follow the 2004/06 draft):

- **Simple** — a single root topic; matches that root and everything
  beneath it;
- **Concrete** — a full path; matches exactly that topic;
- **Full** — a path pattern where ``*`` matches exactly one segment and
  ``**`` matches any number of trailing/intervening segments (this
  stands in for the draft's XPath-flavoured wildcard syntax).
"""

from __future__ import annotations

from typing import List

from repro.xmlx import NS

SIMPLE_DIALECT = f"{NS.WSTOP}/TopicExpression/Simple"
CONCRETE_DIALECT = f"{NS.WSTOP}/TopicExpression/Concrete"
FULL_DIALECT = f"{NS.WSTOP}/TopicExpression/Full"

_DIALECTS = (SIMPLE_DIALECT, CONCRETE_DIALECT, FULL_DIALECT)


class TopicExpressionError(ValueError):
    """Unknown dialect or malformed expression."""


def _split(path: str) -> List[str]:
    parts = [p for p in path.strip().split("/") if p]
    if not parts:
        raise TopicExpressionError(f"empty topic path {path!r}")
    return parts


class TopicExpression:
    """A subscription's statement of interest, evaluable against paths."""

    __slots__ = ("dialect", "expression", "_segments")

    def __init__(self, expression: str, dialect: str = CONCRETE_DIALECT) -> None:
        if dialect not in _DIALECTS:
            raise TopicExpressionError(f"unknown topic dialect {dialect!r}")
        self.dialect = dialect
        self.expression = expression.strip()
        self._segments = _split(self.expression)
        if dialect == SIMPLE_DIALECT and len(self._segments) != 1:
            raise TopicExpressionError(
                f"Simple dialect takes a single root topic, got {expression!r}"
            )
        if dialect != FULL_DIALECT and any(
            seg in ("*", "**") for seg in self._segments
        ):
            raise TopicExpressionError(
                f"wildcards require the Full dialect: {expression!r}"
            )

    def matches(self, topic_path: str) -> bool:
        path = _split(topic_path)
        if self.dialect == SIMPLE_DIALECT:
            return path[0] == self._segments[0]
        if self.dialect == CONCRETE_DIALECT:
            return path == self._segments
        return _match_full(self._segments, path)

    def __repr__(self) -> str:
        short = self.dialect.rsplit("/", 1)[-1]
        return f"TopicExpression({self.expression!r}, {short})"

    def __eq__(self, other) -> bool:
        if not isinstance(other, TopicExpression):
            return NotImplemented
        return self.dialect == other.dialect and self.expression == other.expression

    def __hash__(self) -> int:
        return hash((self.dialect, self.expression))


def _match_full(pattern: List[str], path: List[str]) -> bool:
    """Segment matcher with ``*`` (one) and ``**`` (any number)."""
    if not pattern:
        return not path
    head, rest = pattern[0], pattern[1:]
    if head == "**":
        # Greedily try consuming 0..len(path) segments.
        for skip in range(len(path) + 1):
            if _match_full(rest, path[skip:]):
                return True
        return False
    if not path:
        return False
    if head == "*" or head == path[0]:
        return _match_full(rest, path[1:])
    return False
