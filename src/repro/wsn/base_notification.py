"""WS-BaseNotification: Subscribe, Notify, and subscriptions as resources."""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.net import DeliveryError
from repro.soap import SoapFault
from repro.wsa import EndpointReference
from repro.wsn.topics import CONCRETE_DIALECT, TopicExpression, TopicExpressionError
from repro.wsrf.basefaults import BaseFault
from repro.wsrf.porttypes import SpecPortType
from repro.xmlx import NS, Element, QName

SUBSCRIBE = QName(NS.WSNT, "Subscribe")
NOTIFY = QName(NS.WSNT, "Notify")
PAUSE_SUBSCRIPTION = QName(NS.WSNT, "PauseSubscription")
RESUME_SUBSCRIPTION = QName(NS.WSNT, "ResumeSubscription")

_CONSUMER_REF = QName(NS.WSNT, "ConsumerReference")
_TOPIC_EXPR = QName(NS.WSNT, "TopicExpression")
_SUBSCRIPTION_REF = QName(NS.WSNT, "SubscriptionReference")
_NOTIFICATION_MESSAGE = QName(NS.WSNT, "NotificationMessage")
_TOPIC = QName(NS.WSNT, "Topic")
_PRODUCER_REF = QName(NS.WSNT, "ProducerReference")
_MESSAGE = QName(NS.WSNT, "Message")

# State keys for subscription resources (stored in the producer's store).
_K_CONSUMER = QName(NS.WSNT, "consumer")
_K_EXPR = QName(NS.WSNT, "expression")
_K_DIALECT = QName(NS.WSNT, "dialect")
_K_PAUSED = QName(NS.WSNT, "paused")


class SubscribeCreationFailedFault(BaseFault):
    FAULT_QNAME = QName(NS.WSNT, "SubscribeCreationFailedFault")


class PauseFailedFault(BaseFault):
    FAULT_QNAME = QName(NS.WSNT, "PauseFailedFault")


# -- message construction/parsing (shared by clients and services) -----------------


def build_subscribe_body(
    consumer_epr: EndpointReference,
    topic_expression: str,
    dialect: Optional[str] = None,
) -> Element:
    body = Element(SUBSCRIBE)
    body.append(consumer_epr.to_xml(_CONSUMER_REF))
    expr = body.subelement(_TOPIC_EXPR, text=topic_expression)
    expr.set("Dialect", dialect or CONCRETE_DIALECT)
    return body


def build_notify_body(
    topic_path: str,
    payload: Element,
    producer_epr: Optional[EndpointReference] = None,
) -> Element:
    body = Element(NOTIFY)
    message = body.subelement(_NOTIFICATION_MESSAGE)
    topic = message.subelement(_TOPIC, text=topic_path)
    topic.set("Dialect", CONCRETE_DIALECT)
    if producer_epr is not None:
        message.append(producer_epr.to_xml(_PRODUCER_REF))
    message.subelement(_MESSAGE).append(payload.copy())
    return body


def build_notify_batch_body(
    events: List[Tuple[str, Element]],
    producer_epr: Optional[EndpointReference] = None,
) -> Element:
    """One wsnt:Notify carrying several NotificationMessages.

    The WS-BaseNotification schema allows any number of
    NotificationMessage children per Notify; :func:`parse_notify_body`
    (and therefore every consumer port type) already handles the
    multi-message form.  The performance layer's batcher uses this to
    coalesce a window of events to one subscriber into a single
    network message.  Messages keep publish order within the batch.
    """
    body = Element(NOTIFY)
    for topic_path, payload in events:
        message = body.subelement(_NOTIFICATION_MESSAGE)
        topic = message.subelement(_TOPIC, text=topic_path)
        topic.set("Dialect", CONCRETE_DIALECT)
        if producer_epr is not None:
            message.append(producer_epr.to_xml(_PRODUCER_REF))
        message.subelement(_MESSAGE).append(payload.copy())
    return body


def parse_notify_body(
    body: Element,
) -> List[Tuple[str, Element, Optional[EndpointReference]]]:
    """Returns [(topic_path, payload, producer_epr), ...]."""
    out = []
    for message in body.findall(_NOTIFICATION_MESSAGE):
        topic_el = message.find(_TOPIC)
        payload_holder = message.find(_MESSAGE)
        if topic_el is None or payload_holder is None or not payload_holder.children:
            raise SoapFault("soap:Client", "malformed NotificationMessage")
        producer_el = message.find(_PRODUCER_REF)
        producer = (
            EndpointReference.from_xml(producer_el) if producer_el is not None else None
        )
        out.append(
            (topic_el.full_text().strip(), payload_holder.children[0], producer)
        )
    return out


def fire_and_forget(env, client, target_epr, body, category="notify", parent_span=None):
    """Send a one-way message from a detached process, absorbing failures.

    One-way semantics (§4.1): the sender gets no delivery guarantee.  An
    unreachable consumer (host down, listener gone, partition) must not
    crash the producer — the message is simply lost.  The caller keeps
    ownership of *body*: it is serialized inside this send only, so pass
    a private copy when the same tree goes to several targets.
    """

    def send(env):
        try:
            yield from client.invoke(
                target_epr, body, category=category, one_way=True,
                parent_span=parent_span,
            )
        except Exception:
            pass  # lost notification: fire-and-forget semantics

    return env.process(send(env))


# -- producer state ------------------------------------------------------------------


@dataclass
class Subscription:
    resource_id: str
    consumer: EndpointReference
    expression: TopicExpression
    paused: bool = False


class NotificationProducer:
    """Wrapper-side subscription registry + fan-out engine.

    Subscriptions are persisted as WS-Resources in the producer's own
    store (so lifetime operations work on them) and mirrored in memory
    for cheap matching on every publish.
    """

    def __init__(self, wrapper) -> None:
        self.wrapper = wrapper
        self.subscriptions: Dict[str, Subscription] = {}
        #: next subscription-id suffix; rebuilt as a high-water
        #: mark from persisted rows after a host restart
        self._sub_next = 1
        self.notifications_sent = 0
        #: distinct topic paths ever published (advertised via the
        #: wstop:Topic resource property, bounded to keep state sane)
        self.topics_seen: set = set()
        self._topics_cap = 1000
        #: True once a published topic could not be recorded because the
        #: cap was hit — the wstop:Topic RP under-advertises from then on
        #: ("no silent caps": the truncation must be observable)
        self.topics_truncated = False
        #: count of publishes whose (new) topic path went unrecorded
        self.topics_dropped = 0
        #: callbacks run after any subscription change (add/pause/destroy);
        #: used by brokers for demand-based publishing.  Each callback
        #: receives the live InvocationContext when the change happened
        #: inside a dispatch (so follow-up sends can honor the
        #: write-ahead contract via send_after_persist), or None when no
        #: dispatch is in flight (recovery rebuild, destroy callbacks —
        #: the state is already durable there).
        self.on_subscriptions_changed: list = []
        #: optional RetryPolicy: bounded redelivery to unreachable
        #: consumers before the subscription is dropped.  None (default)
        #: keeps the documented one-way loss semantics.
        self.redelivery_policy = None
        self.redeliveries = 0
        #: optional NotificationBatcher (see repro.wsn.batching): when
        #: set, publish enqueues per-subscriber instead of sending one
        #: Notify per subscriber per event.  None keeps immediate fan-out.
        self.batcher = None
        #: subscription ids dropped after exhausting redelivery
        self.dropped_subscribers: list = []
        self._redelivery_rng = np.random.default_rng(
            zlib.crc32(wrapper.path.encode("utf-8"))
        )
        wrapper.publish_hook = self.publish
        wrapper.on_resource_destroyed.append(self._forget)
        wrapper.notification_producer = self

    def _forget(self, resource_id: str) -> None:
        if self.subscriptions.pop(resource_id, None) is not None:
            self._changed()

    def rebuild_from_store(self) -> None:
        """Rebuild the in-memory mirror after a host restart.

        Subscriptions are WS-Resources, so the persisted rows are the
        source of truth; the mirror, the id high-water mark and any
        half-open batch windows are process memory that died with the
        old boot.  Pending batched notifications are *lost*, matching
        one-way semantics — an un-flushed batch is exactly a message
        that never left the dead host.
        """
        self.subscriptions = {}
        high_water = 0
        wrapper = self.wrapper
        for rid in wrapper.store.list_ids(wrapper.service_name):
            state = wrapper.store.load(wrapper.service_name, rid)
            if _K_CONSUMER not in state or _K_EXPR not in state:
                continue  # not a subscription resource
            self.subscriptions[rid] = Subscription(
                rid,
                state[_K_CONSUMER],
                TopicExpression(
                    state[_K_EXPR], state.get(_K_DIALECT, CONCRETE_DIALECT)
                ),
                paused=bool(state.get(_K_PAUSED, False)),
            )
            if rid.startswith("sub-"):
                try:
                    high_water = max(high_water, int(rid[4:]))
                except ValueError:
                    pass
        self._sub_next = max(self._sub_next, high_water + 1)
        # A drop whose store-destroy the checkpoint predates is undone by
        # the restore: the subscriber is live again, so the accounting
        # must not still list it as dropped.
        self.dropped_subscribers = [
            rid for rid in self.dropped_subscribers
            if rid not in self.subscriptions
        ]
        if self.batcher is not None:
            self.batcher.drop_pending()
        self._changed()

    def _changed(self, ctx=None) -> None:
        for callback in self.on_subscriptions_changed:
            callback(ctx)

    def add_subscription(
        self,
        consumer: EndpointReference,
        expression: TopicExpression,
        ctx=None,
    ) -> str:
        rid = f"sub-{self._sub_next:05d}"
        self._sub_next += 1
        self.wrapper.store.create(
            self.wrapper.service_name,
            rid,
            {
                _K_CONSUMER: consumer,
                _K_EXPR: expression.expression,
                _K_DIALECT: expression.dialect,
                _K_PAUSED: False,
            },
        )
        self.subscriptions[rid] = Subscription(rid, consumer, expression)
        self._changed(ctx)
        return rid

    def set_paused(self, resource_id: str, paused: bool, ctx=None) -> None:
        sub = self.subscriptions.get(resource_id)
        if sub is None:
            raise PauseFailedFault(
                description=f"no subscription {resource_id!r}",
                timestamp=self.wrapper.env.now,
            )
        sub.paused = paused
        state = self.wrapper.store.load(self.wrapper.service_name, resource_id)
        state[_K_PAUSED] = paused
        self.wrapper.store.save(self.wrapper.service_name, resource_id, state)
        self._changed(ctx)

    def active_interest_in(self, topic_root: str) -> bool:
        """True if any unpaused subscription could match under *root*.

        Used for demand-based publishing: a subscription is relevant if
        its expression matches the root itself or its own first segment
        is the root or a wildcard (an approximation of the spec's
        topic-space intersection, documented in repro.wsn.broker).
        """
        for sub in self.subscriptions.values():
            if sub.paused:
                continue
            first = sub.expression.expression.split("/")[0]
            if sub.expression.matches(topic_root) or first in ("*", "**", topic_root):
                return True
        return False

    def publish(self, topic_path: str, payload: Element, parent_span=None) -> int:
        """Fan out one event; returns the number of Notifies dispatched.

        Delivery is asynchronous: each matching subscriber gets a one-way
        wsnt:Notify sent by a detached simulation process (the publisher
        does not block on consumers, per §4.1's one-way semantics).
        """
        prof = getattr(self.wrapper.machine.network, "prof", None)
        if prof is None:
            return self._publish_impl(topic_path, payload, parent_span)
        # Synchronous fan-out work (matching, per-subscriber deep copies,
        # dispatch process spawns); the sends themselves are profiled as
        # net.oneway by their own detached processes.
        with prof.region("wsn.publish"):
            return self._publish_impl(topic_path, payload, parent_span)

    def _publish_impl(self, topic_path: str, payload: Element, parent_span=None) -> int:
        wrapper = self.wrapper
        if topic_path not in self.topics_seen:
            if len(self.topics_seen) < self._topics_cap:
                self.topics_seen.add(topic_path)
            else:
                self.topics_truncated = True
                self.topics_dropped += 1
        targets = [
            sub
            for sub in self.subscriptions.values()
            if not sub.paused and sub.expression.matches(topic_path)
        ]
        env = wrapper.env
        client = wrapper.client
        obs = getattr(wrapper.machine.network, "obs", None)
        span = None
        if obs is not None:
            span = obs.start_span(
                "wsn.publish",
                parent=parent_span,
                attrs={
                    "service": wrapper.path,
                    "topic": topic_path,
                    "targets": len(targets),
                    **({"batched": True} if self.batcher is not None else {}),
                },
            )
        if self.batcher is not None:
            for sub in targets:
                self.batcher.enqueue(sub, topic_path, payload)
        else:
            body = build_notify_body(topic_path, payload, wrapper.service_epr())
            for sub in targets:
                # Each dispatch gets its own deep copy: the sends (and any
                # redelivery retries) run detached and serialize later, so a
                # shared tree would alias one consumer's mutations into the
                # other subscribers' still-pending notifications.
                dispatch_body = body.copy()
                if self.redelivery_policy is None:
                    fire_and_forget(
                        env, client, sub.consumer, dispatch_body, parent_span=span
                    )
                else:
                    env.process(self._redeliver(sub, dispatch_body, parent_span=span))
        self.notifications_sent += len(targets)
        if span is not None:
            obs.finish(span)
        return len(targets)

    def _redeliver(self, sub: Subscription, body: Element, parent_span=None):
        """Detached coroutine: bounded redelivery, then drop the subscriber.

        A one-way send only fails observably when the consumer is
        unreachable (host down, partition, port unbound); those failures
        are retried per the policy.  Silent in-fabric losses remain
        undetectable by design — redelivery hardens reachability, it
        does not make one-way messaging reliable.  When the budget is
        exhausted the subscription resource is destroyed: a consumer
        that stays unreachable stops costing the broker send slots.
        """
        wrapper = self.wrapper
        policy = self.redelivery_policy
        env = wrapper.env
        obs = getattr(wrapper.machine.network, "obs", None)
        host = getattr(wrapper.machine, "host", None)
        epoch = getattr(host, "boot_epoch", 0)
        failures = 0
        while True:
            try:
                yield from wrapper.client.invoke(
                    sub.consumer, body, category="notify", one_way=True,
                    parent_span=parent_span,
                )
                return
            except DeliveryError:
                failures += 1
                if failures >= max(1, policy.max_attempts):
                    break
                self.redeliveries += 1
                wrapper.machine.network.stats.redeliveries += 1
                rspan = None
                if obs is not None:
                    rspan = obs.start_span(
                        "wsn.redelivery",
                        parent=parent_span,
                        attrs={
                            "service": wrapper.path,
                            "subscription": sub.resource_id,
                            "attempt": failures,
                        },
                    )
                yield env.timeout(policy.delay_for(failures, self._redelivery_rng))
                if rspan is not None:
                    obs.finish(rspan)
            except Exception:
                return  # non-transport failure: plain one-way loss
        if host is not None and (
            host.down or getattr(host, "boot_epoch", 0) != epoch
        ):
            # This redelivery loop belongs to a dead boot: its failure
            # tally describes deliveries that never happened as far as
            # the restored broker is concerned — do not drop.
            return
        if sub.resource_id in self.subscriptions:
            self.dropped_subscribers.append(sub.resource_id)
            # Take the subscription's resource lock before destroying it: a
            # concurrent Unsubscribe/PauseSubscription handler may be mid
            # load-modify-save on the same resource.
            lock = wrapper.resource_lock(sub.resource_id)
            yield lock.acquire()
            try:
                wrapper.destroy_resource(sub.resource_id)
            except Exception:
                self.subscriptions.pop(sub.resource_id, None)
            finally:
                lock.release()


def attach_notification_producer(wrapper) -> NotificationProducer:
    """Enable publish/subscribe on a deployed wrapper service."""
    existing = getattr(wrapper, "notification_producer", None)
    if existing is not None:
        return existing
    return NotificationProducer(wrapper)


# -- port types ----------------------------------------------------------------------


TOPIC_RP = QName(NS.WSTOP, "Topic")


def _advertised_topics(pt) -> list:
    producer = getattr(pt.wrapper, "notification_producer", None)
    if producer is None:
        return []
    return sorted(producer.topics_seen)


class NotificationProducerPortType(SpecPortType):
    """wsnt:Subscribe — create a subscription WS-Resource.

    Also contributes the WS-Topics ``Topic`` resource property: the
    topic paths this producer has published, so clients can discover
    what to subscribe to (the spec's topic-space advertisement).
    """

    OPERATIONS = {SUBSCRIBE: "subscribe"}
    OPTIONAL_RESOURCE_OPS = frozenset({SUBSCRIBE})

    @classmethod
    def provides_rps(cls):
        return {TOPIC_RP: _advertised_topics}

    def subscribe(self, request: Element) -> Element:
        producer = getattr(self.wrapper, "notification_producer", None)
        if producer is None:
            producer = attach_notification_producer(self.wrapper)
        consumer_el = request.find(_CONSUMER_REF)
        expr_el = request.find(_TOPIC_EXPR)
        if consumer_el is None or expr_el is None:
            raise SubscribeCreationFailedFault(
                description="Subscribe needs ConsumerReference and TopicExpression",
                timestamp=self.wrapper.env.now,
            )
        try:
            expression = TopicExpression(
                expr_el.full_text(), expr_el.get("Dialect", CONCRETE_DIALECT)
            )
        except TopicExpressionError as exc:
            raise SubscribeCreationFailedFault(
                description=str(exc), timestamp=self.wrapper.env.now
            ) from exc
        consumer = EndpointReference.from_xml(consumer_el)
        rid = producer.add_subscription(
            consumer, expression, ctx=self.instance.wsrf
        )
        response = Element(QName(NS.WSNT, "SubscribeResponse"))
        response.append(self.wrapper.epr_for(rid).to_xml(_SUBSCRIPTION_REF))
        return response


class SubscriptionManagerPortType(SpecPortType):
    """Pause/Resume on subscription resources."""

    OPERATIONS = {
        PAUSE_SUBSCRIPTION: "pause",
        RESUME_SUBSCRIPTION: "resume",
    }

    def _producer(self):
        producer = getattr(self.wrapper, "notification_producer", None)
        if producer is None:
            raise PauseFailedFault(
                description="service has no notification producer",
                timestamp=self.wrapper.env.now,
            )
        return producer

    def pause(self, request: Element) -> Element:
        wsrf = self.instance.wsrf
        self._producer().set_paused(wsrf.resource_id, True, ctx=wsrf)
        return Element(QName(NS.WSNT, "PauseSubscriptionResponse"))

    def resume(self, request: Element) -> Element:
        wsrf = self.instance.wsrf
        self._producer().set_paused(wsrf.resource_id, False, ctx=wsrf)
        return Element(QName(NS.WSNT, "ResumeSubscriptionResponse"))


class NotificationConsumerPortType(SpecPortType):
    """wsnt:Notify — deliver messages to the author's handler.

    The author's service defines::

        def on_notification(self, topic, payload, producer_epr):
            ...

    which may be a plain method or a simulation coroutine.
    """

    OPERATIONS = {NOTIFY: "notify"}
    OPTIONAL_RESOURCE_OPS = frozenset({NOTIFY})

    def notify(self, request: Element):
        handler = getattr(self.instance, "on_notification", None)
        if handler is None:
            raise SoapFault(
                "soap:Client",
                f"{type(self.instance).__name__} does not consume notifications",
            )
        for topic, payload, producer in parse_notify_body(request):
            result = handler(topic, payload, producer)
            if hasattr(result, "send"):
                yield from result
        return Element(QName(NS.WSNT, "NotifyResponse"))
