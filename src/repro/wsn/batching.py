"""Batched WS-Notification fan-out (the performance layer's third leg).

The Fig. 3 walkthrough's step-9 broadcast sends one one-way wsnt:Notify
per subscriber per event; ``bench_scale`` shows the resulting linear
central-message growth at the broker.  :class:`NotificationBatcher`
coalesces every Notify bound for one subscriber within a configurable
window into a single multi-message Notify (the WS-BaseNotification
schema allows any number of NotificationMessages per Notify, and every
consumer in this codebase already parses the multi-message form).

Semantics, and what the differential harness checks:

- **Ordering within a subscriber is preserved** — events are flushed in
  publish order, and a consumer iterating ``parse_notify_body`` handles
  them in that order.  Batching only *delays* delivery by at most the
  window; it never reorders one subscriber's stream.
- **Cross-subscriber timing may change** — subscriber A's flush timer
  and subscriber B's are independent, so the interleaving of deliveries
  across consumers (a thing one-way messaging never guaranteed) can
  differ from the unbatched run.  This is why the differential harness
  compares outcomes, traces and final state — not packet timelines.
- **Loss semantics are unchanged** — a batch is sent fire-and-forget
  (or through the producer's bounded redelivery when that is enabled);
  an unreachable consumer loses the whole batch exactly as it would
  have lost each individual Notify.
- A subscriber paused or dropped *after* an event was enqueued still
  receives that event: the unbatched producer would already have sent
  it at publish time.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.wsn.base_notification import (
    NotificationProducer,
    Subscription,
    attach_notification_producer,
    build_notify_batch_body,
    fire_and_forget,
)
from repro.xmlx import Element


class NotificationBatcher:
    """Per-subscriber coalescing window over a NotificationProducer."""

    def __init__(self, producer: NotificationProducer, window_s: float) -> None:
        if window_s <= 0:
            raise ValueError(f"batch window must be > 0, got {window_s!r}")
        self.producer = producer
        self.window_s = float(window_s)
        #: pending (topic, payload) events per subscription resource id
        self._pending: Dict[str, List[Tuple[str, Element]]] = {}
        #: counters for the obs registry
        self.batches_sent = 0
        self.notifications_batched = 0
        self.max_batch_size = 0

    def enqueue(self, sub: Subscription, topic_path: str, payload: Element) -> None:
        """Queue one event for *sub*; the first event opens the window.

        The payload is copied immediately: the publisher keeps ownership
        of its tree and may mutate it before the window elapses.
        """
        queue = self._pending.get(sub.resource_id)
        if queue is None:
            queue = self._pending[sub.resource_id] = []
            env = self.producer.wrapper.env
            env.process(self._flush_after_window(sub))
        queue.append((topic_path, payload.copy()))
        self.notifications_batched += 1

    def drop_pending(self) -> None:
        """Forget every un-flushed batch (host restart).

        An open window's events only ever lived in process memory; the
        crash loses them exactly as it would lose an in-flight one-way
        Notify.  Pending flush timers from the old boot find their
        queues gone and send nothing.
        """
        self._pending.clear()

    def _flush_after_window(self, sub: Subscription):
        wrapper = self.producer.wrapper
        env = wrapper.env
        yield env.timeout(self.window_s)
        events = self._pending.pop(sub.resource_id, [])
        if not events:
            return
        self.batches_sent += 1
        self.max_batch_size = max(self.max_batch_size, len(events))
        body = build_notify_batch_body(events, wrapper.service_epr())
        obs = getattr(wrapper.machine.network, "obs", None)
        span = None
        if obs is not None:
            span = obs.start_span(
                "wsn.batch_flush",
                attrs={
                    "service": wrapper.path,
                    "subscription": sub.resource_id,
                    "size": len(events),
                },
            )
        if self.producer.redelivery_policy is None:
            fire_and_forget(env, wrapper.client, sub.consumer, body, parent_span=span)
        else:
            env.process(self.producer._redeliver(sub, body, parent_span=span))
        if span is not None:
            obs.finish(span)


def enable_batching(wrapper, window_s: float) -> NotificationBatcher:
    """Attach a coalescing batcher to a wrapper's notification producer.

    Mirrors ``enable_redelivery``: idempotent per wrapper (re-enabling
    replaces the window), and composes with redelivery — batches go
    through the bounded-redelivery path when one is configured.
    """
    producer = attach_notification_producer(wrapper)
    producer.batcher = NotificationBatcher(producer, window_s)
    return producer.batcher
