"""Opt-in hot-path performance layer configuration.

The paper's §5/Fig. 1 cost analysis shows WSRF dispatch is dominated by
the two 0.8 ms database accesses per call, and the Fig. 3 walkthrough's
centralized Scheduler/Broker path sends one Notify per subscriber per
event.  :class:`PerfConfig` switches on three mechanisms that attack
exactly those costs, without changing any observable outcome:

- **state_cache** — a write-through :class:`repro.db.CachedResourceStore`
  in front of each service's :class:`~repro.db.BlobResourceStore`; the
  wrapper elides the ``db_load`` delay when the resource's state is
  already cached;
- **write_elision** — the wrapper skips the ``db_save`` stage entirely
  when the method did not mutate resource state (the default pipeline
  still *opens* the stage on every dispatch, matching WSRF.NET's
  unconditional save);
- **notification_batch_window_s** — the NotificationProducer coalesces
  all Notifies bound for one subscriber within the window into a single
  multi-message ``wsnt:Notify`` (``0.0`` disables batching);
- **nis_pass_cache** — the Scheduler reuses one Node Information Service
  ``GetProcessors`` catalog across all jobs of a scheduling pass instead
  of polling once per job;
- **codec_decode_cache** / **codec_envelope_cache** — the codec fast
  path (docs/performance.md, "Codec fast path"): content-addressed
  caches that stop the XML codec re-parsing byte-identical resource
  blobs and wire messages.  Unlike the four knobs above these change
  **no simulated quantity at all** — not even latencies — only host CPU;
  a codec-only config (:meth:`PerfConfig.codec_only`) keeps traces
  byte-identical, timestamps included.

Like ``Testbed(faults=...)`` and ``Testbed(observability=...)`` the
layer is **off by default**: a plain ``Testbed()`` reproduces the
paper-shape numbers byte-for-byte.  ``tests/test_perf_equivalence.py``
is the differential harness proving the enabled layer changes only
simulated latencies — never job outcomes, traces, or final resource
state.  See docs/performance.md.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PerfConfig:
    """Knobs for the hot-path performance layer (all mechanisms default on).

    Constructing a ``PerfConfig()`` and passing it to ``Testbed(perf=...)``
    or ``deploy(..., perf=...)`` enables the layer; ``perf=None`` (the
    default everywhere) keeps the unoptimized paper-shape pipeline.
    """

    #: wrap each service's store in a write-through CachedResourceStore
    state_cache: bool = True
    #: skip the db_save stage when the method did not mutate state
    write_elision: bool = True
    #: coalesce per-subscriber Notifies within this window (0 disables)
    notification_batch_window_s: float = 0.05
    #: reuse one NIS GetProcessors catalog per scheduling pass
    nis_pass_cache: bool = True
    #: attach a content-addressed repro.db.DecodeCache to each service's
    #: store: identical state blobs parse once (wall-clock only)
    codec_decode_cache: bool = True
    #: hang a repro.soap.EnvelopeCache off the network: identical wire
    #: messages parse once, envelopes encode once (wall-clock only)
    codec_envelope_cache: bool = True

    @classmethod
    def codec_only(cls) -> "PerfConfig":
        """Only the wall-clock codec caches — every simulated quantity
        (latencies, message counts, timestamps) stays byte-identical."""
        return cls(
            state_cache=False,
            write_elision=False,
            notification_batch_window_s=0.0,
            nis_pass_cache=False,
            codec_decode_cache=True,
            codec_envelope_cache=True,
        )

    def __post_init__(self) -> None:
        if self.notification_batch_window_s < 0:
            raise ValueError(
                "notification_batch_window_s must be >= 0, got "
                f"{self.notification_batch_window_s!r}"
            )
