"""A small, strict, from-scratch XML parser.

Supports the subset of XML that SOAP messages use: a single root element,
namespace declarations (default and prefixed), attributes, character data
with the five predefined entities plus numeric character references,
comments, processing instructions and CDATA sections.  DTDs are rejected.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.xmlx.element import Element
from repro.xmlx.qname import QName

_ENTITIES = {"lt": "<", "gt": ">", "amp": "&", "quot": '"', "apos": "'"}

_NAME_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_:")
_NAME_CHARS = _NAME_START | set("0123456789.-")
_WHITESPACE = set(" \t\r\n")


class XmlParseError(ValueError):
    """Raised on malformed XML, with the byte offset of the problem."""

    def __init__(self, message: str, pos: int) -> None:
        super().__init__(f"{message} (at offset {pos})")
        self.pos = pos


class _Scanner:
    __slots__ = ("text", "pos", "length")

    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0
        self.length = len(text)

    def peek(self, count: int = 1) -> str:
        return self.text[self.pos : self.pos + count]

    def advance(self, count: int = 1) -> None:
        self.pos += count

    def at_end(self) -> bool:
        return self.pos >= self.length

    def skip_whitespace(self) -> None:
        while self.pos < self.length and self.text[self.pos] in _WHITESPACE:
            self.pos += 1

    def expect(self, literal: str) -> None:
        if not self.text.startswith(literal, self.pos):
            raise XmlParseError(f"expected {literal!r}", self.pos)
        self.pos += len(literal)

    def read_until(self, literal: str) -> str:
        end = self.text.find(literal, self.pos)
        if end < 0:
            raise XmlParseError(f"unterminated construct, expected {literal!r}", self.pos)
        chunk = self.text[self.pos : end]
        self.pos = end + len(literal)
        return chunk

    def read_name(self) -> str:
        start = self.pos
        if self.at_end() or self.text[self.pos] not in _NAME_START:
            raise XmlParseError("expected a name", self.pos)
        self.pos += 1
        while self.pos < self.length and self.text[self.pos] in _NAME_CHARS:
            self.pos += 1
        return self.text[start : self.pos]


def _decode_entities(raw: str, pos_hint: int) -> str:
    if "&" not in raw:
        return raw
    out: List[str] = []
    i = 0
    while i < len(raw):
        ch = raw[i]
        if ch != "&":
            out.append(ch)
            i += 1
            continue
        end = raw.find(";", i)
        if end < 0:
            raise XmlParseError("unterminated entity reference", pos_hint + i)
        body = raw[i + 1 : end]
        if body.startswith("#x") or body.startswith("#X"):
            out.append(chr(int(body[2:], 16)))
        elif body.startswith("#"):
            out.append(chr(int(body[1:])))
        elif body in _ENTITIES:
            out.append(_ENTITIES[body])
        else:
            raise XmlParseError(f"unknown entity &{body};", pos_hint + i)
        i = end + 1
    return "".join(out)


class _NsScope:
    """A chain of in-scope namespace bindings."""

    __slots__ = ("bindings", "parent")

    def __init__(self, bindings: Dict[str, str], parent: Optional["_NsScope"]) -> None:
        self.bindings = bindings
        self.parent = parent

    def resolve(self, prefix: str) -> Optional[str]:
        scope: Optional[_NsScope] = self
        while scope is not None:
            if prefix in scope.bindings:
                return scope.bindings[prefix]
            scope = scope.parent
        return None


def _split_qname(raw: str, scope: _NsScope, pos: int, is_attr: bool) -> QName:
    if ":" in raw:
        prefix, local = raw.split(":", 1)
        uri = scope.resolve(prefix)
        if uri is None:
            raise XmlParseError(f"unbound namespace prefix {prefix!r}", pos)
        return QName(uri, local)
    if is_attr:
        # Per the namespaces spec, unprefixed attributes are in no namespace.
        return QName("", raw)
    default = scope.resolve("")
    return QName(default or "", raw)


def parse(text: str) -> Element:
    """Parse *text* and return the root :class:`Element`."""
    scanner = _Scanner(text)
    _skip_misc(scanner, allow_decl=True)
    if scanner.at_end() or scanner.peek() != "<":
        raise XmlParseError("expected root element", scanner.pos)
    root = _parse_element(scanner, _NsScope({"xml": "http://www.w3.org/XML/1998/namespace"}, None))
    _skip_misc(scanner, allow_decl=False)
    if not scanner.at_end():
        raise XmlParseError("content after document root", scanner.pos)
    return root


def _skip_misc(scanner: _Scanner, allow_decl: bool) -> None:
    while True:
        scanner.skip_whitespace()
        if scanner.peek(4) == "<!--":
            scanner.advance(4)
            scanner.read_until("-->")
        elif scanner.peek(2) == "<?":
            if not allow_decl and scanner.peek(5).lower() == "<?xml":
                raise XmlParseError("misplaced XML declaration", scanner.pos)
            scanner.advance(2)
            scanner.read_until("?>")
        elif scanner.peek(9).upper() == "<!DOCTYPE":
            raise XmlParseError("DTDs are not supported", scanner.pos)
        else:
            return


def _parse_attributes(
    scanner: _Scanner,
) -> Tuple[List[Tuple[str, str, int]], Dict[str, str], bool, bool]:
    """Read attributes; returns (raw attrs, xmlns bindings, empty?, ...)."""
    raw_attrs: List[Tuple[str, str, int]] = []
    ns_bindings: Dict[str, str] = {}
    while True:
        scanner.skip_whitespace()
        nxt = scanner.peek()
        if nxt == ">":
            scanner.advance()
            return raw_attrs, ns_bindings, False, True
        if scanner.peek(2) == "/>":
            scanner.advance(2)
            return raw_attrs, ns_bindings, True, True
        pos = scanner.pos
        name = scanner.read_name()
        scanner.skip_whitespace()
        scanner.expect("=")
        scanner.skip_whitespace()
        quote = scanner.peek()
        if quote not in ("'", '"'):
            raise XmlParseError("attribute value must be quoted", scanner.pos)
        scanner.advance()
        value = _decode_entities(scanner.read_until(quote), pos)
        if name == "xmlns":
            ns_bindings[""] = value
        elif name.startswith("xmlns:"):
            ns_bindings[name[6:]] = value
        else:
            raw_attrs.append((name, value, pos))


def _parse_element(scanner: _Scanner, scope: _NsScope) -> Element:
    scanner.expect("<")
    tag_pos = scanner.pos
    raw_tag = scanner.read_name()
    raw_attrs, ns_bindings, is_empty, _ = _parse_attributes(scanner)
    if ns_bindings:
        scope = _NsScope(ns_bindings, scope)
    element = Element(_split_qname(raw_tag, scope, tag_pos, is_attr=False))
    for name, value, pos in raw_attrs:
        qname = _split_qname(name, scope, pos, is_attr=True)
        if qname in element.attrib:
            raise XmlParseError(f"duplicate attribute {qname}", pos)
        element.attrib[qname] = value
    if is_empty:
        return element

    _parse_content(scanner, element, scope, raw_tag)
    return element


def _parse_content(scanner: _Scanner, element: Element, scope: _NsScope, raw_tag: str) -> None:
    text_parts: List[str] = []
    last_child: Optional[Element] = None

    def flush_text() -> None:
        nonlocal last_child
        if not text_parts:
            return
        chunk = "".join(text_parts)
        text_parts.clear()
        if last_child is None:
            element.text += chunk
        else:
            last_child.tail += chunk

    while True:
        if scanner.at_end():
            raise XmlParseError(f"unterminated element <{raw_tag}>", scanner.pos)
        if scanner.peek() == "<":
            if scanner.peek(2) == "</":
                flush_text()
                scanner.advance(2)
                end_tag = scanner.read_name()
                if end_tag != raw_tag:
                    raise XmlParseError(
                        f"mismatched end tag </{end_tag}>, expected </{raw_tag}>",
                        scanner.pos,
                    )
                scanner.skip_whitespace()
                scanner.expect(">")
                return
            if scanner.peek(4) == "<!--":
                scanner.advance(4)
                scanner.read_until("-->")
                continue
            if scanner.peek(9) == "<![CDATA[":
                scanner.advance(9)
                text_parts.append(scanner.read_until("]]>"))
                continue
            if scanner.peek(2) == "<?":
                scanner.advance(2)
                scanner.read_until("?>")
                continue
            flush_text()
            last_child = _parse_element(scanner, scope)
            element.children.append(last_child)
            continue
        start = scanner.pos
        end = scanner.text.find("<", start)
        if end < 0:
            raise XmlParseError(f"unterminated element <{raw_tag}>", start)
        text_parts.append(_decode_entities(scanner.text[start:end], start))
        scanner.pos = end
