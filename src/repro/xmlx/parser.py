"""A small, strict, from-scratch XML parser.

Supports the subset of XML that SOAP messages use: a single root element,
namespace declarations (default and prefixed), attributes, character data
with the five predefined entities plus numeric character references,
comments, processing instructions and CDATA sections.  DTDs are rejected.

The scanner is written for the wall-clock hot path (docs/performance.md,
"Codec fast path"): it indexes into the input instead of allocating
``peek`` substrings, and resolved names go through the bounded
:meth:`QName.of` intern table so a document that repeats the same ~40
qualified names thousands of times allocates each exactly once.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.xmlx.element import Element
from repro.xmlx.qname import QName

_ENTITIES = {"lt": "<", "gt": ">", "amp": "&", "quot": '"', "apos": "'"}

# Note ``:`` is deliberately NOT a name-start character: a name may carry at
# most one colon (prefix separator), never leading or trailing (read_name).
_NAME_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_NAME_CHARS = _NAME_START | set("0123456789.-:")
#: one C-level scan per name instead of a per-character Python loop
_NAME_RE = re.compile(r"[A-Za-z_][A-Za-z0-9._:\-]*")
_WHITESPACE = set(" \t\r\n")
_HEX_DIGITS = set("0123456789abcdefABCDEF")


class XmlParseError(ValueError):
    """Raised on malformed XML, with the byte offset of the problem."""

    def __init__(self, message: str, pos: int) -> None:
        super().__init__(f"{message} (at offset {pos})")
        self.pos = pos


class _Scanner:
    __slots__ = ("text", "pos", "length")

    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0
        self.length = len(text)

    def peek(self, count: int = 1) -> str:
        return self.text[self.pos : self.pos + count]

    def advance(self, count: int = 1) -> None:
        self.pos += count

    def at_end(self) -> bool:
        return self.pos >= self.length

    def skip_whitespace(self) -> None:
        text, pos, length = self.text, self.pos, self.length
        while pos < length and text[pos] in _WHITESPACE:
            pos += 1
        self.pos = pos

    def expect(self, literal: str) -> None:
        if not self.text.startswith(literal, self.pos):
            raise XmlParseError(f"expected {literal!r}", self.pos)
        self.pos += len(literal)

    def read_until(self, literal: str) -> str:
        end = self.text.find(literal, self.pos)
        if end < 0:
            raise XmlParseError(f"unterminated construct, expected {literal!r}", self.pos)
        chunk = self.text[self.pos : end]
        self.pos = end + len(literal)
        return chunk

    def read_name(self) -> str:
        start = self.pos
        match = _NAME_RE.match(self.text, start)
        if match is None:
            raise XmlParseError("expected a name", start)
        name = match.group()
        colon = name.find(":")
        if colon >= 0:
            second = name.find(":", colon + 1)
            if second >= 0:
                raise XmlParseError("multiple colons in name", start + second)
            if colon == len(name) - 1:
                raise XmlParseError("name must not end with a colon", start + colon)
        self.pos = match.end()
        return name


def _decode_char_reference(body: str, pos: int) -> str:
    if body[1:2] in ("x", "X"):
        digits = body[2:]
        if not digits or any(c not in _HEX_DIGITS for c in digits):
            raise XmlParseError(f"malformed character reference &{body};", pos)
        code = int(digits, 16)
    else:
        digits = body[1:]
        if not digits or not digits.isascii() or not digits.isdigit():
            raise XmlParseError(f"malformed character reference &{body};", pos)
        code = int(digits)
    if code > 0x10FFFF:
        raise XmlParseError(f"character reference &{body}; is beyond U+10FFFF", pos)
    if 0xD800 <= code <= 0xDFFF:
        raise XmlParseError(f"character reference &{body}; is a surrogate code point", pos)
    return chr(code)


def _decode_entities(raw: str, pos_hint: int) -> str:
    if "&" not in raw:
        return raw
    out: List[str] = []
    i = 0
    length = len(raw)
    while i < length:
        ch = raw[i]
        if ch != "&":
            out.append(ch)
            i += 1
            continue
        end = raw.find(";", i)
        if end < 0:
            raise XmlParseError("unterminated entity reference", pos_hint + i)
        body = raw[i + 1 : end]
        if body.startswith("#"):
            out.append(_decode_char_reference(body, pos_hint + i))
        elif body in _ENTITIES:
            out.append(_ENTITIES[body])
        else:
            raise XmlParseError(f"unknown entity &{body};", pos_hint + i)
        i = end + 1
    return "".join(out)


class _NsScope:
    """A chain of in-scope namespace bindings."""

    __slots__ = ("bindings", "parent", "elem_memo", "attr_memo")

    def __init__(self, bindings: Dict[str, str], parent: Optional["_NsScope"]) -> None:
        self.bindings = bindings
        self.parent = parent
        # Resolved-name memos: SOAP documents hoist all declarations to
        # the root, so one scope serves the whole tree and the same ~40
        # raw names resolve thousands of times.  Scoped per _NsScope, so
        # re-declared prefixes deeper in the tree can never be poisoned
        # by an ancestor's resolution.
        self.elem_memo: Dict[str, QName] = {}
        self.attr_memo: Dict[str, QName] = {}

    def resolve(self, prefix: str) -> Optional[str]:
        scope: Optional[_NsScope] = self
        while scope is not None:
            if prefix in scope.bindings:
                return scope.bindings[prefix]
            scope = scope.parent
        return None


def _split_qname(raw: str, scope: _NsScope, pos: int, is_attr: bool) -> QName:
    memo = scope.attr_memo if is_attr else scope.elem_memo
    qname = memo.get(raw)
    if qname is not None:
        return qname
    colon = raw.find(":")
    if colon >= 0:
        prefix = raw[:colon]
        uri = scope.resolve(prefix)
        if uri is None:
            raise XmlParseError(f"unbound namespace prefix {prefix!r}", pos)
        qname = QName.of(uri, raw[colon + 1 :])
    elif is_attr:
        # Per the namespaces spec, unprefixed attributes are in no namespace.
        qname = QName.of("", raw)
    else:
        default = scope.resolve("")
        qname = QName.of(default or "", raw)
    memo[raw] = qname
    return qname


def _is_xml_decl(text: str, pos: int) -> bool:
    """True when ``text[pos:]`` starts an XML declaration (not a mere
    ``<?xml-stylesheet ...?>`` PI, whose target merely *starts* with xml)."""
    if text[pos : pos + 5].lower() != "<?xml":
        return False
    nxt = text[pos + 5 : pos + 6]
    return nxt == "" or nxt == "?" or nxt in _WHITESPACE


def parse(text: str) -> Element:
    """Parse *text* and return the root :class:`Element`."""
    scanner = _Scanner(text)
    # An XML declaration is legal only as the very first bytes of the
    # document — consume it here, and let _skip_misc reject any other.
    if _is_xml_decl(text, 0):
        scanner.advance(2)
        scanner.read_until("?>")
    _skip_misc(scanner)
    if scanner.at_end() or text[scanner.pos] != "<":
        raise XmlParseError("expected root element", scanner.pos)
    root = _parse_element(scanner, _NsScope({"xml": "http://www.w3.org/XML/1998/namespace"}, None))
    _skip_misc(scanner)
    if not scanner.at_end():
        raise XmlParseError("content after document root", scanner.pos)
    return root


def _skip_misc(scanner: _Scanner) -> None:
    text = scanner.text
    while True:
        scanner.skip_whitespace()
        pos = scanner.pos
        if text.startswith("<!--", pos):
            scanner.pos = pos + 4
            scanner.read_until("-->")
        elif text.startswith("<?", pos):
            if _is_xml_decl(text, pos):
                raise XmlParseError("misplaced XML declaration", pos)
            scanner.pos = pos + 2
            scanner.read_until("?>")
        elif text[pos : pos + 9].upper() == "<!DOCTYPE":
            raise XmlParseError("DTDs are not supported", pos)
        else:
            return


def _parse_attributes(
    scanner: _Scanner,
) -> Tuple[List[Tuple[str, str, int]], Dict[str, str], bool, bool]:
    """Read attributes; returns (raw attrs, xmlns bindings, empty?, ...)."""
    raw_attrs: List[Tuple[str, str, int]] = []
    ns_bindings: Dict[str, str] = {}
    text, length = scanner.text, scanner.length
    while True:
        scanner.skip_whitespace()
        pos = scanner.pos
        ch = text[pos] if pos < length else ""
        if ch == ">":
            scanner.pos = pos + 1
            return raw_attrs, ns_bindings, False, True
        if ch == "/" and text.startswith("/>", pos):
            scanner.pos = pos + 2
            return raw_attrs, ns_bindings, True, True
        name = scanner.read_name()
        scanner.skip_whitespace()
        if scanner.pos >= length or text[scanner.pos] != "=":
            raise XmlParseError("expected '='", scanner.pos)
        scanner.pos += 1
        scanner.skip_whitespace()
        quote = text[scanner.pos] if scanner.pos < length else ""
        if quote not in ("'", '"'):
            raise XmlParseError("attribute value must be quoted", scanner.pos)
        scanner.pos += 1
        value = _decode_entities(scanner.read_until(quote), pos)
        if name == "xmlns":
            ns_bindings[""] = value
        elif name.startswith("xmlns:"):
            ns_bindings[name[6:]] = value
        else:
            raw_attrs.append((name, value, pos))


def _parse_element(scanner: _Scanner, scope: _NsScope) -> Element:
    # Every caller has already seen "<" at the cursor.
    scanner.pos += 1
    tag_pos = scanner.pos
    raw_tag = scanner.read_name()
    text = scanner.text
    # Fast path: most SOAP elements carry no attributes at all — dodge
    # the attribute loop and its per-element list/dict allocations.
    pos = scanner.pos
    nxt = text[pos] if pos < scanner.length else ""
    if nxt == ">":
        scanner.pos = pos + 1
        raw_attrs = None
        is_empty = False
    elif nxt == "/" and text.startswith("/>", pos):
        scanner.pos = pos + 2
        raw_attrs = None
        is_empty = True
    else:
        raw_attrs, ns_bindings, is_empty, _ = _parse_attributes(scanner)
        if ns_bindings:
            scope = _NsScope(ns_bindings, scope)
    # __new__ skips Element.__init__'s NameLike normalization — the
    # parser always holds an interned QName already.
    element = Element.__new__(Element)
    element.tag = _split_qname(raw_tag, scope, tag_pos, is_attr=False)
    element.attrib = {}
    element.text = ""
    element.tail = ""
    element.children = []
    if raw_attrs:
        attrib = element.attrib
        for name, value, pos in raw_attrs:
            qname = _split_qname(name, scope, pos, is_attr=True)
            if qname in attrib:
                raise XmlParseError(f"duplicate attribute {qname}", pos)
            attrib[qname] = value
    if is_empty:
        return element

    _parse_content(scanner, element, scope, raw_tag)
    return element


def _parse_content(scanner: _Scanner, element: Element, scope: _NsScope, raw_tag: str) -> None:
    text_parts: List[str] = []
    last_child: Optional[Element] = None
    text, length = scanner.text, scanner.length

    def flush_text() -> None:
        nonlocal last_child
        if not text_parts:
            return
        chunk = "".join(text_parts)
        text_parts.clear()
        if last_child is None:
            element.text += chunk
        else:
            last_child.tail += chunk

    while True:
        pos = scanner.pos
        if pos >= length:
            raise XmlParseError(f"unterminated element <{raw_tag}>", pos)
        if text[pos] == "<":
            nxt = text[pos + 1] if pos + 1 < length else ""
            if nxt == "/":
                flush_text()
                # Fast path: "</tag>" with no interior whitespace — one
                # startswith plus one char test instead of a name scan.
                close = pos + 2 + len(raw_tag)
                if (close < length and text[close] == ">"
                        and text.startswith(raw_tag, pos + 2)):
                    scanner.pos = close + 1
                    return
                scanner.pos = pos + 2
                end_tag = scanner.read_name()
                if end_tag != raw_tag:
                    raise XmlParseError(
                        f"mismatched end tag </{end_tag}>, expected </{raw_tag}>",
                        scanner.pos,
                    )
                scanner.skip_whitespace()
                if scanner.pos >= length or text[scanner.pos] != ">":
                    raise XmlParseError("expected '>'", scanner.pos)
                scanner.pos += 1
                return
            if nxt == "!":
                if text.startswith("<!--", pos):
                    scanner.pos = pos + 4
                    scanner.read_until("-->")
                    continue
                if text.startswith("<![CDATA[", pos):
                    scanner.pos = pos + 9
                    text_parts.append(scanner.read_until("]]>"))
                    continue
            elif nxt == "?":
                scanner.pos = pos + 2
                scanner.read_until("?>")
                continue
            flush_text()
            last_child = _parse_element(scanner, scope)
            element.children.append(last_child)
            continue
        end = text.find("<", pos)
        if end < 0:
            raise XmlParseError(f"unterminated element <{raw_tag}>", pos)
        text_parts.append(_decode_entities(text[pos:end], pos))
        scanner.pos = end
