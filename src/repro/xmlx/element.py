"""The XML tree node."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Union

from repro.xmlx.qname import QName

NameLike = Union[QName, str]


def _qname(name: NameLike) -> QName:
    # of_clark interns: tag/attr lookups by string hit a bounded cache
    # instead of re-parsing Clark notation on every call.
    return name if isinstance(name, QName) else QName.of_clark(name)


class Element:
    """A mutable XML element: tag, attributes, text and child elements.

    The content model is simplified relative to full XML: an element holds
    leading character data (``text``) plus a list of child elements, each
    optionally followed by character data (``tail``).  This mirrors the
    subset SOAP messages actually use.
    """

    __slots__ = ("tag", "attrib", "text", "tail", "children")

    def __init__(
        self,
        tag: NameLike,
        attrib: Optional[Dict[NameLike, str]] = None,
        text: str = "",
    ) -> None:
        self.tag = _qname(tag)
        self.attrib: Dict[QName, str] = {}
        if attrib:
            for key, value in attrib.items():
                self.attrib[_qname(key)] = str(value)
        self.text = text
        self.tail = ""
        self.children: List["Element"] = []

    # -- construction --------------------------------------------------------

    def append(self, child: "Element") -> "Element":
        if not isinstance(child, Element):
            raise TypeError(f"append() requires an Element, got {child!r}")
        self.children.append(child)
        return child

    def extend(self, children) -> None:
        for child in children:
            self.append(child)

    def subelement(self, tag: NameLike, text: str = "", **attrib) -> "Element":
        """Create, append and return a child element."""
        child = Element(tag, text=text)
        for key, value in attrib.items():
            child.attrib[QName(key)] = str(value)
        return self.append(child)

    def set(self, name: NameLike, value: str) -> None:
        self.attrib[_qname(name)] = str(value)

    def get(self, name: NameLike, default: Optional[str] = None) -> Optional[str]:
        return self.attrib.get(_qname(name), default)

    # -- navigation -----------------------------------------------------------

    def __iter__(self) -> Iterator["Element"]:
        return iter(self.children)

    def __len__(self) -> int:
        return len(self.children)

    def find(self, tag: NameLike) -> Optional["Element"]:
        """First direct child with the given tag, or None."""
        want = _qname(tag)
        for child in self.children:
            if child.tag == want:
                return child
        return None

    def findall(self, tag: NameLike) -> List["Element"]:
        want = _qname(tag)
        return [child for child in self.children if child.tag == want]

    def require(self, tag: NameLike) -> "Element":
        """Like :meth:`find` but raises :class:`KeyError` when absent."""
        found = self.find(tag)
        if found is None:
            raise KeyError(f"element {self.tag} has no child {_qname(tag)}")
        return found

    def iter(self, tag: Optional[NameLike] = None) -> Iterator["Element"]:
        """Depth-first iterator over this element and all descendants."""
        want = _qname(tag) if tag is not None else None
        if want is None or self.tag == want:
            yield self
        for child in self.children:
            yield from child.iter(tag)

    def child_text(self, tag: NameLike, default: Optional[str] = None) -> Optional[str]:
        found = self.find(tag)
        return found.full_text() if found is not None else default

    def full_text(self) -> str:
        """All character data in document order (text + descendants + tails)."""
        parts = [self.text]
        for child in self.children:
            parts.append(child.full_text())
            parts.append(child.tail)
        return "".join(parts)

    # -- utilities ------------------------------------------------------------

    def copy(self) -> "Element":
        """Deep copy."""
        # __new__ skips __init__'s NameLike normalization — self.tag is
        # already a QName, and copy() sits on the codec-cache hot path.
        clone = Element.__new__(Element)
        clone.tag = self.tag
        clone.attrib = dict(self.attrib)
        clone.text = self.text
        clone.tail = self.tail
        clone.children = [child.copy() for child in self.children]
        return clone

    def equals(self, other: "Element") -> bool:
        """Structural equality (tag, attributes, text, children)."""
        if not isinstance(other, Element):
            return False
        return (
            self.tag == other.tag
            and self.attrib == other.attrib
            and self.text == other.text
            and len(self.children) == len(other.children)
            and all(a.equals(b) for a, b in zip(self.children, other.children))
        )

    def size_bytes(self) -> int:
        """Approximate serialized size; used for simulated wire accounting."""
        from repro.xmlx.writer import to_string

        return len(to_string(self).encode("utf-8"))

    def __repr__(self) -> str:
        return f"<Element {self.tag.clark()} children={len(self.children)}>"
