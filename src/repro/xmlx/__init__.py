"""Minimal XML infoset implemented from scratch.

All SOAP traffic in the simulated grid is *really* serialized to XML text
and re-parsed at the receiving host, just as the paper's ASP.NET services
do, so the cost structure and the header-driven dispatch that WSRF relies
on (WS-Addressing ``<To>`` header carrying the EndpointReference) are
exercised on every hop.

The pieces:

``QName``         namespace-qualified names
``NS``            namespace URI constants for every spec the paper uses
``Element``       the tree node (tag, attributes, text, children)
``to_string``     namespace-aware serializer
``parse``         a small, strict, from-scratch XML parser
``xpath_select``  the XPath-lite engine behind QueryResourceProperties
"""

from repro.xmlx.qname import NS, QName
from repro.xmlx.element import Element
from repro.xmlx.writer import to_string
from repro.xmlx.parser import XmlParseError, parse
from repro.xmlx.xpath import XPathError, xpath_select

__all__ = [
    "Element",
    "NS",
    "QName",
    "XPathError",
    "XmlParseError",
    "parse",
    "to_string",
    "xpath_select",
]
