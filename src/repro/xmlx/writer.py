"""Namespace-aware XML serializer."""

from __future__ import annotations

import re
from typing import Dict, List, Tuple

from repro.xmlx.element import Element
from repro.xmlx.qname import NS, QName

_TEXT_ESCAPES = [("&", "&amp;"), ("<", "&lt;"), (">", "&gt;")]
_ATTR_ESCAPES = _TEXT_ESCAPES + [('"', "&quot;")]

# Most values carry no markup characters; one C-level scan decides
# whether any replace() allocations are needed at all.
_TEXT_NEEDS_ESCAPE = re.compile(r"[&<>]").search
_ATTR_NEEDS_ESCAPE = re.compile(r'[&<>"]').search


def escape_text(value: str) -> str:
    if _TEXT_NEEDS_ESCAPE(value) is None:
        return value
    if "&" in value:
        value = value.replace("&", "&amp;")
    if "<" in value:
        value = value.replace("<", "&lt;")
    if ">" in value:
        value = value.replace(">", "&gt;")
    return value


def escape_attr(value: str) -> str:
    if _ATTR_NEEDS_ESCAPE(value) is None:
        return value
    value = escape_text(value)
    if '"' in value:
        value = value.replace('"', "&quot;")
    return value


class _PrefixAllocator:
    """Assigns stable prefixes to namespace URIs within one document."""

    def __init__(self) -> None:
        self._by_uri: Dict[str, str] = {}
        self._used = set()
        self._counter = 0
        #: memoized "prefix:local" strings — prefixes are stable within
        #: one document, so each distinct QName is formatted once
        self._name_memo: Dict[QName, str] = {}
        #: memoized ("<prefix:local", "</prefix:local>") tag fragments
        self._tag_memo: Dict[QName, Tuple[str, str]] = {}

    def prefix_for(self, uri: str) -> str:
        prefix = self._by_uri.get(uri)
        if prefix is not None:
            return prefix
        preferred = NS.PREFERRED_PREFIXES.get(uri)
        if preferred and preferred not in self._used:
            prefix = preferred
        else:
            while True:
                candidate = f"ns{self._counter}"
                self._counter += 1
                if candidate not in self._used:
                    prefix = candidate
                    break
        self._by_uri[uri] = prefix
        self._used.add(prefix)
        return prefix

    def declarations(self) -> List[str]:
        return [
            f'xmlns:{prefix}="{escape_attr(uri)}"'
            for uri, prefix in sorted(self._by_uri.items(), key=lambda kv: kv[1])
        ]


def _collect_uris(element: Element, allocator: _PrefixAllocator) -> None:
    if element.tag.uri:
        allocator.prefix_for(element.tag.uri)
    for name in element.attrib:
        if name.uri:
            allocator.prefix_for(name.uri)
    for child in element.children:
        _collect_uris(child, allocator)


def to_string(root: Element, xml_declaration: bool = False, indent: bool = False) -> str:
    """Serialize *root* to XML text.

    All namespace declarations are hoisted to the root element (the style
    ASP.NET uses for SOAP envelopes), which keeps prefixes stable and the
    output easy to diff in tests.
    """
    allocator = _PrefixAllocator()
    _collect_uris(root, allocator)
    out: List[str] = []
    if xml_declaration:
        out.append('<?xml version="1.0" encoding="utf-8"?>')
        if indent:
            out.append("\n")
    if indent:
        _write(root, allocator, out, root_decls=allocator.declarations(), indent=True, depth=0)
    else:
        _write_compact(root, allocator, out, allocator.declarations())
    return "".join(out)


def _name(qname: QName, allocator: _PrefixAllocator) -> str:
    memo = allocator._name_memo
    formatted = memo.get(qname)
    if formatted is None:
        if not qname.uri:
            formatted = qname.local
        else:
            formatted = f"{allocator.prefix_for(qname.uri)}:{qname.local}"
        memo[qname] = formatted
    return formatted


def _write_compact(
    element: Element,
    allocator: _PrefixAllocator,
    out: List[str],
    root_decls=None,
) -> None:
    """Non-indented serialization — the wire-format hot path.

    Same output as ``_write(indent=False)``; start/end tag fragments are
    memoized per QName so repeated names cost two dict hits, not string
    formatting.
    """
    memo = allocator._tag_memo
    tag = element.tag
    parts = memo.get(tag)
    if parts is None:
        name = _name(tag, allocator)
        parts = ("<" + name, "</" + name + ">")
        memo[tag] = parts
    out.append(parts[0])
    if root_decls:
        for decl in root_decls:
            out.append(" " + decl)
    if element.attrib:
        for name, value in element.attrib.items():
            out.append(f' {_name(name, allocator)}="{escape_attr(value)}"')
    text = element.text
    children = element.children
    if not text and not children:
        out.append(" />")
        return
    out.append(">")
    if text:
        out.append(escape_text(text))
    for child in children:
        _write_compact(child, allocator, out)
        if child.tail:
            out.append(escape_text(child.tail))
    out.append(parts[1])


def _write(
    element: Element,
    allocator: _PrefixAllocator,
    out: List[str],
    root_decls=None,
    indent: bool = False,
    depth: int = 0,
) -> None:
    pad = "  " * depth if indent else ""
    tag = _name(element.tag, allocator)
    out.append(f"{pad}<{tag}")
    if root_decls:
        for decl in root_decls:
            out.append(f" {decl}")
    for name, value in element.attrib.items():
        out.append(f' {_name(name, allocator)}="{escape_attr(value)}"')
    if not element.text and not element.children:
        out.append(" />")
        if indent:
            out.append("\n")
        return
    out.append(">")
    if element.text:
        out.append(escape_text(element.text))
    if element.children:
        if indent and not element.text:
            out.append("\n")
        for child in element.children:
            _write(child, allocator, out, indent=indent and not element.text, depth=depth + 1)
            if child.tail:
                out.append(escape_text(child.tail))
        if indent and not element.text:
            out.append(pad)
    out.append(f"</{tag}>")
    if indent:
        out.append("\n")
