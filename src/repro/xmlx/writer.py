"""Namespace-aware XML serializer."""

from __future__ import annotations

from typing import Dict, List

from repro.xmlx.element import Element
from repro.xmlx.qname import NS, QName

_TEXT_ESCAPES = [("&", "&amp;"), ("<", "&lt;"), (">", "&gt;")]
_ATTR_ESCAPES = _TEXT_ESCAPES + [('"', "&quot;")]


def escape_text(value: str) -> str:
    for raw, esc in _TEXT_ESCAPES:
        value = value.replace(raw, esc)
    return value


def escape_attr(value: str) -> str:
    for raw, esc in _ATTR_ESCAPES:
        value = value.replace(raw, esc)
    return value


class _PrefixAllocator:
    """Assigns stable prefixes to namespace URIs within one document."""

    def __init__(self) -> None:
        self._by_uri: Dict[str, str] = {}
        self._used = set()
        self._counter = 0

    def prefix_for(self, uri: str) -> str:
        prefix = self._by_uri.get(uri)
        if prefix is not None:
            return prefix
        preferred = NS.PREFERRED_PREFIXES.get(uri)
        if preferred and preferred not in self._used:
            prefix = preferred
        else:
            while True:
                candidate = f"ns{self._counter}"
                self._counter += 1
                if candidate not in self._used:
                    prefix = candidate
                    break
        self._by_uri[uri] = prefix
        self._used.add(prefix)
        return prefix

    def declarations(self) -> List[str]:
        return [
            f'xmlns:{prefix}="{escape_attr(uri)}"'
            for uri, prefix in sorted(self._by_uri.items(), key=lambda kv: kv[1])
        ]


def _collect_uris(element: Element, allocator: _PrefixAllocator) -> None:
    if element.tag.uri:
        allocator.prefix_for(element.tag.uri)
    for name in element.attrib:
        if name.uri:
            allocator.prefix_for(name.uri)
    for child in element.children:
        _collect_uris(child, allocator)


def to_string(root: Element, xml_declaration: bool = False, indent: bool = False) -> str:
    """Serialize *root* to XML text.

    All namespace declarations are hoisted to the root element (the style
    ASP.NET uses for SOAP envelopes), which keeps prefixes stable and the
    output easy to diff in tests.
    """
    allocator = _PrefixAllocator()
    _collect_uris(root, allocator)
    out: List[str] = []
    if xml_declaration:
        out.append('<?xml version="1.0" encoding="utf-8"?>')
        if indent:
            out.append("\n")
    _write(root, allocator, out, root_decls=allocator.declarations(), indent=indent, depth=0)
    return "".join(out)


def _name(qname: QName, allocator: _PrefixAllocator) -> str:
    if not qname.uri:
        return qname.local
    return f"{allocator.prefix_for(qname.uri)}:{qname.local}"


def _write(
    element: Element,
    allocator: _PrefixAllocator,
    out: List[str],
    root_decls=None,
    indent: bool = False,
    depth: int = 0,
) -> None:
    pad = "  " * depth if indent else ""
    tag = _name(element.tag, allocator)
    out.append(f"{pad}<{tag}")
    if root_decls:
        for decl in root_decls:
            out.append(f" {decl}")
    for name, value in element.attrib.items():
        out.append(f' {_name(name, allocator)}="{escape_attr(value)}"')
    if not element.text and not element.children:
        out.append(" />")
        if indent:
            out.append("\n")
        return
    out.append(">")
    if element.text:
        out.append(escape_text(element.text))
    if element.children:
        if indent and not element.text:
            out.append("\n")
        for child in element.children:
            _write(child, allocator, out, indent=indent and not element.text, depth=depth + 1)
            if child.tail:
                out.append(escape_text(child.tail))
        if indent and not element.text:
            out.append(pad)
    out.append(f"</{tag}>")
    if indent:
        out.append("\n")
