"""XPath-lite: the query dialect behind QueryResourceProperties.

Supports the subset of XPath 1.0 that the paper's services (and the D-3
state-storage benchmark) need:

- absolute and relative location paths: ``/a/b``, ``a/b``
- descendant-or-self: ``//b``, ``a//b``
- name tests with prefixes (resolved via a caller-supplied namespace map)
  and the ``*`` wildcard
- ``text()`` (returns strings) and ``@attr`` (returns attribute strings)
- predicates: positional ``[2]`` (1-based), existence ``[child]``,
  equality ``[child='v']``, ``[@attr='v']`` and ``[.='v']``

Evaluation returns a list of :class:`Element` nodes or, for ``text()`` /
``@attr`` terminal steps, a list of strings.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

from repro.xmlx.element import Element
from repro.xmlx.qname import QName

Result = Union[Element, str]


class XPathError(ValueError):
    """Raised for unsupported or malformed expressions."""


class _Step:
    __slots__ = ("axis", "test", "predicates")

    def __init__(self, axis: str, test: str, predicates: List[str]) -> None:
        self.axis = axis  # "child" | "descendant"
        self.test = test  # name test, "*", "text()", "@name", "."
        self.predicates = predicates


def _tokenize_path(expression: str) -> tuple[bool, List[_Step]]:
    expr = expression.strip()
    if not expr:
        raise XPathError("empty XPath expression")
    absolute = expr.startswith("/")
    steps: List[_Step] = []
    i = 0
    length = len(expr)
    axis = "child"
    while i < length:
        if expr[i] == "/":
            if expr[i : i + 2] == "//":
                axis = "descendant"
                i += 2
            else:
                axis = "child"
                i += 1
            if i >= length:
                raise XPathError(f"trailing '/' in {expression!r}")
            continue
        start = i
        depth = 0
        while i < length and (depth > 0 or expr[i] != "/"):
            if expr[i] == "[":
                depth += 1
            elif expr[i] == "]":
                depth -= 1
            elif expr[i] in "'\"":
                quote = expr[i]
                i += 1
                while i < length and expr[i] != quote:
                    i += 1
            i += 1
        raw_step = expr[start:i]
        steps.append(_parse_step(raw_step, expression))
        steps[-1].axis = axis
        axis = "child"
    return absolute, steps


def _parse_step(raw: str, whole: str) -> _Step:
    predicates: List[str] = []
    base = raw
    while base.endswith("]"):
        depth = 0
        for idx in range(len(base) - 1, -1, -1):
            ch = base[idx]
            if ch == "]":
                depth += 1
            elif ch == "[":
                depth -= 1
                if depth == 0:
                    predicates.insert(0, base[idx + 1 : -1].strip())
                    base = base[:idx]
                    break
        else:
            raise XPathError(f"unbalanced predicate in {whole!r}")
    base = base.strip()
    if not base:
        raise XPathError(f"empty step in {whole!r}")
    return _Step("child", base, predicates)


def _resolve_test(test: str, namespaces: Optional[Dict[str, str]]) -> Optional[QName]:
    """Resolve a name test to a QName; None for non-name tests."""
    if test in ("*", "text()", "."):
        return None
    if test.startswith("@"):
        return None
    if ":" in test:
        prefix, local = test.split(":", 1)
        if not namespaces or prefix not in namespaces:
            raise XPathError(f"unbound prefix {prefix!r} in XPath name test")
        return QName(namespaces[prefix], local)
    return QName("", test)


def _name_matches(element: Element, test: str, namespaces: Optional[Dict[str, str]]) -> bool:
    if test == "*":
        return True
    want = _resolve_test(test, namespaces)
    if want is None:
        return False
    if want.uri:
        return element.tag == want
    # Unprefixed tests match on local name regardless of namespace — a
    # deliberate convenience (WSRF RP documents live in service namespaces
    # that clients rarely want to spell out in full).
    return element.tag.local == test


def _axis_candidates(node: Element, axis: str) -> List[Element]:
    if axis == "child":
        return list(node.children)
    out: List[Element] = []
    for child in node.children:
        out.extend(child.iter())
    return out


def _eval_predicate(
    pred: str,
    element: Element,
    position: int,
    namespaces: Optional[Dict[str, str]],
) -> bool:
    pred = pred.strip()
    if pred.isdigit():
        return position == int(pred)
    if "=" in pred:
        lhs, rhs = pred.split("=", 1)
        lhs, rhs = lhs.strip(), rhs.strip()
        if not (rhs.startswith("'") and rhs.endswith("'")) and not (
            rhs.startswith('"') and rhs.endswith('"')
        ):
            raise XPathError(f"predicate value must be a quoted string: {pred!r}")
        value = rhs[1:-1]
        if lhs == ".":
            return element.full_text() == value
        if lhs.startswith("@"):
            return element.get(lhs[1:]) == value
        return any(
            child.full_text() == value
            for child in element.children
            if _name_matches(child, lhs, namespaces)
        )
    if pred.startswith("@"):
        return element.get(pred[1:]) is not None
    return any(_name_matches(child, pred, namespaces) for child in element.children)


def xpath_select(
    root: Element,
    expression: str,
    namespaces: Optional[Dict[str, str]] = None,
) -> List[Result]:
    """Evaluate *expression* against *root*.

    For absolute paths the first step is matched against the root element
    itself (document-node semantics).
    """
    absolute, steps = _tokenize_path(expression)
    if absolute:
        first, rest = steps[0], steps[1:]
        if first.test in ("text()",) or first.test.startswith("@"):
            raise XPathError("absolute path must start with an element step")
        if first.axis == "descendant":
            context: List[Element] = [
                el for el in root.iter() if _name_matches(el, first.test, namespaces)
            ]
        elif _name_matches(root, first.test, namespaces):
            context = [root]
        else:
            context = []
        context = _apply_predicates(context, first, namespaces)
        steps = rest
    else:
        context = [root]

    current: List[Result] = list(context)
    for step in steps:
        next_nodes: List[Result] = []
        elements = [node for node in current if isinstance(node, Element)]
        if step.test == "text()":
            for el in elements:
                text = el.full_text()
                if text:
                    next_nodes.append(text)
            current = next_nodes
            continue
        if step.test.startswith("@"):
            attr = step.test[1:]
            for el in elements:
                value = el.get(attr)
                if value is not None:
                    next_nodes.append(value)
            current = next_nodes
            continue
        if step.test == ".":
            current = list(elements)
            continue
        for el in elements:
            candidates = [
                c
                for c in _axis_candidates(el, step.axis)
                if _name_matches(c, step.test, namespaces)
            ]
            next_nodes.extend(_apply_predicates(candidates, step, namespaces))
        current = next_nodes
    return current


def _apply_predicates(
    candidates: Sequence[Element],
    step: _Step,
    namespaces: Optional[Dict[str, str]],
) -> List[Element]:
    result = list(candidates)
    for pred in step.predicates:
        result = [
            el
            for position, el in enumerate(result, start=1)
            if _eval_predicate(pred, el, position, namespaces)
        ]
    return result
