"""Qualified names and the namespace URIs of every spec the paper uses."""

from __future__ import annotations

from typing import Dict, Optional, Tuple


class NS:
    """Namespace URI constants.

    The WSRF/WSN URIs follow the 2004 draft specifications referenced by
    the paper (the GGF/OASIS drafts WSRF.NET 1.1 implemented).
    """

    SOAP = "http://schemas.xmlsoap.org/soap/envelope/"
    XSD = "http://www.w3.org/2001/XMLSchema"
    XSI = "http://www.w3.org/2001/XMLSchema-instance"
    WSA = "http://schemas.xmlsoap.org/ws/2004/03/addressing"
    WSRF_RP = "http://docs.oasis-open.org/wsrf/2004/06/wsrf-WS-ResourceProperties"
    WSRF_RL = "http://docs.oasis-open.org/wsrf/2004/06/wsrf-WS-ResourceLifetime"
    WSRF_BF = "http://docs.oasis-open.org/wsrf/2004/06/wsrf-WS-BaseFaults"
    WSRF_SG = "http://docs.oasis-open.org/wsrf/2004/06/wsrf-WS-ServiceGroup"
    WSNT = "http://docs.oasis-open.org/wsn/2004/06/wsn-WS-BaseNotification"
    WSTOP = "http://docs.oasis-open.org/wsn/2004/06/wsn-WS-Topics"
    WSBN = "http://docs.oasis-open.org/wsn/2004/06/wsn-WS-BrokeredNotification"
    WSSE = (
        "http://docs.oasis-open.org/wss/2004/01/"
        "oasis-200401-wss-wssecurity-secext-1.0.xsd"
    )
    WSDL = "http://schemas.xmlsoap.org/wsdl/"
    #: the testbed's own application namespace (UVa campus grid services)
    UVACG = "http://www.cs.virginia.edu/~gsw2c/uvacg"

    #: conventional prefixes used by the serializer when none is bound
    PREFERRED_PREFIXES = {
        SOAP: "soap",
        XSD: "xsd",
        XSI: "xsi",
        WSA: "wsa",
        WSRF_RP: "wsrp",
        WSRF_RL: "wsrl",
        WSRF_BF: "wsbf",
        WSRF_SG: "wssg",
        WSNT: "wsnt",
        WSTOP: "wstop",
        WSBN: "wsbn",
        WSSE: "wsse",
        WSDL: "wsdl",
        UVACG: "uva",
    }


class QName:
    """An immutable namespace-qualified name.

    ``QName("ns", "local")`` or ``QName("{ns}local")`` (Clark notation).
    Unqualified names use ``uri=""``.
    """

    __slots__ = ("uri", "local", "_hash")

    def __init__(self, uri_or_clark: str, local: Optional[str] = None) -> None:
        if local is None:
            text = uri_or_clark
            if text.startswith("{"):
                end = text.find("}")
                if end < 0:
                    raise ValueError(f"malformed Clark notation: {text!r}")
                uri, local = text[1:end], text[end + 1 :]
            else:
                uri, local = "", text
        else:
            uri = uri_or_clark
        if not local:
            raise ValueError("QName requires a non-empty local name")
        object.__setattr__(self, "uri", uri)
        object.__setattr__(self, "local", local)
        object.__setattr__(self, "_hash", hash((uri, local)))

    def __setattr__(self, name: str, value) -> None:  # immutability
        raise AttributeError("QName is immutable")

    @classmethod
    def of(cls, uri: str, local: str) -> "QName":
        """Interned constructor: one shared instance per ``(uri, local)``.

        A document mentions the same handful of names thousands of times;
        interning lets the parser and the typed codec reuse one immutable
        instance instead of re-allocating and re-hashing it per mention,
        and lets ``__eq__`` short-circuit on identity.  The table is
        bounded: past ``_INTERN_MAX`` distinct names, ``of`` degrades to a
        plain constructor call (correctness never depends on interning).
        """
        key = (uri, local)
        interned = _INTERN.get(key)
        if interned is None:
            interned = cls(uri, local)
            if len(_INTERN) < _INTERN_MAX:
                _INTERN[key] = interned
        return interned

    @classmethod
    def of_clark(cls, text: str) -> "QName":
        """Interned constructor from Clark notation (``{uri}local``)."""
        interned = _CLARK_INTERN.get(text)
        if interned is None:
            parsed = cls(text)
            interned = cls.of(parsed.uri, parsed.local)
            if len(_CLARK_INTERN) < _INTERN_MAX:
                _CLARK_INTERN[text] = interned
        return interned

    def clark(self) -> str:
        """Clark notation, e.g. ``{http://ns}local``."""
        return f"{{{self.uri}}}{self.local}" if self.uri else self.local

    def __eq__(self, other) -> bool:
        if other is self:  # interned names hit this without touching strings
            return True
        if isinstance(other, QName):
            return self.uri == other.uri and self.local == other.local
        if isinstance(other, str):
            return self == QName(other)
        return NotImplemented

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"QName({self.clark()!r})"

    def __str__(self) -> str:
        return self.clark()


#: bounded intern tables backing :meth:`QName.of` / :meth:`QName.of_clark`.
_INTERN: Dict[Tuple[str, str], QName] = {}
_CLARK_INTERN: Dict[str, QName] = {}
_INTERN_MAX = 4096
