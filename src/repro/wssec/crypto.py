"""Toy cryptographic primitives (structure-preserving, NOT secure)."""

from __future__ import annotations

import hashlib

from repro.wssec.x509 import Certificate, KeyPair


class CryptoError(Exception):
    """Wrong key, corrupted ciphertext, bad signature."""


def _keystream(secret: str, nonce: bytes, length: int) -> bytes:
    out = bytearray()
    counter = 0
    while len(out) < length:
        block = hashlib.sha256(secret.encode() + nonce + counter.to_bytes(4, "big")).digest()
        out.extend(block)
        counter += 1
    return bytes(out[:length])


def encrypt_to(cert: Certificate, plaintext: bytes, nonce: bytes = b"\x00") -> bytes:
    """Encrypt *plaintext* so only the holder of cert's key can read it.

    Toy construction: the ciphertext embeds the recipient key id and an
    integrity tag; decryption verifies both.  (A real stack would use
    XML-Encryption with an RSA-wrapped session key.)
    """
    # The "public" operation only needs the key id; the keystream is
    # derived from it in a way the private holder can reproduce.
    stream = _keystream(f"enc:{cert.key_id}", nonce, len(plaintext))
    body = bytes(a ^ b for a, b in zip(plaintext, stream))
    tag = hashlib.sha256(cert.key_id.encode() + plaintext).digest()[:8]
    header = cert.key_id.encode("ascii") + b"|" + nonce.hex().encode("ascii") + b"|"
    return header + tag + body


def decrypt_for(keys: KeyPair, ciphertext: bytes) -> bytes:
    parts = ciphertext.split(b"|", 2)
    if len(parts) != 3:
        raise CryptoError("malformed ciphertext")
    key_id, nonce_hex, rest = parts
    if key_id.decode("ascii", "replace") != keys.key_id:
        raise CryptoError("ciphertext was not encrypted to this key")
    nonce = bytes.fromhex(nonce_hex.decode("ascii"))
    tag, body = rest[:8], rest[8:]
    stream = _keystream(f"enc:{keys.key_id}", nonce, len(body))
    plaintext = bytes(a ^ b for a, b in zip(body, stream))
    expected = hashlib.sha256(keys.key_id.encode() + plaintext).digest()[:8]
    if tag != expected:
        raise CryptoError("ciphertext integrity check failed")
    return plaintext


def sign(keys: KeyPair, data: bytes) -> str:
    """Toy signature: keyed hash naming the signing key."""
    mac = hashlib.sha256(keys.secret.encode() + data).hexdigest()
    return f"{keys.key_id}:{mac}"


def public_verify(key_id: str, data: bytes, signature: str) -> bool:
    """Verify a signature knowing only the signer's public key id.

    Simulates public-key verification via the module's key directory
    (toy crypto; see package docstring).
    """
    from repro.wssec.x509 import _PUBLIC_KEY_DIRECTORY

    secret = _PUBLIC_KEY_DIRECTORY.get(key_id)
    if secret is None:
        return False
    return verify(KeyPair(key_id=key_id, secret=secret), data, signature)


def verify(keys: KeyPair, data: bytes, signature: str) -> bool:
    """Verify with the *holder's* key pair (toy symmetric check)."""
    try:
        key_id, _ = signature.split(":", 1)
    except ValueError:
        return False
    if key_id != keys.key_id:
        return False
    return signature == sign(keys, data)
