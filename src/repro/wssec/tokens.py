"""The WS-Security UsernameToken password profile header."""

from __future__ import annotations

import base64
from dataclasses import dataclass

from repro.wssec.crypto import CryptoError, decrypt_for, encrypt_to
from repro.wssec.x509 import Certificate, KeyPair
from repro.xmlx import NS, Element, QName

_SECURITY = QName(NS.WSSE, "Security")
_ENC_TOKEN = QName(NS.WSSE, "EncryptedUsernameToken")
_KEY_ID = QName(NS.WSSE, "KeyIdentifier")


class SecurityError(Exception):
    """Missing/undecryptable security header."""


@dataclass(frozen=True)
class UsernameToken:
    """The credentials a job should run under (§4.2)."""

    username: str
    password: str

    def encode(self) -> bytes:
        return f"{self.username}\x00{self.password}".encode("utf-8")

    @classmethod
    def decode(cls, raw: bytes) -> "UsernameToken":
        try:
            username, password = raw.decode("utf-8").split("\x00", 1)
        except ValueError:
            raise SecurityError("malformed UsernameToken payload") from None
        return cls(username=username, password=password)


def build_security_header(token: UsernameToken, service_cert: Certificate) -> Element:
    """Encrypt *token* to the service's certificate inside a wsse header."""
    ciphertext = encrypt_to(service_cert, token.encode())
    header = Element(_SECURITY)
    enc = header.subelement(_ENC_TOKEN, text=base64.b64encode(ciphertext).decode("ascii"))
    enc.subelement(_KEY_ID, text=service_cert.key_id)
    return header


_X509_TOKEN = QName(NS.WSSE, "X509Token")
_SIGNATURE = QName(NS.WSSE, "Signature")
_TIMESTAMP = QName(NS.WSSE, "Timestamp")


def x509_token_element(user_keys, user_cert, timestamp: float) -> Element:
    """The signed X509Token block (attachable to any wsse:Security header)."""
    from repro.wssec.crypto import sign

    timestamp = float(timestamp)
    token = Element(_X509_TOKEN)
    token.append(user_cert.to_xml())
    token.subelement(_TIMESTAMP, text=repr(timestamp))
    payload = f"{user_cert.fingerprint()}|{timestamp!r}".encode()
    token.subelement(_SIGNATURE, text=sign(user_keys, payload))
    return token


def build_x509_security_header(user_keys, user_cert, timestamp: float) -> Element:
    """A GSI-style signed identity token (the GT4 authentication path).

    The holder signs ``fingerprint|timestamp`` with their private key;
    any service can verify the signature publicly and validate the
    certificate against the campus CA, then map the subject to a local
    account via the grid-mapfile (see UserAccounts.map_grid_credential).
    """
    header = Element(_SECURITY)
    header.append(x509_token_element(user_keys, user_cert, timestamp))
    return header


def open_x509_security_header(header: Element, ca, now: float, max_age: float = 300.0):
    """Verify a signed identity token; returns the Certificate.

    Raises :class:`SecurityError` on bad signature, untrusted issuer,
    expiry or replayed (stale) timestamps.
    """
    from repro.wssec.crypto import public_verify
    from repro.wssec.x509 import Certificate, CertificateError

    if header.tag != _SECURITY:
        raise SecurityError(f"not a wsse:Security header: {header.tag}")
    token = header.find(_X509_TOKEN)
    if token is None:
        raise SecurityError("security header lacks an X509Token")
    cert_el = token.find(QName(NS.WSSE, "BinarySecurityToken"))
    if cert_el is None:
        raise SecurityError("X509Token lacks the certificate")
    try:
        cert = Certificate.from_xml(cert_el)
        ca.verify(cert, now=now)
    except CertificateError as exc:
        raise SecurityError(f"certificate rejected: {exc}") from exc
    timestamp_text = token.child_text(_TIMESTAMP)
    signature = token.child_text(_SIGNATURE)
    if timestamp_text is None or signature is None:
        raise SecurityError("X509Token lacks timestamp or signature")
    timestamp = float(timestamp_text)
    if not (now - max_age <= timestamp <= now + 1.0):
        raise SecurityError("X509Token timestamp outside the acceptance window")
    payload = f"{cert.fingerprint()}|{timestamp!r}".encode()
    if not public_verify(cert.key_id, payload, signature):
        raise SecurityError("X509Token signature verification failed")
    return cert


def has_x509_token(header: Element) -> bool:
    return header.tag == _SECURITY and header.find(_X509_TOKEN) is not None


def open_security_header(header: Element, service_keys: KeyPair) -> UsernameToken:
    """Decrypt the UsernameToken from a wsse:Security header."""
    if header.tag != _SECURITY:
        raise SecurityError(f"not a wsse:Security header: {header.tag}")
    enc = header.find(_ENC_TOKEN)
    if enc is None:
        raise SecurityError("security header lacks an EncryptedUsernameToken")
    key_id = enc.child_text(_KEY_ID)
    if key_id is not None and key_id != service_keys.key_id:
        raise SecurityError("token was encrypted to a different service key")
    ciphertext = base64.b64decode(enc.text.encode("ascii"))
    try:
        return UsernameToken.decode(decrypt_for(service_keys, ciphertext))
    except CryptoError as exc:
        raise SecurityError(f"cannot decrypt UsernameToken: {exc}") from exc
