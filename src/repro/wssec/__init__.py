"""Simulated WS-Security.

§4.2 of the paper: "the request to the ES must contain the
username/password of the account in which the job should be executed.
This information is conveyed using a WS-Security password profile SOAP
header, which is then encrypted using the X509 certificate of the
client."  (Reading in context, the header is encrypted *for the service*
so only it can recover the password; we model exactly that: encrypt to
the recipient's certificate, decrypt with its private key.)

**The cryptography here is a simulation**: it preserves the protocol
structure (certificates, key identifiers, who-can-decrypt-what,
signature validation flow) with toy primitives built on SHA-256
keystreams.  It is NOT secure and must never be used outside this
simulator; what it reproduces is the *code path* — header construction,
encryption-by-certificate, decryption and credential extraction at the
Execution Service.
"""

from repro.wssec.x509 import Certificate, CertificateAuthority, CertificateError, KeyPair
from repro.wssec.crypto import (
    CryptoError,
    decrypt_for,
    encrypt_to,
    public_verify,
    sign,
    verify,
)
from repro.wssec.tokens import (
    SecurityError,
    UsernameToken,
    build_security_header,
    build_x509_security_header,
    has_x509_token,
    open_security_header,
    open_x509_security_header,
)

__all__ = [
    "Certificate",
    "CertificateAuthority",
    "CertificateError",
    "CryptoError",
    "KeyPair",
    "SecurityError",
    "UsernameToken",
    "build_security_header",
    "build_x509_security_header",
    "has_x509_token",
    "open_x509_security_header",
    "public_verify",
    "decrypt_for",
    "encrypt_to",
    "open_security_header",
    "sign",
    "verify",
]
