"""Simulated X.509: key pairs, certificates and a certificate authority."""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass
from typing import Dict

_serials = itertools.count(1000)

#: key_id -> secret, consulted by public_verify().  This simulates the
#: asymmetry of real signatures (anyone can verify, only the holder can
#: sign) without real cryptography — see the package docstring.
_PUBLIC_KEY_DIRECTORY: Dict[str, str] = {}


class CertificateError(Exception):
    """Unknown issuer, bad signature, expired certificate."""


@dataclass(frozen=True)
class KeyPair:
    """A toy key pair: the ``key_id`` is public, the ``secret`` private."""

    key_id: str
    secret: str

    @classmethod
    def generate(cls, label: str) -> "KeyPair":
        secret = hashlib.sha256(f"secret:{label}:{next(_serials)}".encode()).hexdigest()
        key_id = hashlib.sha256(f"public:{secret}".encode()).hexdigest()[:16]
        _PUBLIC_KEY_DIRECTORY[key_id] = secret
        return cls(key_id=key_id, secret=secret)


@dataclass(frozen=True)
class Certificate:
    """Binds a subject name to a public key id, signed by an issuer."""

    subject: str
    key_id: str
    issuer: str
    serial: int
    not_after: float  # simulated-time expiry
    signature: str

    def fingerprint(self) -> str:
        return hashlib.sha256(
            f"{self.subject}|{self.key_id}|{self.issuer}|{self.serial}".encode()
        ).hexdigest()[:20]

    def to_xml(self):
        from repro.xmlx import NS, Element, QName

        el = Element(QName(NS.WSSE, "BinarySecurityToken"))
        el.subelement(QName(NS.WSSE, "Subject"), text=self.subject)
        el.subelement(QName(NS.WSSE, "KeyId"), text=self.key_id)
        el.subelement(QName(NS.WSSE, "Issuer"), text=self.issuer)
        el.subelement(QName(NS.WSSE, "Serial"), text=str(self.serial))
        el.subelement(QName(NS.WSSE, "NotAfter"), text=repr(self.not_after))
        el.subelement(QName(NS.WSSE, "CaSignature"), text=self.signature)
        return el

    @classmethod
    def from_xml(cls, el) -> "Certificate":
        from repro.xmlx import NS, QName

        def text(local):
            value = el.child_text(QName(NS.WSSE, local))
            if value is None:
                raise CertificateError(f"certificate XML lacks {local}")
            return value

        return cls(
            subject=text("Subject"),
            key_id=text("KeyId"),
            issuer=text("Issuer"),
            serial=int(text("Serial")),
            not_after=float(text("NotAfter")),
            signature=text("CaSignature"),
        )


class CertificateAuthority:
    """Issues and verifies certificates for the campus grid.

    The testbed runs a single CA (the UVaCG root); every machine and user
    enrolls once, and services verify peer certificates against it.
    """

    def __init__(self, name: str = "UVaCG Root CA") -> None:
        self.name = name
        self._ca_keys = KeyPair.generate(name)
        self._issued: Dict[int, Certificate] = {}
        self._revoked: set = set()

    def _sign_fields(self, subject: str, key_id: str, serial: int, not_after: float) -> str:
        body = f"{subject}|{key_id}|{self.name}|{serial}|{not_after!r}"
        return hashlib.sha256(f"{self._ca_keys.secret}|{body}".encode()).hexdigest()

    def issue(self, subject: str, key_pair: KeyPair, not_after: float = float("inf")) -> Certificate:
        serial = next(_serials)
        cert = Certificate(
            subject=subject,
            key_id=key_pair.key_id,
            issuer=self.name,
            serial=serial,
            not_after=not_after,
            signature=self._sign_fields(subject, key_pair.key_id, serial, not_after),
        )
        self._issued[serial] = cert
        return cert

    def revoke(self, cert: Certificate) -> None:
        self._revoked.add(cert.serial)

    def verify(self, cert: Certificate, now: float = 0.0) -> None:
        """Raise :class:`CertificateError` unless *cert* is valid."""
        if cert.issuer != self.name:
            raise CertificateError(f"unknown issuer {cert.issuer!r}")
        expected = self._sign_fields(cert.subject, cert.key_id, cert.serial, cert.not_after)
        if cert.signature != expected:
            raise CertificateError(f"bad signature on certificate for {cert.subject!r}")
        if cert.serial in self._revoked:
            raise CertificateError(f"certificate for {cert.subject!r} is revoked")
        if now > cert.not_after:
            raise CertificateError(f"certificate for {cert.subject!r} expired")


def enroll(ca: CertificateAuthority, subject: str, not_after: float = float("inf")):
    """Convenience: generate a key pair and an issued certificate."""
    keys = KeyPair.generate(subject)
    return keys, ca.issue(subject, keys, not_after=not_after)
