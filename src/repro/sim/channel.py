"""Unbounded FIFO channel for inter-process message passing.

Modeled after an MPI-style mailbox: any number of producers ``put`` items
(never blocking — the channel is unbounded, matching the paper's one-way
SOAP messages which are fire-and-forget), and consumers ``yield ch.get()``
to receive in FIFO order.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque

from repro.sim.core import Environment, Event


class ChannelClosed(Exception):
    """Failure delivered to getters when the channel closes empty."""


class Channel:
    """FIFO queue of items with event-based ``get``."""

    def __init__(self, env: Environment, name: str = "") -> None:
        self.env = env
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._closed = False

    def __len__(self) -> int:
        return len(self._items)

    @property
    def closed(self) -> bool:
        return self._closed

    def put(self, item: Any) -> None:
        """Enqueue *item*; wakes the oldest waiting getter, if any."""
        if self._closed:
            raise ChannelClosed(f"put() on closed channel {self.name!r}")
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Return an event that fires with the next item."""
        ev = Event(self.env)
        if self._items:
            ev.succeed(self._items.popleft())
        elif self._closed:
            ev.fail(ChannelClosed(f"get() on closed channel {self.name!r}"))
            ev._defused = False
        else:
            self._getters.append(ev)
        return ev

    def try_get(self) -> Any:
        """Non-blocking get; raises :class:`LookupError` when empty."""
        if not self._items:
            raise LookupError(f"channel {self.name!r} is empty")
        return self._items.popleft()

    def close(self) -> None:
        """Close the channel; pending and future getters fail."""
        if self._closed:
            return
        self._closed = True
        while self._getters:
            ev = self._getters.popleft()
            ev.fail(ChannelClosed(f"channel {self.name!r} closed"))
