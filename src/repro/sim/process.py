"""Generator-based simulated processes."""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.sim.core import URGENT, Environment, Event, SimulationError


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`."""

    @property
    def cause(self) -> Any:
        return self.args[0] if self.args else None


class ProcessKilled(Exception):
    """Failure value of a process terminated by :meth:`Process.kill`."""


class Process(Event):
    """A running generator; also a waitable that fires when it returns.

    The generator yields :class:`Event` objects to block; when the awaited
    event succeeds, its value is sent back into the generator, and when it
    fails, the exception is thrown in (so service code can use ordinary
    ``try/except`` around ``yield``).
    """

    __slots__ = ("_generator", "_target", "name")

    def __init__(self, env: Environment, generator: Generator, name: str = "") -> None:
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"process() requires a generator, got {generator!r}")
        super().__init__(env)
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        #: the event this process is currently waiting on
        self._target: Optional[Event] = None
        # Bootstrap: resume the process at the current instant.
        boot = Event(env)
        boot._value = None
        boot._ok = True
        boot.callbacks.append(self._resume)
        env._schedule(boot, priority=URGENT)

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def _resume(self, trigger: Event) -> None:
        env = self.env
        prev, env._active_process = env._active_process, self
        self._target = None
        san = env.san
        if san is not None:
            san.on_resume(self, trigger)
        try:
            while True:
                try:
                    if trigger._ok:
                        target = self._generator.send(trigger._value)
                    else:
                        trigger._defused = True
                        target = self._generator.throw(trigger._value)
                except StopIteration as stop:
                    self.succeed(stop.value)
                    return
                except BaseException as exc:
                    if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                        raise
                    self.fail(exc)
                    return

                if not isinstance(target, Event):
                    err = SimulationError(
                        f"process {self.name!r} yielded a non-event: {target!r}"
                    )
                    # Deliver the misuse back into the generator so tests can
                    # observe it, then fail the process if unhandled.
                    trigger = Event(self.env)
                    trigger._value = err
                    trigger._ok = False
                    continue
                if target.env is not self.env:
                    raise SimulationError("yielded an event from another environment")

                if target.triggered and target.callbacks is None:
                    # Already fully processed: resume synchronously.
                    if san is not None:
                        san.on_join(self, target)
                    trigger = target
                    continue
                self._target = target
                target.add_callback(self._resume)
                return
        finally:
            env._active_process = prev

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current instant."""
        if self.triggered:
            raise SimulationError(f"cannot interrupt finished process {self.name!r}")
        if self is self.env.active_process:
            raise SimulationError("a process cannot interrupt itself")
        # Detach from whatever it awaits, then schedule a failing resume.
        target = self._target
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._target = None
        hit = Event(self.env)
        hit._value = Interrupt(cause)
        hit._ok = False
        hit._defused = True
        hit.callbacks.append(self._resume)
        self.env._schedule(hit, priority=URGENT)

    def kill(self, reason: str = "killed") -> None:
        """Terminate the process immediately; it fails with ProcessKilled.

        Unlike :meth:`interrupt`, the generator gets no chance to clean up
        via ``except`` — ``GeneratorExit`` is raised at the suspension point
        (running ``finally`` blocks), mirroring hard process termination.
        """
        if self.triggered:
            return
        target = self._target
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._target = None
        self._generator.close()
        exc = ProcessKilled(reason)
        self._value = exc
        self._ok = False
        self._defused = True
        self.env._schedule(self, priority=URGENT)
