"""Synchronization primitives for simulated processes."""

from __future__ import annotations

from collections import deque
from typing import Deque

from repro.sim.core import Environment, Event


class Lock:
    """A FIFO mutex for simulation coroutines.

    Usage::

        yield lock.acquire()
        try:
            ...
        finally:
            lock.release()
    """

    def __init__(self, env: Environment) -> None:
        self.env = env
        self._locked = False
        self._waiters: Deque[Event] = deque()

    @property
    def locked(self) -> bool:
        return self._locked

    def acquire(self) -> Event:
        ev = Event(self.env)
        if not self._locked:
            self._locked = True
            ev.succeed()
        else:
            self._waiters.append(ev)
        san = self.env.san
        if san is not None:
            # Ownership lands on whichever process resumes on ev.
            san.on_acquire(self, ev)
        return ev

    def release(self) -> None:
        if not self._locked:
            raise RuntimeError("release() of an unlocked Lock")
        san = self.env.san
        if san is not None:
            san.on_release(self)
        if self._waiters:
            self._waiters.popleft().succeed()
        else:
            self._locked = False
