"""Deterministic discrete-event simulation kernel.

Every other subsystem in this reproduction — the simulated campus network,
the simulated Windows machines, the WSRF services and the remote job
execution testbed — runs as generator-based processes on this kernel.
The kernel is single-threaded and event-ordered: given the same seed and
the same program, every run produces the same trace, which is what makes
the benchmark harness reproducible.

Public API
----------

``Environment``
    The event loop: owns simulated time, the event heap and process
    creation (:meth:`Environment.process`).
``Event``, ``Timeout``
    Waitables. A process ``yield``\\ s them to block.
``Process``
    A running generator; itself a waitable that triggers when the
    generator returns.
``AnyOf``, ``AllOf``
    Composite waits.
``Channel``
    Unbounded FIFO for inter-process message passing.
``Interrupt``
    Exception thrown into a process by :meth:`Process.interrupt`.

Example
-------

>>> env = Environment()
>>> def hello(env):
...     yield env.timeout(3.0)
...     return env.now
>>> p = env.process(hello(env))
>>> env.run()
>>> p.value
3.0
"""

from repro.sim.core import Environment, Event, SimulationError, Timeout
from repro.sim.process import Interrupt, Process, ProcessKilled
from repro.sim.waitables import AllOf, AnyOf
from repro.sim.channel import Channel, ChannelClosed
from repro.sim.sync import Lock

__all__ = [
    "AllOf",
    "AnyOf",
    "Channel",
    "ChannelClosed",
    "Environment",
    "Event",
    "Interrupt",
    "Lock",
    "Process",
    "ProcessKilled",
    "SimulationError",
    "Timeout",
]
