"""Composite waitables: wait for all / any of a set of events."""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.sim.core import Environment, Event


class _Condition(Event):
    """Shared machinery for AllOf/AnyOf.

    Succeeds with an ordered dict ``{event: value}`` of the events that had
    triggered (successfully) by the time the condition fired.  Fails if any
    constituent event fails before the condition is met.
    """

    __slots__ = ("events", "_pending")

    def __init__(self, env: Environment, events: Iterable[Event]) -> None:
        super().__init__(env)
        self.events: List[Event] = list(events)
        for ev in self.events:
            if ev.env is not env:
                raise ValueError("events from multiple environments")
        self._pending = len(self.events)
        if not self.events:
            self.succeed(self._collect())
            return
        for ev in self.events:
            ev.add_callback(self._check)

    def _collect(self) -> Dict[Event, object]:
        # A Timeout is "triggered" from creation (its outcome is fixed); only
        # events whose callbacks have run have actually *fired* by now.
        return {ev: ev.value for ev in self.events if ev.processed and ev.ok}

    def _satisfied(self) -> bool:
        raise NotImplementedError

    def _check(self, ev: Event) -> None:
        if self.triggered:
            if not ev._ok:
                ev._defused = True
            return
        if not ev._ok:
            ev._defused = True
            self.fail(ev.value)
            return
        self._pending -= 1
        if self._satisfied():
            self.succeed(self._collect())


class AllOf(_Condition):
    """Triggers when every constituent event has succeeded."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._pending == 0


class AnyOf(_Condition):
    """Triggers when at least one constituent event has succeeded."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._pending < len(self.events)
