"""Event loop and primitive waitables for the simulation kernel."""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Optional

#: Events scheduled at the same instant are ordered by priority, then by
#: insertion sequence.  URGENT is used internally for process resumption so
#: that a process resumed by an already-triggered event runs before ordinary
#: same-time events.
URGENT = 0
NORMAL = 1


class SimulationError(Exception):
    """Raised for kernel misuse (double-trigger, running a dead loop, ...)."""


class Event:
    """A one-shot waitable.

    An event starts *pending*; exactly once it is either succeeded with a
    value or failed with an exception.  Processes block on events by
    yielding them; arbitrary callbacks may also be attached (the kernel
    uses callbacks to resume processes).
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused", "_san_vc")

    _PENDING = object()

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: Optional[list] = []
        self._value: Any = Event._PENDING
        self._ok: bool = True
        #: a failed event whose failure was never observed re-raises at the
        #: end of the run unless defused (observed by a process or waitable)
        self._defused = False

    # -- inspection ---------------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to fire (succeed/fail)."""
        return self._value is not Event._PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        if not self.triggered:
            raise SimulationError("event not yet triggered")
        return self._ok

    @property
    def value(self) -> Any:
        """The success value or failure exception."""
        if not self.triggered:
            raise SimulationError("event not yet triggered")
        return self._value

    # -- triggering ---------------------------------------------------------

    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._value = value
        self._ok = True
        self.env._schedule(self, delay=delay)
        return self

    def fail(self, exception: BaseException, delay: float = 0.0) -> "Event":
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._value = exception
        self._ok = False
        self.env._schedule(self, delay=delay)
        return self

    def trigger(self, other: "Event") -> None:
        """Mirror another (triggered) event's outcome onto this one."""
        if other._ok:
            self.succeed(other._value)
        else:
            other._defused = True
            self.fail(other._value)

    def _run_callbacks(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        for cb in callbacks:
            cb(self)

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Attach *fn*; called with the event once it fires.

        If the event has already been processed the callback runs
        immediately (this keeps late subscribers correct).
        """
        if self.callbacks is None:
            fn(self)
        else:
            self.callbacks.append(fn)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "triggered" if self.triggered else "pending"
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires after a fixed simulated delay."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay!r}")
        super().__init__(env)
        self.delay = delay
        self._value = value
        self._ok = True
        env._schedule(self, delay=delay)


class Environment:
    """The simulation event loop.

    Owns simulated time (:attr:`now`, seconds as float) and the event heap.
    ``run()`` executes events in (time, priority, insertion) order until the
    heap is empty, a deadline passes, or a watched event triggers.
    """

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._heap: list = []
        self._seq = 0
        self._active_process = None
        #: attached repro.obs.WallClockProfiler, or None = profiling off
        #: (step() then does a single None check, nothing else)
        self.prof: Optional[Any] = None
        #: attached repro.analysis.RaceSanitizer, or None = sanitizing off
        #: (the same single-None-check discipline as prof)
        self.san: Optional[Any] = None

    @property
    def now(self) -> float:
        return self._now

    @property
    def active_process(self):
        """The :class:`Process` currently executing, if any."""
        return self._active_process

    # -- factories ----------------------------------------------------------

    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: Generator):
        """Spawn *generator* as a new simulated process."""
        from repro.sim.process import Process

        return Process(self, generator)

    def all_of(self, events):
        from repro.sim.waitables import AllOf

        return AllOf(self, events)

    def any_of(self, events):
        from repro.sim.waitables import AnyOf

        return AnyOf(self, events)

    # -- scheduling ---------------------------------------------------------

    def _schedule(self, event: Event, delay: float = 0.0, priority: int = NORMAL) -> None:
        san = self.san
        if san is not None:
            # Stamp the event with the scheduler's vector clock: the one
            # edge from which the sanitizer derives every happens-before
            # relation (spawn, join, timeout, interrupt, lock hand-off).
            san.on_schedule(event)
        self._seq += 1
        heapq.heappush(self._heap, (self._now + delay, priority, self._seq, event))

    def peek(self) -> float:
        """Time of the next scheduled event, or +inf if none."""
        return self._heap[0][0] if self._heap else float("inf")

    def step(self) -> None:
        """Process the single next event."""
        if not self._heap:
            raise SimulationError("step() on an empty schedule")
        when, _prio, _seq, event = heapq.heappop(self._heap)
        self._now = when
        san = self.san
        if san is not None:
            san.on_step(event)
        prof = self.prof
        if prof is None:
            event._run_callbacks()
        else:
            # Every bit of host work in a run happens synchronously
            # inside exactly one step() — this region is the profile's
            # root and its call count is the events/sec numerator.
            prof.enter("sim.dispatch")
            try:
                event._run_callbacks()
            finally:
                prof.exit()
        if not event._ok and not event._defused:
            exc = event._value
            raise exc

    def run(self, until: Any = None) -> Any:
        """Run the simulation.

        ``until`` may be ``None`` (drain the heap), a number (advance to
        that simulated time) or an :class:`Event` (run until it triggers,
        returning its value).
        """
        san = self.san
        if san is not None:
            # Top-level code only executes while the loop is idle, so
            # everything it did so far precedes everything in this run.
            san.on_run_begin()
        stop_event: Optional[Event] = None
        deadline = float("inf")
        if until is None:
            pass
        elif isinstance(until, Event):
            stop_event = until
            if stop_event.triggered:
                if not stop_event._ok:
                    stop_event._defused = True
                    raise stop_event._value
                return stop_event._value
        else:
            deadline = float(until)
            if deadline < self._now:
                raise ValueError(
                    f"run(until={deadline!r}) is in the past (now={self._now!r})"
                )

        stopped = False

        if stop_event is not None:

            def _stop(_ev: Event) -> None:
                nonlocal stopped
                stopped = True

            stop_event.add_callback(_stop)

        while self._heap and not stopped:
            if self.peek() > deadline:
                self._now = deadline
                return None
            self.step()

        if stop_event is not None:
            if not stop_event.triggered:
                raise SimulationError(
                    "run(until=event): schedule drained before event triggered"
                )
            if not stop_event._ok:
                stop_event._defused = True
                raise stop_event._value
            return stop_event._value
        if deadline != float("inf") and self._now < deadline:
            self._now = deadline
        return None
