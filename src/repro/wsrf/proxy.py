"""WSDL-driven client proxy generation.

§5: "custom interfaces for manipulating state could be designed, and
consumed by clients using standard WSDL tooling to create proxy
classes."  This module is that tooling: point it at a service's WSDL
and it emits a proxy object with one method per advertised operation —
the pre-WSRF way of talking to a service, provided here both as the
D-1 baseline and because it is genuinely convenient.

Example::

    wsdl = generate_wsdl(wrapper)           # or fetched out-of-band
    proxy = build_proxy(client, wsdl, epr)
    result = yield from proxy.MyMethod(suffix="!")   # -> typed value

Spec-defined port types advertised in the WSDL surface as well:
``proxy.GetResourceProperty(qname)``, ``proxy.Destroy()``, etc., mapped
onto the generic client plumbing.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.wsa import EndpointReference
from repro.wsrf.client import WsrfClient
from repro.wsrf.wsdl import wsdl_operations, wsdl_resource_properties
from repro.xmlx import NS, Element

#: spec operations the proxy maps onto dedicated client methods
_SPEC_BINDINGS = {
    "GetResourceProperty": "get_resource_property",
    "GetMultipleResourceProperties": "get_multiple_resource_properties",
    "QueryResourceProperties": "query_resource_properties",
    "SetResourceProperties": "set_resource_properties",
    "Destroy": "destroy",
    "SetTerminationTime": "set_termination_time",
}


class ServiceProxy:
    """A dynamically-built proxy for one WS-Resource (or service)."""

    def __init__(
        self,
        client: WsrfClient,
        epr: EndpointReference,
        service_ns: str,
        operations: Dict[str, str],
        resource_properties,
    ) -> None:
        self._client = client
        self._epr = epr
        self._service_ns = service_ns
        self._operations = operations  # name -> "author" | spec binding
        self.advertised_resource_properties = list(resource_properties)

    @property
    def epr(self) -> EndpointReference:
        return self._epr

    def at(self, epr: EndpointReference) -> "ServiceProxy":
        """The same interface bound to a different WS-Resource."""
        return ServiceProxy(
            self._client,
            epr,
            self._service_ns,
            self._operations,
            self.advertised_resource_properties,
        )

    def with_retry(self, retry_policy) -> "ServiceProxy":
        """The same proxy whose calls run under *retry_policy*.

        Transport faults on every proxied operation are retried per the
        policy (see :class:`repro.net.retry.RetryPolicy`); pass None to
        strip retries off again.
        """
        return ServiceProxy(
            self._client.with_policy(retry_policy),
            self._epr,
            self._service_ns,
            self._operations,
            self.advertised_resource_properties,
        )

    def operations(self):
        return sorted(self._operations)

    def __getattr__(self, name: str):
        operations = object.__getattribute__(self, "_operations")
        if name not in operations:
            raise AttributeError(
                f"service advertises no operation {name!r} "
                f"(has: {sorted(operations)})"
            )
        binding = operations[name]
        client = self._client
        epr = self._epr
        ns = self._service_ns

        if binding == "author":

            def author_call(**kwargs):
                return client.call(epr, ns, name, kwargs or None)

            author_call.__name__ = name
            return author_call

        bound = getattr(client, binding)

        def spec_call(*args, **kwargs):
            return bound(epr, *args, **kwargs)

        spec_call.__name__ = name
        return spec_call

    def __repr__(self) -> str:
        return f"<ServiceProxy {self._epr.address!r} ops={self.operations()}>"


def build_proxy(
    client: WsrfClient,
    wsdl_doc: Element,
    epr: EndpointReference,
    service_ns: Optional[str] = None,
    retry_policy=None,
) -> ServiceProxy:
    """Generate a proxy from a WSDL document (the §5 'standard tooling').

    ``retry_policy`` wraps every proxied call in the client-side retry
    layer without the caller touching the underlying WsrfClient.
    """
    if retry_policy is not None:
        client = client.with_policy(retry_policy)
    if service_ns is None:
        service_ns = wsdl_doc.get("targetNamespace") or NS.UVACG
    ops: Dict[str, str] = {}
    by_port_type = wsdl_operations(wsdl_doc)
    for port_type, names in by_port_type.items():
        for name in names:
            if name in _SPEC_BINDINGS:
                ops[name] = _SPEC_BINDINGS[name]
            elif port_type.endswith("PortType") and not port_type.startswith(
                ("Get", "Set", "Query", "Immediate", "Scheduled", "Notification")
            ):
                ops[name] = "author"
            else:
                # Unmapped spec operation (Subscribe, Pause, ...): expose
                # generically via raw invoke with a one-element body.
                ops.setdefault(name, "author")
    rps = wsdl_resource_properties(wsdl_doc)
    return ServiceProxy(client, epr, service_ns, ops, rps)
