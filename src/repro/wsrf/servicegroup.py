"""WS-ServiceGroup: groups whose entries are themselves WS-Resources.

The Node Info service of §4.4 "is a service group (as defined by
WS-ServiceGroups) whose members represent the processors available for
scheduling".  This module supplies the generic service — written in the
same author-level programming model the testbed services use (the
toolkit eating its own dogfood), so it exercises the full Fig. 1
pipeline:

- a *group* WS-Resource holds the entry list and an optional membership
  content rule;
- each *entry* is its own WS-Resource (so it has an EPR, can carry a
  termination time and can be destroyed individually — destroying an
  entry removes it from its group);
- the spec's ``Add`` operation registers a member EPR plus a content
  document and returns the entry's EPR.
"""

from __future__ import annotations

from repro.wsa import EndpointReference
from repro.wsrf.attributes import (
    Resource,
    ResourceProperty,
    ServiceSkeleton,
    WebMethod,
    WSRFPortType,
)
from repro.wsrf.basefaults import BaseFault
from repro.wsrf.lifetime import (
    ImmediateResourceTerminationPortType,
    ScheduledResourceTerminationPortType,
)
from repro.wsrf.porttypes import (
    GetMultipleResourcePropertiesPortType,
    GetResourcePropertyPortType,
    QueryResourcePropertiesPortType,
)
from repro.xmlx import NS, Element, QName

ENTRY_RP = QName(NS.WSRF_SG, "Entry")
CONTENT_RULE_RP = QName(NS.WSRF_SG, "MembershipContentRule")


class ContentRuleViolation(BaseFault):
    FAULT_QNAME = QName(NS.WSRF_SG, "ContentCreationFailedFault")


@WSRFPortType(
    GetResourcePropertyPortType,
    GetMultipleResourcePropertiesPortType,
    QueryResourcePropertiesPortType,
    ImmediateResourceTerminationPortType,
    ScheduledResourceTerminationPortType,
)
class ServiceGroupService(ServiceSkeleton):
    """Generic WS-ServiceGroup implementation.

    One deployment hosts many groups and their entries; the ``kind``
    field distinguishes the two resource shapes.
    """

    SERVICE_NS = NS.WSRF_SG

    kind = Resource(default="group")  # "group" | "entry"
    entry_ids = Resource(default=None)  # group: list of entry resource ids
    content_rule = Resource(default="")  # group: required content tag (Clark)
    member_epr = Resource(default=None)  # entry: the member's EPR
    content = Resource(default=None)  # entry: the content document (Element)
    group_id = Resource(default=None)  # entry: owning group resource id

    # -- operations ---------------------------------------------------------------

    @WebMethod(requires_resource=False)
    def CreateGroup(self, content_rule: str = "") -> EndpointReference:
        """Factory: make a new (empty) service group."""
        rid = self.create_resource(kind="group", entry_ids=[], content_rule=content_rule)
        return self.epr_for(rid)

    @WebMethod
    def Add(self, member: EndpointReference, content: Element) -> EndpointReference:
        """Register *member* with *content*; returns the new entry's EPR."""
        self._require_kind("group")
        rule = self.content_rule
        if rule and content.tag.clark() != rule:
            raise ContentRuleViolation(
                description=(
                    f"content element {content.tag} violates the group's "
                    f"membership content rule {rule}"
                ),
                timestamp=self.env.now,
            )
        entry_id = self.create_resource(
            kind="entry",
            member_epr=member,
            content=content,
            group_id=self.resource_id,
        )
        self.entry_ids = list(self.entry_ids or []) + [entry_id]
        return self.epr_for(entry_id)

    @WebMethod
    def UpdateContent(self, content: Element) -> None:
        """Replace an entry's content document (e.g. fresh utilization)."""
        self._require_kind("entry")
        self.content = content

    # -- resource properties -------------------------------------------------------

    @ResourceProperty(qname=ENTRY_RP)
    @property
    def Entry(self):
        """The group's entries as wssg:Entry documents."""
        self._require_kind("group")
        wrapper = self.wsrf.wrapper
        out = []
        for entry_id in self.entry_ids or []:
            try:
                state = wrapper.store.load(wrapper.service_name, entry_id)
            except KeyError:
                continue
            el = Element(ENTRY_RP)
            member = state.get(QName(NS.WSRF_SG, "member_epr"))
            if member is not None:
                el.append(member.to_xml(QName(NS.WSRF_SG, "MemberServiceEPR")))
            el.append(
                wrapper.epr_for(entry_id).to_xml(QName(NS.WSRF_SG, "ServiceGroupEntryEPR"))
            )
            content = state.get(QName(NS.WSRF_SG, "content"))
            holder = el.subelement(QName(NS.WSRF_SG, "Content"))
            if content is not None:
                holder.append(content.copy())
            out.append(el)
        return out

    @ResourceProperty(qname=CONTENT_RULE_RP)
    @property
    def MembershipContentRule(self) -> str:
        self._require_kind("group")
        return self.content_rule or ""

    @ResourceProperty
    @property
    def EntryContent(self):
        """An entry's content document (entry resources only)."""
        self._require_kind("entry")
        return self.content

    # -- lifecycle ---------------------------------------------------------------------

    def wsrf_on_destroy(self) -> None:
        """Destroying an entry removes it from its group's entry list."""
        if self.kind != "entry" or self.group_id is None:
            return
        wrapper = self.wsrf.wrapper
        try:
            group_state = wrapper.store.load(wrapper.service_name, self.group_id)
        except KeyError:
            return
        key = QName(NS.WSRF_SG, "entry_ids")
        ids = list(group_state.get(key) or [])
        if self.resource_id in ids:
            ids.remove(self.resource_id)
            group_state[key] = ids
            wrapper.store.save(wrapper.service_name, self.group_id, group_state)

    # -- helpers ------------------------------------------------------------------------

    def _require_kind(self, kind: str) -> None:
        if self.kind != kind:
            raise BaseFault(
                description=(
                    f"operation applies to {kind!r} resources, but "
                    f"{self.resource_id!r} is a {self.kind!r}"
                ),
                timestamp=self.env.now,
            )


def parse_entries(value) -> list:
    """Decode the Entry RP value (list of wssg:Entry elements) client-side.

    Returns ``[(member_epr, entry_epr, content_element_or_None), ...]``.
    """
    out = []
    for el in value or []:
        if not isinstance(el, Element):
            continue
        member_el = el.find(QName(NS.WSRF_SG, "MemberServiceEPR"))
        entry_el = el.find(QName(NS.WSRF_SG, "ServiceGroupEntryEPR"))
        content_el = el.find(QName(NS.WSRF_SG, "Content"))
        member = EndpointReference.from_xml(member_el) if member_el is not None else None
        entry = EndpointReference.from_xml(entry_el) if entry_el is not None else None
        content = (
            content_el.children[0] if content_el is not None and content_el.children else None
        )
        out.append((member, entry, content))
    return out
