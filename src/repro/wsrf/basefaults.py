"""WS-BaseFaults: the structured fault hierarchy WSRF services raise.

Every WSRF fault carries a timestamp, an optional originator EPR, an
error code, a description and an optional chained cause — serialized
into the SOAP fault detail so clients can reconstruct typed faults.
"""

from __future__ import annotations

from typing import List, Optional

from repro.soap import SoapFault
from repro.wsa import EndpointReference
from repro.xmlx import NS, Element, QName

_TIMESTAMP = QName(NS.WSRF_BF, "Timestamp")
_ORIGINATOR = QName(NS.WSRF_BF, "Originator")
_ERROR_CODE = QName(NS.WSRF_BF, "ErrorCode")
_DESCRIPTION = QName(NS.WSRF_BF, "Description")
_FAULT_CAUSE = QName(NS.WSRF_BF, "FaultCause")


_REGISTRY = {}


class BaseFault(SoapFault):
    """Root of the WS-BaseFaults hierarchy."""

    #: the fault's element name in the detail; subclasses override local
    FAULT_QNAME = QName(NS.WSRF_BF, "BaseFault")

    def __init_subclass__(cls, **kwargs):
        # Every BaseFault subclass (including ones defined by application
        # services) becomes client-side reconstructible automatically.
        super().__init_subclass__(**kwargs)
        _REGISTRY[cls.FAULT_QNAME] = cls

    def __init__(
        self,
        description: str = "",
        timestamp: float = 0.0,
        originator: Optional[EndpointReference] = None,
        error_code: str = "",
        cause: Optional["BaseFault"] = None,
    ) -> None:
        self.description = description
        self.timestamp = timestamp
        self.originator = originator
        self.error_code = error_code
        self.cause_fault = cause
        super().__init__(
            code="soap:Server",
            reason=description or type(self).__name__,
            detail=[self.to_detail_element()],
        )

    def to_detail_element(self) -> Element:
        root = Element(self.FAULT_QNAME)
        root.subelement(_TIMESTAMP, text=repr(self.timestamp))
        if self.originator is not None:
            root.append(self.originator.to_xml(_ORIGINATOR))
        if self.error_code:
            root.subelement(_ERROR_CODE, text=self.error_code)
        root.subelement(_DESCRIPTION, text=self.description)
        if self.cause_fault is not None:
            root.subelement(_FAULT_CAUSE).append(self.cause_fault.to_detail_element())
        return root

    @classmethod
    def from_detail_element(cls, element: Element) -> "BaseFault":
        fault_cls = _REGISTRY.get(element.tag, BaseFault)
        originator_el = element.find(_ORIGINATOR)
        cause_el = element.find(_FAULT_CAUSE)
        cause = None
        if cause_el is not None and cause_el.children:
            cause = BaseFault.from_detail_element(cause_el.children[0])
        fault = fault_cls(
            description=element.child_text(_DESCRIPTION, "") or "",
            timestamp=float(element.child_text(_TIMESTAMP, "0.0") or 0.0),
            originator=(
                EndpointReference.from_xml(originator_el)
                if originator_el is not None
                else None
            ),
            error_code=element.child_text(_ERROR_CODE, "") or "",
            cause=cause,
        )
        return fault

    @classmethod
    def from_soap_fault(cls, fault: SoapFault) -> Optional["BaseFault"]:
        """Reconstruct a typed fault from a generic SOAP fault, if possible."""
        for item in fault.detail:
            if item.tag.uri == NS.WSRF_BF or item.tag in _REGISTRY:
                return cls.from_detail_element(item)
        return None

    def chain(self) -> List["BaseFault"]:
        """This fault followed by its causes, outermost first."""
        out: List[BaseFault] = [self]
        node = self.cause_fault
        while node is not None:
            out.append(node)
            node = node.cause_fault
        return out


class ResourceUnknownFault(BaseFault):
    """The EPR's resource id resolves to nothing (WS-Resource spec)."""

    FAULT_QNAME = QName(NS.WSRF_BF, "ResourceUnknownFault")


class InvalidResourcePropertyQNameFault(BaseFault):
    """GetResourceProperty named a property the service does not expose."""

    FAULT_QNAME = QName(NS.WSRF_RP, "InvalidResourcePropertyQNameFault")


class InvalidQueryExpressionFault(BaseFault):
    """QueryResourceProperties received a malformed/unsupported XPath."""

    FAULT_QNAME = QName(NS.WSRF_RP, "InvalidQueryExpressionFault")


class UnableToSetTerminationTimeFault(BaseFault):
    FAULT_QNAME = QName(NS.WSRF_RL, "UnableToSetTerminationTimeFault")


class TerminationTimeChangeRejectedFault(BaseFault):
    FAULT_QNAME = QName(NS.WSRF_RL, "TerminationTimeChangeRejectedFault")


class UnableToModifyResourcePropertyFault(BaseFault):
    FAULT_QNAME = QName(NS.WSRF_RP, "UnableToModifyResourcePropertyFault")


class AuthenticationFault(BaseFault):
    """The request's WS-Security credentials were rejected.

    Raised by services (e.g. the GT4-flavored Execution Service) when
    the wsse:Security header is missing, the X.509 token fails CA
    verification, or the subject has no grid-mapfile entry — so clients
    get a reconstructible typed fault instead of an untyped soap:Server
    string.
    """

    FAULT_QNAME = QName(NS.UVACG, "AuthenticationFault")


class EndpointUnreachableFault(BaseFault):
    """A service endpoint could not be reached despite retries.

    Raised/broadcast by the fault-tolerance layer (e.g. the Scheduler's
    watchdog when a dispatched job's Execution Service stops answering)
    so recovery actions carry a typed WS-BaseFault in their event
    payloads rather than a bare transport error.
    """

    FAULT_QNAME = QName(NS.UVACG, "EndpointUnreachableFault")


_REGISTRY[BaseFault.FAULT_QNAME] = BaseFault
