"""The attribute-based programming model of paper Fig. 2.

C# attributes become Python decorators/descriptors with the same names
and semantics:

- ``some_data = Resource()`` — this field is part of the WS-Resource's
  state: loaded from the database before each web method runs, saved
  back afterwards if changed;
- ``@ResourceProperty`` on a Python ``@property`` — exposed through the
  WS-ResourceProperties port types (a setter makes it settable via
  SetResourceProperties);
- ``@WebMethod`` — the method is invocable over SOAP;
- ``@WSRFPortType(GetResourcePropertyPortType, ...)`` — import the
  functionality of spec-defined port types into the service, exactly as
  the paper describes for ``[WSRFPortType]``.

The running example from Fig. 2 translates directly::

    @WSRFPortType(GetResourcePropertyPortType)
    class MyServ(ServiceSkeleton):
        some_data = Resource(default="")

        @ResourceProperty
        @property
        def MyData(self):
            return f"At {self.env.now} the string is {self.some_data}"

        @WebMethod
        def MyMethod(self) -> int:
            ...
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple, Type

from repro.xmlx import NS, QName


class Resource:
    """Field descriptor marking WS-Resource state (C# ``[Resource]``)."""

    _UNSET = object()

    def __init__(self, default: Any = None, qname: Optional[QName] = None) -> None:
        self.default = default
        self.qname = qname  # resolved against the service namespace if None
        self.name = ""

    def __set_name__(self, owner: type, name: str) -> None:
        self.name = name

    def resolved_qname(self, service_cls: type) -> QName:
        if self.qname is not None:
            return self.qname
        ns = getattr(service_cls, "SERVICE_NS", NS.UVACG)
        return QName(ns, self.name)

    def __get__(self, obj, objtype=None):
        if obj is None:
            return self
        state = obj.__dict__.setdefault("_resource_fields", {})
        value = state.get(self.name, Resource._UNSET)
        return self.default if value is Resource._UNSET else value

    def __set__(self, obj, value) -> None:
        obj.__dict__.setdefault("_resource_fields", {})[self.name] = value


class _ResourcePropertyDescriptor(property):
    """A Python property carrying ResourceProperty metadata."""

    rp_qname: Optional[QName] = None
    rp_name: Optional[str] = None

    def __set_name__(self, owner: type, name: str) -> None:
        self.rp_name = name

    def resolved_qname(self, service_cls: type) -> QName:
        if self.rp_qname is not None:
            return self.rp_qname
        ns = getattr(service_cls, "SERVICE_NS", NS.UVACG)
        return QName(ns, self.rp_name or self.fget.__name__)


def ResourceProperty(target=None, *, qname: Optional[QName] = None):
    """Expose a property through WS-ResourceProperties (C# attribute)."""

    def wrap(obj):
        if isinstance(obj, property):
            rp = _ResourcePropertyDescriptor(obj.fget, obj.fset, obj.fdel)
        elif callable(obj):
            rp = _ResourcePropertyDescriptor(obj)
        else:
            raise TypeError(
                f"ResourceProperty applies to a property or getter, got {obj!r}"
            )
        rp.rp_qname = qname
        return rp

    if target is None:
        return wrap
    return wrap(target)


def WebMethod(target=None, *, requires_resource: bool = True, one_way: bool = False):
    """Mark a method as SOAP-invocable (C# ``[WebMethod]``).

    ``requires_resource=False`` marks factory-style operations that run
    without an EPR-named WS-Resource (e.g. "create a new directory").
    ``one_way=True`` documents that the operation is normally delivered
    as a one-way message (no reply body even over request/response).
    """

    def wrap(fn):
        fn.__web_method__ = {
            "requires_resource": requires_resource,
            "one_way": one_way,
        }
        return fn

    if target is None:
        return wrap
    return wrap(target)


def WSRFPortType(*port_types: type):
    """Import spec-defined port types into a service (C# attribute)."""

    for pt in port_types:
        if not isinstance(pt, type):
            raise TypeError(f"WSRFPortType expects port type classes, got {pt!r}")

    def decorate(cls: type) -> type:
        existing: Tuple[type, ...] = getattr(cls, "__wsrf_port_types__", ())
        cls.__wsrf_port_types__ = existing + tuple(port_types)
        return cls

    return decorate


class ServiceSkeleton:
    """Base class for author-written services (WSRF.NET's ServiceSkeleton).

    Author code never constructs these directly: the wrapper service
    instantiates one per invocation, populates the ``Resource`` fields
    from the database, injects the invocation context, runs the method
    and persists changed state — the Fig. 1 pipeline.
    """

    #: namespace for this service's methods, resource fields and RPs
    SERVICE_NS = NS.UVACG

    def __init__(self) -> None:
        self._resource_fields: Dict[str, Any] = {}
        self._invocation = None  # set by the wrapper

    # -- invocation context -------------------------------------------------------

    @property
    def wsrf(self):
        """The invocation context (wrapper, machine, EPR helpers)."""
        if self._invocation is None:
            raise RuntimeError(
                "no invocation context: this instance was not created by the "
                "WSRF wrapper (did you call the method directly?)"
            )
        return self._invocation

    @property
    def env(self):
        return self.wsrf.machine.env

    @property
    def machine(self):
        return self.wsrf.machine

    @property
    def resource_id(self) -> Optional[str]:
        return self.wsrf.resource_id

    @property
    def client(self):
        """A WsrfClient originating from this service's machine."""
        return self.wsrf.client

    # -- resource management helpers (forwarded to the wrapper) ---------------------

    def epr_for(self, resource_id: str):
        return self.wsrf.wrapper.epr_for(resource_id)

    def create_resource(self, **fields) -> str:
        """Create a sibling WS-Resource of this service; returns its id."""
        return self.wsrf.wrapper.create_resource_from_fields(fields)

    def destroy_resource(self, resource_id: str) -> None:
        self.wsrf.wrapper.destroy_resource(resource_id)

    def notify(self, topic, payload) -> None:
        """Publish a notification (single-function API, per §5).

        Requires the NotificationProducer port type; the wrapper routes
        the message to matching subscribers as one-way wsnt:Notify.
        With observability on, the fan-out parents to this invocation's
        dispatch span.
        """
        self.wsrf.wrapper.publish(
            topic, payload, parent_span=getattr(self.wsrf, "span", None)
        )

    # -- hooks ----------------------------------------------------------------------

    def wsrf_on_destroy(self) -> None:
        """Called (with state loaded) just before this resource is destroyed."""

    @classmethod
    def wsrf_recover(cls, wrapper) -> None:
        """Called once after the wrapper restores from a checkpoint.

        The host just came back from a crash: persisted resource state
        is in place, volatile state (locks, caches, watchers, spawned
        OS processes) is gone.  Services override this to re-adopt
        in-flight work from what the store says — see the Scheduler's
        job-set re-adoption and the Execution Service's orphaned-job
        cleanup (docs/durability.md).
        """


def collect_resource_fields(service_cls: Type[ServiceSkeleton]) -> Dict[str, Resource]:
    """All Resource descriptors declared on the class (MRO-aware)."""
    out: Dict[str, Resource] = {}
    for klass in reversed(service_cls.__mro__):
        for name, value in vars(klass).items():
            if isinstance(value, Resource):
                out[name] = value
    return out


def collect_resource_properties(
    service_cls: Type[ServiceSkeleton],
) -> Dict[QName, _ResourcePropertyDescriptor]:
    out: Dict[QName, _ResourcePropertyDescriptor] = {}
    for klass in reversed(service_cls.__mro__):
        for value in vars(klass).values():
            if isinstance(value, _ResourcePropertyDescriptor):
                out[value.resolved_qname(service_cls)] = value
    return out


def collect_web_methods(service_cls: type) -> Dict[str, Any]:
    out: Dict[str, Any] = {}
    for klass in reversed(service_cls.__mro__):
        for name, value in vars(klass).items():
            if callable(value) and hasattr(value, "__web_method__"):
                out[name] = value
    return out
