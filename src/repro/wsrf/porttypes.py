"""WS-ResourceProperties port types (implemented once, imported by services).

"Because WS-ResourceProperties defines a small set of interfaces with
standard behavior, it is possible to implement tooling to easily use
them" (§5).  These classes are that tooling's service side; any service
annotated with ``@WSRFPortType(...)`` responds to them without the
author writing a line of state-access code.

QNames inside request bodies travel in Clark notation
(``{uri}local``) rather than prefixed form — a documented simplification
that avoids carrying prefix scopes through the body.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.soap import to_typed_element
from repro.wsrf.basefaults import (
    InvalidQueryExpressionFault,
    InvalidResourcePropertyQNameFault,
    UnableToModifyResourcePropertyFault,
)
from repro.xmlx import NS, Element, QName, XPathError, xpath_select

GET_RP = QName(NS.WSRF_RP, "GetResourceProperty")
GET_MULTIPLE_RP = QName(NS.WSRF_RP, "GetMultipleResourceProperties")
QUERY_RP = QName(NS.WSRF_RP, "QueryResourceProperties")
SET_RP = QName(NS.WSRF_RP, "SetResourceProperties")

#: the XPath 1.0 dialect URI from the WS-RP spec
XPATH_DIALECT = "http://www.w3.org/TR/1999/REC-xpath-19991116"


class SpecPortType:
    """Base for spec-defined port types.

    ``OPERATIONS`` maps request-body QName → method name.  Instances are
    created per invocation with the wrapper and the loaded service
    instance.  ``provides_rps`` lets a port type contribute implicit
    resource properties (e.g. TerminationTime).
    """

    OPERATIONS: Dict[QName, str] = {}
    #: operations that may run without an EPR-named WS-Resource (e.g.
    #: Subscribe/Notify on singleton services like the NotificationBroker)
    OPTIONAL_RESOURCE_OPS: frozenset = frozenset()

    def __init__(self, wrapper, instance) -> None:
        self.wrapper = wrapper
        self.instance = instance

    @classmethod
    def provides_rps(cls) -> Dict[QName, Callable]:
        """{qname: fn(port_type_instance) -> value} of implicit RPs."""
        return {}


def _parse_clark(text: str, fault_cls) -> QName:
    text = text.strip()
    if not text:
        raise fault_cls(description="empty resource property QName")
    try:
        return QName(text)
    except ValueError as exc:
        raise fault_cls(description=f"malformed QName {text!r}") from exc


class GetResourcePropertyPortType(SpecPortType):
    OPERATIONS = {GET_RP: "get_resource_property"}

    def get_resource_property(self, request: Element) -> Element:
        qname = _parse_clark(request.full_text(), InvalidResourcePropertyQNameFault)
        value_el = self.wrapper.rp_element(self.instance, qname)
        response = Element(QName(NS.WSRF_RP, "GetResourcePropertyResponse"))
        response.append(value_el)
        return response


class GetMultipleResourcePropertiesPortType(SpecPortType):
    OPERATIONS = {GET_MULTIPLE_RP: "get_multiple"}

    def get_multiple(self, request: Element) -> Element:
        wanted = request.findall(QName(NS.WSRF_RP, "ResourceProperty"))
        if not wanted:
            raise InvalidResourcePropertyQNameFault(
                description="GetMultipleResourceProperties named no properties"
            )
        response = Element(
            QName(NS.WSRF_RP, "GetMultipleResourcePropertiesResponse")
        )
        for item in wanted:
            qname = _parse_clark(item.full_text(), InvalidResourcePropertyQNameFault)
            response.append(self.wrapper.rp_element(self.instance, qname))
        return response


class QueryResourcePropertiesPortType(SpecPortType):
    OPERATIONS = {QUERY_RP: "query"}

    def query(self, request: Element) -> Element:
        expr_el = request.find(QName(NS.WSRF_RP, "QueryExpression"))
        if expr_el is None:
            raise InvalidQueryExpressionFault(description="missing QueryExpression")
        dialect = expr_el.get("Dialect", XPATH_DIALECT)
        if dialect != XPATH_DIALECT:
            raise InvalidQueryExpressionFault(
                description=f"unsupported dialect {dialect!r}"
            )
        document = self.wrapper.build_rp_document(self.instance)
        try:
            hits = xpath_select(document, expr_el.full_text())
        except XPathError as exc:
            raise InvalidQueryExpressionFault(description=str(exc)) from exc
        response = Element(QName(NS.WSRF_RP, "QueryResourcePropertiesResponse"))
        for hit in hits:
            if isinstance(hit, Element):
                response.append(hit.copy())
            else:
                response.subelement(QName(NS.WSRF_RP, "Result"), text=str(hit))
        return response


class SetResourcePropertiesPortType(SpecPortType):
    OPERATIONS = {SET_RP: "set_properties"}

    def set_properties(self, request: Element) -> Element:
        for change in request.children:
            local = change.tag.local
            if change.tag.uri != NS.WSRF_RP or local not in (
                "Update",
                "Insert",
                "Delete",
            ):
                raise UnableToModifyResourcePropertyFault(
                    description=f"unknown change element {change.tag}"
                )
            if local == "Delete":
                target = change.get("ResourceProperty")
                if target is None:
                    raise UnableToModifyResourcePropertyFault(
                        description="Delete lacks a ResourceProperty attribute"
                    )
                qname = _parse_clark(target, InvalidResourcePropertyQNameFault)
                self.wrapper.set_rp_value(self.instance, qname, None)
            else:
                # Update and Insert both assign values on fixed-schema RPs.
                for rp_el in change.children:
                    self.wrapper.set_rp_from_element(self.instance, rp_el)
        return Element(QName(NS.WSRF_RP, "SetResourcePropertiesResponse"))


def rp_value_element(qname: QName, value) -> Element:
    """Serialize one resource property value for a response/RP document."""
    if isinstance(value, Element) and value.tag == qname:
        return value.copy()
    return to_typed_element(qname, value)
