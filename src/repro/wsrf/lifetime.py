"""WS-ResourceLifetime: immediate and scheduled destruction."""

from __future__ import annotations

from typing import Callable, Dict

from repro.wsrf.basefaults import UnableToSetTerminationTimeFault
from repro.wsrf.porttypes import SpecPortType
from repro.xmlx import NS, Element, QName

DESTROY = QName(NS.WSRF_RL, "Destroy")
SET_TERMINATION_TIME = QName(NS.WSRF_RL, "SetTerminationTime")

TERMINATION_TIME_RP = QName(NS.WSRF_RL, "TerminationTime")
CURRENT_TIME_RP = QName(NS.WSRF_RL, "CurrentTime")


class ImmediateResourceTerminationPortType(SpecPortType):
    """wsrl:Destroy — destroy the WS-Resource named by the invocation EPR."""

    OPERATIONS = {DESTROY: "destroy"}

    def destroy(self, request: Element) -> Element:
        # The author hook (e.g. the ES killing the underlying process)
        # runs with state loaded, then the row is removed.
        self.instance.wsrf_on_destroy()
        self.wrapper.destroy_resource(self.wrapper_current_id())
        return Element(QName(NS.WSRF_RL, "DestroyResponse"))

    def wrapper_current_id(self) -> str:
        return self.instance.wsrf.resource_id


class ScheduledResourceTerminationPortType(SpecPortType):
    """wsrl:SetTerminationTime plus the TerminationTime/CurrentTime RPs.

    Termination times live in a wrapper-side table and are enforced by
    the wrapper's lifetime sweeper (:meth:`WrapperService.start_sweeper`).
    A nil requested time means "never terminate".
    """

    OPERATIONS = {SET_TERMINATION_TIME: "set_termination_time"}

    def set_termination_time(self, request: Element) -> Element:
        rid = self.instance.wsrf.resource_id
        requested = request.find(QName(NS.WSRF_RL, "RequestedTerminationTime"))
        if requested is None:
            raise UnableToSetTerminationTimeFault(
                description="missing RequestedTerminationTime"
            )
        text = requested.full_text().strip()
        nil = requested.get(QName(NS.XSI, "nil")) == "true" or not text
        if nil:
            new_time = None
        else:
            try:
                new_time = float(text)
            except ValueError:
                raise UnableToSetTerminationTimeFault(
                    description=f"unparsable termination time {text!r}"
                ) from None
            if new_time < self.wrapper.env.now:
                raise UnableToSetTerminationTimeFault(
                    description=(
                        f"requested termination time {new_time} is in the past "
                        f"(now {self.wrapper.env.now})"
                    )
                )
        self.wrapper.set_termination_time(rid, new_time)
        response = Element(QName(NS.WSRF_RL, "SetTerminationTimeResponse"))
        new_el = response.subelement(QName(NS.WSRF_RL, "NewTerminationTime"))
        if new_time is None:
            new_el.set(QName(NS.XSI, "nil"), "true")
        else:
            new_el.text = repr(new_time)
        response.subelement(
            QName(NS.WSRF_RL, "CurrentTime"), text=repr(self.wrapper.env.now)
        )
        return response

    @classmethod
    def provides_rps(cls) -> Dict[QName, Callable]:
        return {
            TERMINATION_TIME_RP: lambda pt: pt.wrapper.get_termination_time(
                pt.instance.wsrf.resource_id
            ),
            CURRENT_TIME_RP: lambda pt: pt.wrapper.env.now,
        }
