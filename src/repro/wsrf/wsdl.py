"""WSDL generation.

"The schema for this [Resource Properties] document is part of the web
service's WSDL."  The wrapper can emit a WSDL 1.1-shaped document
describing the author's operations, the imported WSRF port types and the
resource properties document schema — enough for a client-side tool (or
a test) to discover what a deployed service offers.
"""

from __future__ import annotations

from repro.xmlx import NS, Element, QName


def generate_wsdl(wrapper) -> Element:
    """Build the WSDL document for a deployed :class:`WrapperService`."""
    service_cls = wrapper.service_cls
    ns = service_cls.SERVICE_NS
    root = Element(QName(NS.WSDL, "definitions"))
    root.set("name", service_cls.__name__)
    root.set("targetNamespace", ns)

    # Resource properties document schema: one element per RP.
    types_el = root.subelement(QName(NS.WSDL, "types"))
    schema = types_el.subelement(QName(NS.XSD, "schema"))
    schema.set("targetNamespace", ns)
    rp_doc = schema.subelement(QName(NS.XSD, "element"))
    rp_doc.set("name", "ResourceProperties")
    seq = rp_doc.subelement(QName(NS.XSD, "complexType")).subelement(
        QName(NS.XSD, "sequence")
    )
    for rp_qname in _all_rp_qnames(wrapper):
        el = seq.subelement(QName(NS.XSD, "element"))
        el.set("ref", rp_qname.clark())

    # The author's port type.
    port_type = root.subelement(QName(NS.WSDL, "portType"))
    port_type.set("name", f"{service_cls.__name__}PortType")
    for name, fn in sorted(wrapper._methods.items()):
        op = port_type.subelement(QName(NS.WSDL, "operation"))
        op.set("name", name)
        op.subelement(QName(NS.WSDL, "input")).set("message", f"{ns}/{name}")
        if not fn.__web_method__["one_way"]:
            op.subelement(QName(NS.WSDL, "output")).set(
                "message", f"{ns}/{name}Response"
            )

    # Imported WSRF port types (the [WSRFPortType] attribute's effect).
    for pt_cls in getattr(service_cls, "__wsrf_port_types__", ()):
        pt_el = root.subelement(QName(NS.WSDL, "portType"))
        pt_el.set("name", pt_cls.__name__)
        for body_qname, method in sorted(
            pt_cls.OPERATIONS.items(), key=lambda kv: kv[0].local
        ):
            op = pt_el.subelement(QName(NS.WSDL, "operation"))
            op.set("name", body_qname.local)
            op.subelement(QName(NS.WSDL, "input")).set("message", body_qname.clark())

    # The concrete endpoint.
    service_el = root.subelement(QName(NS.WSDL, "service"))
    service_el.set("name", service_cls.__name__)
    port = service_el.subelement(QName(NS.WSDL, "port"))
    port.set("name", f"{service_cls.__name__}Port")
    port.subelement(QName(NS.WSDL, "address")).set("location", wrapper.address)
    return root


def _all_rp_qnames(wrapper):
    out = list(wrapper._rps.keys()) + list(wrapper._pt_rps.keys())
    return sorted(out, key=lambda q: (q.uri, q.local))


def wsdl_operations(wsdl_doc: Element) -> dict:
    """Client-side helper: {portType name: [operation names]}."""
    out = {}
    for pt in wsdl_doc.findall(QName(NS.WSDL, "portType")):
        ops = [op.get("name") for op in pt.findall(QName(NS.WSDL, "operation"))]
        out[pt.get("name")] = ops
    return out


def wsdl_resource_properties(wsdl_doc: Element) -> list:
    """Client-side helper: the RP QNames advertised by the schema."""
    out = []
    for el in wsdl_doc.iter(QName(NS.XSD, "element")):
        ref = el.get("ref")
        if ref:
            out.append(QName(ref))
    return out
