"""Client-side plumbing: typed proxies over WSRF services.

§5 argues that standardized Resource Property interfaces let the toolkit
ship "higher-level interfaces ... provided to all clients and work on
all services".  :class:`WsrfClient` is that plumbing: generic invoke,
author-method calls, the four WS-ResourceProperties operations,
WS-ResourceLifetime operations and WS-BaseNotification Subscribe — all
working against any wrapped service.  (Benchmark D-1 compares this
against hand-rolled per-service proxies.)
"""

from __future__ import annotations

import zlib
from typing import Any, Dict, List, Optional

import numpy as np

from repro.net import Network
from repro.net.retry import RetryPolicy, with_retry
from repro.soap import SoapEnvelope, SoapFault, from_typed_element, to_typed_element
from repro.wsa import AddressingHeaders, EndpointReference
from repro.wsrf.basefaults import BaseFault
from repro.wsrf.lifetime import DESTROY, SET_TERMINATION_TIME
from repro.wsrf.porttypes import (
    GET_MULTIPLE_RP,
    GET_RP,
    QUERY_RP,
    SET_RP,
    XPATH_DIALECT,
)
from repro.xmlx import NS, Element, QName


class WsrfClient:
    """Issues SOAP calls from a given source host to any EPR.

    With a :class:`~repro.net.retry.RetryPolicy` attached, transport
    faults (``DeliveryError``, per-call timeouts) on request/response
    calls are retried with exponential backoff before surfacing; SOAP
    faults always propagate immediately.  One-way sends are never
    retried here — their loss semantics belong to the sender's layer
    (see broker redelivery in :mod:`repro.wsn.base_notification`).
    """

    def __init__(
        self,
        network: Network,
        source_host: str,
        retry_policy: Optional[RetryPolicy] = None,
        rng=None,
    ) -> None:
        self.network = network
        self.source_host = source_host
        self.retry_policy = retry_policy
        # Jitter RNG: seeded from the host name (crc32, not the salted
        # builtin hash) so backoff schedules are stable across runs.
        self._rng = (
            rng
            if rng is not None
            else np.random.default_rng(zlib.crc32(source_host.encode("utf-8")))
        )

    def with_policy(self, retry_policy: Optional[RetryPolicy]) -> "WsrfClient":
        """The same endpoint with a different retry policy."""
        return WsrfClient(
            self.network, self.source_host, retry_policy=retry_policy
        )

    def _count_retry(self, failures: int, exc: BaseException) -> None:
        self.network.stats.retries += 1

    # -- core --------------------------------------------------------------------

    def invoke(
        self,
        epr: EndpointReference,
        body: Element,
        action: Optional[str] = None,
        extra_headers: Optional[List[Element]] = None,
        reply_to: Optional[EndpointReference] = None,
        category: str = "rpc",
        one_way: bool = False,
        parent_span=None,
    ):
        """Coroutine: send one SOAP message; returns the response payload.

        Request/response calls raise reconstructed :class:`BaseFault`
        subtypes (or plain :class:`SoapFault`) on service faults.
        One-way sends return None immediately after delivery.
        *parent_span* explicitly parents this call's span (used by
        detached senders — notification fan-out — whose logical parent
        is not on the message-id correlation path).
        """
        if action is None:
            action = f"{body.tag.uri}/{body.tag.local}"
        headers = AddressingHeaders(to_epr=epr, action=action, reply_to=reply_to)
        envelope = SoapEnvelope(headers, body, extra_headers=extra_headers)
        prof = getattr(self.network, "prof", None)
        codec = getattr(self.network, "codec", None)
        if prof is None:
            raw = envelope.serialize(codec)
        else:
            with prof.region("soap.encode"):
                raw = envelope.serialize(codec)
        mid = headers.message_id
        obs = getattr(self.network, "obs", None)
        span = None
        if obs is not None:
            span = obs.start_span(
                "client.invoke",
                parent=parent_span,
                message_id=mid,
                attrs={
                    "source": self.source_host,
                    "action": action,
                    "operation": body.tag.local,
                    "category": category,
                },
            )
        try:
            if one_way:
                yield from self.network.send_one_way(
                    self.source_host, epr.address, raw, category=category,
                    message_id=mid,
                )
                return None
            if self.retry_policy is None:
                response_raw = yield from self.network.request(
                    self.source_host, epr.address, raw, category=category,
                    message_id=mid,
                )
            else:
                response_raw = yield from with_retry(
                    self.network.env,
                    self.retry_policy,
                    lambda: self.network.request(
                        self.source_host, epr.address, raw, category=category,
                        message_id=mid,
                    ),
                    rng=self._rng,
                    on_retry=self._count_retry,
                )
            if prof is None:
                response = SoapEnvelope.deserialize(response_raw, codec)
            else:
                with prof.region("soap.parse"):
                    response = SoapEnvelope.deserialize(response_raw, codec)
            payload = response.body
            if SoapFault.is_fault(payload):
                fault = SoapFault.from_element(payload)
                typed = BaseFault.from_soap_fault(fault)
                if span is not None:
                    span.attrs["fault"] = fault.code
                raise typed if typed is not None else fault
            return payload
        finally:
            if span is not None:
                obs.finish(span)

    def call(
        self,
        epr: EndpointReference,
        service_ns: str,
        method: str,
        args: Optional[Dict[str, Any]] = None,
        extra_headers: Optional[List[Element]] = None,
        category: str = "rpc",
        one_way: bool = False,
    ):
        """Coroutine: invoke an author-written web method by name.

        Arguments are serialized as typed child elements; the
        ``<method>Result`` child of the response is deserialized and
        returned (None for void methods and one-way sends).
        """
        body = Element(QName(service_ns, method))
        for name, value in (args or {}).items():
            body.append(to_typed_element(QName(service_ns, name), value))
        response = yield from self.invoke(
            epr,
            body,
            extra_headers=extra_headers,
            category=category,
            one_way=one_way,
        )
        if response is None:
            return None
        result = response.find(QName(service_ns, f"{method}Result"))
        return from_typed_element(result) if result is not None else None

    # -- WS-ResourceProperties ------------------------------------------------------

    def get_resource_property(self, epr: EndpointReference, qname: QName, category="rp"):
        """Coroutine: one GetResourceProperty; returns the decoded value."""
        body = Element(GET_RP, text=qname.clark())
        response = yield from self.invoke(epr, body, category=category)
        if not response.children:
            return None
        return from_typed_element(response.children[0])

    def get_multiple_resource_properties(self, epr, qnames, category="rp"):
        """Coroutine: returns {qname: value} for the requested properties."""
        body = Element(GET_MULTIPLE_RP)
        for qname in qnames:
            body.subelement(QName(NS.WSRF_RP, "ResourceProperty"), text=qname.clark())
        response = yield from self.invoke(epr, body, category=category)
        return {
            child.tag: from_typed_element(child) for child in response.children
        }

    def query_resource_properties(self, epr, xpath: str, category="rp"):
        """Coroutine: QueryResourceProperties; returns elements/strings."""
        body = Element(QUERY_RP)
        expr = body.subelement(QName(NS.WSRF_RP, "QueryExpression"), text=xpath)
        expr.set("Dialect", XPATH_DIALECT)
        response = yield from self.invoke(epr, body, category=category)
        out: list = []
        for child in response.children:
            if child.tag == QName(NS.WSRF_RP, "Result"):
                out.append(child.full_text())
            else:
                out.append(child)
        return out

    def set_resource_properties(
        self,
        epr,
        update: Optional[Dict[QName, Any]] = None,
        delete: Optional[List[QName]] = None,
        category="rp",
    ):
        """Coroutine: SetResourceProperties with Update/Delete blocks."""
        body = Element(SET_RP)
        if update:
            block = body.subelement(QName(NS.WSRF_RP, "Update"))
            for qname, value in update.items():
                block.append(to_typed_element(qname, value))
        for qname in delete or []:
            body.subelement(QName(NS.WSRF_RP, "Delete")).set(
                "ResourceProperty", qname.clark()
            )
        yield from self.invoke(epr, body, category=category)

    # -- WS-ResourceLifetime -----------------------------------------------------------

    def destroy(self, epr: EndpointReference, category="lifetime"):
        """Coroutine: wsrl:Destroy the resource behind *epr*."""
        yield from self.invoke(epr, Element(DESTROY), category=category)

    def set_termination_time(self, epr, when: Optional[float], category="lifetime"):
        """Coroutine: schedule destruction; None = never. Returns new time."""
        body = Element(SET_TERMINATION_TIME)
        requested = body.subelement(QName(NS.WSRF_RL, "RequestedTerminationTime"))
        if when is None:
            requested.set(QName(NS.XSI, "nil"), "true")
        else:
            requested.text = repr(float(when))
        response = yield from self.invoke(epr, body, category=category)
        new_el = response.find(QName(NS.WSRF_RL, "NewTerminationTime"))
        if new_el is None or new_el.get(QName(NS.XSI, "nil")) == "true":
            return None
        return float(new_el.full_text())

    # -- WS-BaseNotification (client side) -----------------------------------------------

    def subscribe(
        self,
        producer_epr: EndpointReference,
        consumer_epr: EndpointReference,
        topic_expression: str,
        dialect: Optional[str] = None,
        category: str = "subscribe",
    ):
        """Coroutine: wsnt:Subscribe; returns the subscription EPR."""
        from repro.wsn.base_notification import build_subscribe_body

        body = build_subscribe_body(consumer_epr, topic_expression, dialect)
        response = yield from self.invoke(producer_epr, body, category=category)
        ref = response.find(QName(NS.WSNT, "SubscriptionReference"))
        if ref is None:
            raise SoapFault("soap:Client", "SubscribeResponse lacks a reference")
        return EndpointReference.from_xml(ref)
