"""The WSRF core — this reproduction's equivalent of WSRF.NET.

The paper's toolkit transforms attribute-annotated .NET web services
into WSRF-compliant services (Fig. 1) with database-backed WS-Resource
state.  This package mirrors each piece:

=====================  =========================================================
paper (WSRF.NET)       here
=====================  =========================================================
``[Resource]``         :class:`Resource` descriptor on a service field
``[ResourceProperty]`` :func:`ResourceProperty` on a Python property
``[WebMethod]``        :func:`WebMethod` on a service method
``[WSRFPortType(…)]``  :func:`WSRFPortType` class decorator
``ServiceSkeleton``    :class:`ServiceSkeleton` base class
tooling + wrapper      :func:`deploy` / :class:`WrapperService`
WSRF port types        :mod:`repro.wsrf.porttypes` (WS-ResourceProperties),
                       :mod:`repro.wsrf.lifetime` (WS-ResourceLifetime)
WS-BaseFaults          :mod:`repro.wsrf.basefaults`
WS-ServiceGroup        :mod:`repro.wsrf.servicegroup`
client proxies         :class:`WsrfClient`
WSDL generation        :mod:`repro.wsrf.wsdl`
=====================  =========================================================

Both WS-Resource abstractions from §3 are supported: "WS-Resource as
state" (fields persisted through a database-backed store around each
invocation) and "WS-Resource as process" (service state referencing live
:class:`~repro.osim.cpu.SimProcess` objects, as the Execution Service
does for jobs).
"""

from repro.wsrf.attributes import (
    Resource,
    ResourceProperty,
    ServiceSkeleton,
    WebMethod,
    WSRFPortType,
)
from repro.wsrf.basefaults import (
    AuthenticationFault,
    BaseFault,
    InvalidResourcePropertyQNameFault,
    InvalidQueryExpressionFault,
    ResourceUnknownFault,
    TerminationTimeChangeRejectedFault,
    UnableToSetTerminationTimeFault,
)
from repro.wsrf.porttypes import (
    GetResourcePropertyPortType,
    GetMultipleResourcePropertiesPortType,
    QueryResourcePropertiesPortType,
    SetResourcePropertiesPortType,
)
from repro.wsrf.lifetime import (
    ImmediateResourceTerminationPortType,
    ScheduledResourceTerminationPortType,
)
from repro.wsrf.tooling import WrapperService, deploy
from repro.wsrf.client import WsrfClient
from repro.wsrf.proxy import ServiceProxy, build_proxy
from repro.wsrf.servicegroup import ServiceGroupService
from repro.wsrf.wsdl import generate_wsdl

__all__ = [
    "AuthenticationFault",
    "BaseFault",
    "GetMultipleResourcePropertiesPortType",
    "GetResourcePropertyPortType",
    "ImmediateResourceTerminationPortType",
    "InvalidQueryExpressionFault",
    "InvalidResourcePropertyQNameFault",
    "QueryResourcePropertiesPortType",
    "Resource",
    "ResourceProperty",
    "ResourceUnknownFault",
    "ScheduledResourceTerminationPortType",
    "ServiceGroupService",
    "ServiceProxy",
    "ServiceSkeleton",
    "SetResourcePropertiesPortType",
    "TerminationTimeChangeRejectedFault",
    "UnableToSetTerminationTimeFault",
    "WSRFPortType",
    "WebMethod",
    "WrapperService",
    "WsrfClient",
    "build_proxy",
    "deploy",
    "generate_wsdl",
]
