"""WSRF.NET tooling: generate the wrapper web service (paper Fig. 1).

``deploy(ServiceClass, machine, "Path")`` is the equivalent of running
the WSRF.NET tools over an annotated service: it builds the wrapper that
IIS dispatches to.  Per invocation the wrapper

1. parses the SOAP envelope and reads the EPR from the WS-Addressing
   headers ("the value of the EndpointReference in the <To> header");
2. resolves the WS-Resource: "querying a database to get the value(s)
   attached to the unique name given in the ReferenceProperties element
   of the EPR" — a :class:`~repro.db.BlobResourceStore` point load;
3. routes to either an author-written web method or a WSRF
   spec-defined port type method;
4. makes the state available as ordinary fields while the method runs;
5. saves changed values back to the database; and
6. serializes the result (or a WS-BaseFault) into the response envelope.
"""

from __future__ import annotations

import inspect
from typing import Any, Callable, Dict, Optional, Tuple, Type

from repro.db import BlobResourceStore, CachedResourceStore, NoSuchResource
from repro.perf import PerfConfig
from repro.sim import Lock
from repro.soap import SoapEnvelope, SoapFault, from_typed_element, to_typed_element
from repro.wsa import AddressingHeaders, EndpointReference
from repro.wsrf.attributes import (
    ServiceSkeleton,
    collect_resource_fields,
    collect_resource_properties,
    collect_web_methods,
)
from repro.wsrf.basefaults import (
    InvalidResourcePropertyQNameFault,
    ResourceUnknownFault,
    UnableToModifyResourcePropertyFault,
)
from repro.wsrf.porttypes import SpecPortType, rp_value_element
from repro.wssec import SecurityError, UsernameToken, open_security_header
from repro.xmlx import NS, Element, QName

#: the reference property WSRF.NET keys resource lookup on
RESOURCE_ID = QName(NS.UVACG, "ResourceID")

_WSSE_SECURITY = QName(NS.WSSE, "Security")


class InvocationContext:
    """Everything a service method can reach through ``self.wsrf``."""

    def __init__(self, wrapper: "WrapperService", resource_id, envelope, delivery, span=None):
        self.wrapper = wrapper
        self.resource_id = resource_id
        self.envelope = envelope
        self.delivery = delivery
        #: the wsrf.dispatch span of this invocation (None when obs is off);
        #: lets author code parent its own spans / notifications to the call
        self.span = span
        #: write-ahead outbox: (target_epr, body, category) triples held
        #: until the db_save stage has persisted this invocation's state
        self._outbox: list = []
        self._outbox_closed = False

    @property
    def machine(self):
        return self.wrapper.machine

    @property
    def client(self):
        return self.wrapper.client

    @property
    def source_host(self) -> str:
        return self.delivery.source_host if self.delivery else ""

    def my_epr(self) -> EndpointReference:
        return self.wrapper.epr_for(self.resource_id)

    def send_after_persist(self, target_epr, body, category: str = "notify") -> None:
        """Queue a one-way send honoring the write-ahead contract (WAL001).

        State must hit the database before any message announcing it
        leaves the host, so the wrapper holds these sends until the
        db_save stage completes (a crash in between discards them along
        with the unpersisted state — the client retries, the subscriber
        never hears about state that no longer exists).  Called from a
        detached process after its invocation already finished (e.g. a
        process watcher that has done its own locked save), the send
        fires immediately.
        """
        if self._outbox_closed:
            self._send_now(target_epr, body, category)
        else:
            self._outbox.append((target_epr, body, category))

    def _send_now(self, target_epr, body, category: str) -> None:
        from repro.wsn.base_notification import fire_and_forget

        fire_and_forget(
            self.wrapper.env, self.wrapper.client, target_epr, body,
            category=category, parent_span=self.span,
        )

    def _flush_outbox(self) -> None:
        """Release deferred sends; the acknowledged state is on disk."""
        self._outbox_closed = True
        pending, self._outbox = self._outbox, []
        for target_epr, body, category in pending:
            self._send_now(target_epr, body, category)

    def credentials(self) -> UsernameToken:
        """Decrypt the WS-Security UsernameToken addressed to this service."""
        header = self.envelope.find_header(_WSSE_SECURITY)
        if header is None:
            raise SecurityError("request carries no wsse:Security header")
        keys = self.wrapper.machine.keys
        if keys is None:
            raise SecurityError(
                f"machine {self.wrapper.machine.name!r} has no key pair enrolled"
            )
        return open_security_header(header, keys)


class WrapperService:
    """The generated WSRF-compliant wrapper around an author's service."""

    #: tells IIS to delegate worker-thread accounting (see IisServer.handle)
    manages_worker_pool = True

    def __init__(
        self,
        service_cls: Type[ServiceSkeleton],
        machine,
        path: str,
        store: Optional[BlobResourceStore] = None,
        perf: Optional[PerfConfig] = None,
    ) -> None:
        if not issubclass(service_cls, ServiceSkeleton):
            raise TypeError(
                f"{service_cls.__name__} must derive from ServiceSkeleton"
            )
        self.service_cls = service_cls
        self.machine = machine
        self.env = machine.env
        self.path = path.strip("/")
        self.service_name = self.path
        self.store = store if store is not None else BlobResourceStore()
        self.perf = perf
        if perf is not None and perf.state_cache and not isinstance(
            self.store, CachedResourceStore
        ):
            self.store = CachedResourceStore(self.store)
        if perf is not None and perf.codec_decode_cache:
            # Codec fast path: identical blobs parse once.  The cache is
            # shared by the blob cache's hit path and the inner store so
            # every load route benefits (docs/performance.md).
            from repro.db import DecodeCache

            decode_cache = DecodeCache()
            if isinstance(self.store, CachedResourceStore):
                self.store.decode_cache = decode_cache
                self.store.inner.decode_cache = decode_cache
            elif isinstance(self.store, BlobResourceStore):
                self.store.decode_cache = decode_cache
        self.address = machine.service_url(self.path)

        self._fields = collect_resource_fields(service_cls)
        self._rps = collect_resource_properties(service_cls)
        self._methods = collect_web_methods(service_cls)
        ns = service_cls.SERVICE_NS
        self._author_ops: Dict[QName, Tuple[str, Callable]] = {
            QName(ns, name): (name, fn) for name, fn in self._methods.items()
        }
        self._spec_ops: Dict[QName, Tuple[type, str]] = {}
        self._pt_rps: Dict[QName, Tuple[type, Callable]] = {}
        for pt_cls in getattr(service_cls, "__wsrf_port_types__", ()):
            if not (isinstance(pt_cls, type) and issubclass(pt_cls, SpecPortType)):
                raise TypeError(f"{pt_cls!r} is not a SpecPortType")
            for body_qname, method_name in pt_cls.OPERATIONS.items():
                self._spec_ops[body_qname] = (pt_cls, method_name)
            for rp_qname, fn in pt_cls.provides_rps().items():
                self._pt_rps[rp_qname] = (pt_cls, fn)

        self._termination: Dict[str, Optional[float]] = {}
        self._resource_locks: Dict[str, object] = {}
        #: next resource-id suffix; a plain int so checkpoints capture it
        self._rid_next = 1
        self._pending_db_ops = 0
        #: set by the WS-Notification producer attachment
        self.publish_hook: Optional[Callable] = None
        #: callbacks fired with the resource id after each destroy
        self.on_resource_destroyed: list = []
        #: diagnostics
        self.invocations = 0
        self.faults_returned = 0
        #: performance-layer counters (stay 0 with perf off)
        self.writes_elided = 0
        self.loads_elided = 0

        from repro.wsrf.client import WsrfClient

        self.client = WsrfClient(machine.network, machine.name)
        machine.iis.register_app(self.path, self)
        obs = getattr(machine.network, "obs", None)
        if obs is not None:
            obs.register_wrapper(self)
        san = getattr(self.env, "san", None)
        if san is not None:
            # Runtime lockset/happens-before sanitizer: wrap the store so
            # every row access is checked (docs/static_analysis.md).
            san.instrument_wrapper(self)

    # -- identity -------------------------------------------------------------------

    def epr_for(self, resource_id: Optional[str]) -> EndpointReference:
        if resource_id is None:
            return EndpointReference(self.address)
        return EndpointReference(self.address, {RESOURCE_ID: str(resource_id)})

    def service_epr(self) -> EndpointReference:
        return self.epr_for(None)

    # -- resource management ----------------------------------------------------------

    def _state_from_instance(self, instance) -> Dict[QName, Any]:
        return {
            desc.resolved_qname(self.service_cls): getattr(instance, name)
            for name, desc in self._fields.items()
        }

    def _populate_instance(self, instance, state: Dict[QName, Any]) -> None:
        for name, desc in self._fields.items():
            qname = desc.resolved_qname(self.service_cls)
            if qname in state:
                setattr(instance, name, state[qname])

    def create_resource_from_fields(self, fields: Dict[str, Any]) -> str:
        unknown = set(fields) - set(self._fields)
        if unknown:
            raise ValueError(
                f"{self.service_cls.__name__} has no Resource fields {sorted(unknown)}"
            )
        probe = self.service_cls()
        for name, value in fields.items():
            setattr(probe, name, value)
        state = self._state_from_instance(probe)
        rid = f"{self.path}-r{self._rid_next:05d}"
        self._rid_next += 1
        self.store.create(self.service_name, rid, state)
        self._pending_db_ops += 1
        return rid

    def destroy_resource(self, resource_id: str) -> None:
        try:
            self.store.destroy(self.service_name, resource_id)
        except NoSuchResource:
            raise ResourceUnknownFault(
                description=f"no resource {resource_id!r} at {self.address}",
                timestamp=self.env.now,
            ) from None
        self._termination.pop(resource_id, None)
        self._pending_db_ops += 1
        for callback in self.on_resource_destroyed:
            callback(resource_id)

    def resource_ids(self):
        return self.store.list_ids(self.service_name)

    # -- termination times ---------------------------------------------------------------

    def set_termination_time(self, resource_id: str, when: Optional[float]) -> None:
        self._termination[resource_id] = when

    def get_termination_time(self, resource_id: str) -> Optional[float]:
        return self._termination.get(resource_id)

    # -- per-resource serialization ------------------------------------------------

    def resource_lock(self, resource_id: str) -> Lock:
        """The mutex serializing invocations (and watchers) on a resource.

        Without this, two concurrent handlers doing load-modify-save on
        the same WS-Resource would silently lose updates.
        """
        lock = self._resource_locks.get(resource_id)
        if lock is None:
            lock = Lock(self.env)
            self._resource_locks[resource_id] = lock
            san = self.env.san
            if san is not None:
                san.label_lock(
                    lock,
                    f"{self.machine.name}:{self.service_name}/{resource_id}",
                )
        return lock

    def start_sweeper(self, period: float = 1.0):
        """Spawn the lifetime sweeper enforcing scheduled termination."""

        def sweeper(env):
            while True:
                yield env.timeout(period)
                now = env.now
                expired = [
                    rid
                    for rid, when in self._termination.items()
                    if when is not None and when <= now
                ]
                for rid in expired:
                    # Take the resource lock: an in-flight invocation may be
                    # mid load-modify-save on this resource, and destroying
                    # it under that handler loses its write (or resurrects
                    # the resource when the handler saves after us).
                    lock = self.resource_lock(rid)
                    yield lock.acquire()
                    try:
                        try:
                            state = self.store.load(self.service_name, rid)
                        except NoSuchResource:
                            self._termination.pop(rid, None)
                            continue
                        instance = self.service_cls()
                        self._populate_instance(instance, state)
                        ctx = InvocationContext(self, rid, None, None)
                        instance._invocation = ctx
                        instance.wsrf_on_destroy()
                        self.destroy_resource(rid)
                        # The destroy is persisted; deferred sends may go.
                        ctx._flush_outbox()
                    finally:
                        lock.release()

        return self.env.process(sweeper(self.env))

    # -- crash-restart ------------------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Checkpoint this service's durable state (docs/durability.md).

        Durable means what a real host would find on disk after a power
        cut: the resource-store contents (store writes are synchronous
        in the simulation, hence instantly durable), the scheduled
        termination times and the resource-id allocator.  Everything
        else — resource locks, the perf layer's blob cache, a producer's
        subscription mirror — is process memory and is rebuilt on
        :meth:`restore`.
        """
        return {
            "store": self.store.snapshot(),
            "termination": dict(self._termination),
            "rid_next": self._rid_next,
        }

    def restore(self, snap: Dict[str, Any]) -> None:
        """Bring the service back from *snap* after its host bounced.

        The store is overwritten **in place** (detached watchers, the
        producer attachment and the testbed all hold references to it)
        and volatile per-boot state is dropped: locks died with their
        holders, the blob cache may describe rolled-back writes
        (``CachedResourceStore.restore`` clears it), and in-memory
        mirrors are rebuilt from persisted rows.  Finishes by invoking
        the author-side :meth:`ServiceSkeleton.wsrf_recover` hook.
        """
        obs = getattr(self.machine.network, "obs", None)
        span = None
        if obs is not None:
            span = obs.start_span(
                "wsrf.recover",
                attrs={"service": self.path, "host": self.machine.name},
            )
        self.store.restore(snap["store"])
        san = self.env.san
        if san is not None:
            # The rollback invalidated the crashed boot's access history.
            san.on_recovery_begin(self)
        self._termination = dict(snap["termination"])
        self._rid_next = snap["rid_next"]
        self._resource_locks = {}
        #: created lazily so default obs exports stay byte-identical
        self.restarts = getattr(self, "restarts", 0) + 1
        producer = getattr(self, "notification_producer", None)
        if producer is not None:
            producer.rebuild_from_store()
        self.service_cls.wsrf_recover(self)
        # Recovery's own destroys/loads are part of the reboot, not of
        # whichever dispatch happens to run next: don't charge them.
        self._pending_db_ops = 0
        if san is not None:
            # Dispatches arriving after the host is back up are causally
            # after everything recovery wrote.
            san.on_recovery_end(self)
        if span is not None:
            obs.finish(span)

    def _check_alive(self, epoch: int) -> None:
        """Abort the dispatch if the host crashed since it started.

        A handler that straddles a crash is a zombie of the previous
        boot: its writes were never persisted (the checkpoint predates
        them) and its reply must not leave the host.  Raising
        :class:`~repro.net.network.DeliveryError` models the client-side
        connection reset; retry policies take it from there.
        """
        host = getattr(self.machine, "host", None)
        if host is None:
            return
        if host.down or getattr(host, "boot_epoch", 0) != epoch:
            from repro.net.network import DeliveryError

            raise DeliveryError(
                f"host {self.machine.name!r} went down mid-dispatch; "
                "unpersisted work is discarded (write-ahead contract)"
            )

    # -- notifications ------------------------------------------------------------------

    def publish(self, topic, payload, parent_span=None) -> None:
        if self.publish_hook is None:
            raise RuntimeError(
                f"service {self.path!r} does not import the "
                "NotificationProducer port type"
            )
        self.publish_hook(topic, payload, parent_span=parent_span)

    # -- resource properties --------------------------------------------------------------

    def rp_element(self, instance, qname: QName) -> Element:
        rp = self._rps.get(qname)
        if rp is not None:
            return rp_value_element(qname, rp.fget(instance))
        pt_entry = self._pt_rps.get(qname)
        if pt_entry is not None:
            pt_cls, fn = pt_entry
            return rp_value_element(qname, fn(pt_cls(self, instance)))
        raise InvalidResourcePropertyQNameFault(
            description=f"service {self.path!r} exposes no resource property {qname}",
            timestamp=self.env.now,
        )

    def set_rp_value(self, instance, qname: QName, value) -> None:
        rp = self._rps.get(qname)
        if rp is None:
            raise InvalidResourcePropertyQNameFault(
                description=f"no resource property {qname}", timestamp=self.env.now
            )
        if rp.fset is None:
            raise UnableToModifyResourcePropertyFault(
                description=f"resource property {qname} is read-only",
                timestamp=self.env.now,
            )
        rp.fset(instance, value)

    def set_rp_from_element(self, instance, rp_el: Element) -> None:
        self.set_rp_value(instance, rp_el.tag, from_typed_element(rp_el))

    def build_rp_document(self, instance) -> Element:
        root = Element(QName(self.service_cls.SERVICE_NS, "ResourceProperties"))
        for qname, rp in self._rps.items():
            root.append(rp_value_element(qname, rp.fget(instance)))
        for qname, (pt_cls, fn) in self._pt_rps.items():
            root.append(rp_value_element(qname, fn(pt_cls(self, instance))))
        return root

    # -- the dispatch pipeline ---------------------------------------------------------------

    def handle_soap(self, payload: str, delivery, pool=None):
        """IIS-facing entry point; returns a simulation coroutine."""
        gen = self._handle_soap_impl(payload, delivery, pool)
        prof = getattr(self.machine.network, "prof", None)
        if prof is None:
            # Disabled profiling hands back the impl generator directly
            # (no wrapper frame — the obs None-check contract).
            return gen
        return prof.wrap("wsrf.dispatch", gen)

    def _handle_soap_impl(self, payload: str, delivery, pool=None):
        self.invocations += 1
        prof = getattr(self.machine.network, "prof", None)
        codec = getattr(self.machine.network, "codec", None)
        if prof is None:
            envelope = SoapEnvelope.deserialize(payload, codec)
        else:
            with prof.region("soap.parse"):
                envelope = SoapEnvelope.deserialize(payload, codec)
        rid = envelope.addressing.to_epr.get(RESOURCE_ID)
        obs = getattr(self.machine.network, "obs", None)
        span = None
        if obs is not None:
            mid = getattr(delivery, "message_id", "") if delivery is not None else ""
            span = obs.start_span(
                "wsrf.dispatch",
                message_id=mid or envelope.addressing.message_id or None,
                attrs={
                    "service": self.path,
                    "host": self.machine.name,
                    "operation": envelope.body.tag.local,
                },
            )
        try:
            response_body = yield from self._dispatch(
                envelope, rid, delivery, pool, span=span
            )
        except SoapFault as fault:
            self.faults_returned += 1
            if span is not None:
                span.attrs["fault"] = fault.code
            response_body = fault.to_element()
        except (SecurityError, NoSuchResource, ValueError, TypeError, KeyError, LookupError) as exc:
            self.faults_returned += 1
            if span is not None:
                span.attrs["fault"] = type(exc).__name__
            response_body = SoapFault(
                "soap:Server", f"{type(exc).__name__}: {exc}"
            ).to_element()
        finally:
            if span is not None:
                obs.spans.finish_subtree(span)
        if delivery is not None and delivery.one_way:
            return None
        reply_to = envelope.addressing.reply_to or EndpointReference(
            f"http://{delivery.source_host}/anonymous" if delivery else "http://anonymous"
        )
        headers = AddressingHeaders(
            to_epr=reply_to,
            action=envelope.action + "Response",
            relates_to=envelope.addressing.message_id,
        )
        response = SoapEnvelope(headers, response_body)
        if prof is None:
            return response.serialize(codec)
        with prof.region("soap.encode"):
            return response.serialize(codec)

    def _charge_pending_db(self):
        # Resource create/destroy from author code is synchronous; the DB
        # time it implies is charged here, after the method returns.
        while self._pending_db_ops:
            self._pending_db_ops -= 1
            yield self.machine.db_delay()

    def _dispatch(self, envelope: SoapEnvelope, rid, delivery, pool=None, span=None):
        body = envelope.body
        tag = body.tag
        self._pending_db_ops = 0
        # Which boot of this host the invocation belongs to; a restart
        # mid-dispatch turns the handler into a zombie (see _check_alive).
        epoch = getattr(getattr(self.machine, "host", None), "boot_epoch", 0)
        prof = getattr(self.machine.network, "prof", None)
        obs = getattr(self.machine.network, "obs", None) if span is not None else None
        if obs is not None:
            # EPR resolution (reading ResourceID out of the headers) costs
            # no simulated time; the zero-length stage still marks Fig. 1
            # step 1 in the trace.
            stage = obs.start_span(
                "wsrf.dispatch.epr_resolve", parent=span,
                attrs={"service": self.path, "resource_id": rid or ""},
            )
            obs.finish(stage)

        if tag in self._author_ops:
            name, fn = self._author_ops[tag]
            meta = fn.__web_method__
            requires_resource = meta["requires_resource"]
            handler_kind = "author"
        elif tag in self._spec_ops:
            pt_cls_probe = self._spec_ops[tag][0]
            optional = tag in pt_cls_probe.OPTIONAL_RESOURCE_OPS
            requires_resource = not optional or rid is not None
            handler_kind = "spec"
        else:
            raise SoapFault(
                "soap:Client",
                f"service {self.path!r} has no operation for body element {tag}",
            )

        san = self.env.san
        if san is not None:
            # Joins the service's recovery clock and reports reentrant
            # dispatch of a resource this call stack already holds.
            san.on_dispatch_enter(self.machine.name, self.service_name, rid)
        instance = self.service_cls()
        state_before: Optional[Dict[QName, Any]] = None
        lock = None
        stage = None
        if obs is not None:
            # Queueing: the resource lock plus the ASP.NET worker thread.
            # Counted as a pipeline stage so the stages partition the
            # whole dispatch span (every simulated wait lands in exactly
            # one wsrf.dispatch.* child).
            stage = obs.start_span(
                "wsrf.dispatch.queue", parent=span, attrs={"service": self.path}
            )
        if requires_resource:
            if rid is None:
                if stage is not None:
                    obs.finish(stage)
                raise ResourceUnknownFault(
                    description=(
                        f"operation {tag.local} requires a WS-Resource but the "
                        "EPR carries no ResourceID reference property"
                    ),
                    timestamp=self.env.now,
                )
            lock = self.resource_lock(rid)
            yield lock.acquire()
        worker_held = False
        ctx = None
        try:
            # Resource lock first, worker thread second: lock waiters must
            # not occupy the ASP.NET pool (re-entrancy deadlock hazard).
            if pool is not None:
                yield pool.acquire()
                worker_held = True
                yield self.env.timeout(self.machine.params.iis_dispatch_s)
            if stage is not None:
                obs.finish(stage)
            self._check_alive(epoch)
            if requires_resource:
                cache_hit = (
                    self.perf is not None
                    and self.perf.state_cache
                    and isinstance(self.store, CachedResourceStore)
                    and self.store.is_cached(self.service_name, rid)
                )
                if obs is not None:
                    attrs = {"service": self.path}
                    if self.perf is not None and self.perf.state_cache:
                        attrs["cache"] = "hit" if cache_hit else "miss"
                    stage = obs.start_span(
                        "wsrf.dispatch.db_load", parent=span, attrs=attrs,
                    )
                if cache_hit:
                    # The state is served from the write-through cache:
                    # no database access, no db delay.  The resource lock
                    # is held, so nothing can invalidate the entry between
                    # the is_cached probe and the load.
                    self.loads_elided += 1
                else:
                    yield self.machine.db_delay()
                try:
                    if prof is None:
                        state_before = self.store.load(self.service_name, rid)
                    else:
                        with prof.region("db.load"):
                            state_before = self.store.load(self.service_name, rid)
                except NoSuchResource:
                    raise ResourceUnknownFault(
                        description=f"no resource {rid!r} at {self.address}",
                        timestamp=self.env.now,
                    ) from None
                self._populate_instance(instance, state_before)
                if stage is not None:
                    obs.finish(stage)
            ctx = InvocationContext(self, rid, envelope, delivery, span=span)
            instance._invocation = ctx

            if obs is not None:
                stage = obs.start_span(
                    "wsrf.dispatch.method", parent=span,
                    attrs={"service": self.path, "operation": tag.local},
                )
            if handler_kind == "author":
                kwargs = self._deserialize_args(fn, body)
                result = fn(instance, **kwargs)
                if inspect.isgenerator(result):
                    result = yield from result
                response_body = self._serialize_author_result(name, result)
            else:
                pt_cls, method_name = self._spec_ops[tag]
                pt = pt_cls(self, instance)
                result = getattr(pt, method_name)(body)
                if inspect.isgenerator(result):
                    result = yield from result
                response_body = result
            if stage is not None:
                obs.finish(stage)
            # A crash between the method and the db_save stage rolls the
            # state back to the checkpoint: no save, no reply, and the
            # outbox dies unflushed (the write-ahead contract's whole
            # point — nothing announces state that was never persisted).
            self._check_alive(epoch)

            # Save state if the resource still exists and anything changed.
            state_after: Optional[Dict[QName, Any]] = None
            if (
                requires_resource
                and state_before is not None
                and self.store.exists(self.service_name, rid)
            ):
                candidate = self._state_from_instance(instance)
                if candidate != state_before:
                    state_after = candidate
            if (
                self.perf is not None
                and self.perf.write_elision
                and state_after is None
                and self._pending_db_ops == 0
            ):
                # Nothing to persist: skip the db_save stage entirely.
                # (WSRF.NET's pipeline opens it unconditionally, so the
                # default path below keeps the stage even when empty.)
                # Deferred sends are safe here — elision means the state
                # they describe was already durable before this dispatch.
                self.writes_elided += 1
                ctx._flush_outbox()
                return response_body
            if obs is not None:
                stage = obs.start_span(
                    "wsrf.dispatch.db_save", parent=span,
                    attrs={"service": self.path},
                )
            if state_after is not None:
                yield self.machine.db_delay()
                self._check_alive(epoch)
                if prof is None:
                    self.store.save(self.service_name, rid, state_after)
                else:
                    with prof.region("db.save"):
                        self.store.save(self.service_name, rid, state_after)
            yield from self._charge_pending_db()
            if stage is not None:
                obs.finish(stage)
            ctx._flush_outbox()
            return response_body
        finally:
            # Fault paths reach here with the outbox unflushed: those
            # sends are discarded, not delayed (their state never made
            # it to the database).  Closing the context makes any later
            # send_after_persist from detached watchers fire directly.
            if ctx is not None:
                ctx._outbox_closed = True
            if worker_held:
                pool.release()
            if lock is not None:
                lock.release()
            if san is not None:
                san.on_dispatch_exit(self.machine.name, self.service_name, rid)

    def _deserialize_args(self, fn, body: Element) -> Dict[str, Any]:
        signature = inspect.signature(fn)
        kwargs: Dict[str, Any] = {}
        by_local = {child.tag.local: child for child in body.children}
        for name, param in signature.parameters.items():
            if name == "self" or param.kind in (
                inspect.Parameter.VAR_POSITIONAL,
                inspect.Parameter.VAR_KEYWORD,
            ):
                continue
            child = by_local.get(name)
            if child is not None:
                kwargs[name] = from_typed_element(child)
            elif param.default is not inspect.Parameter.empty:
                kwargs[name] = param.default
            else:
                raise SoapFault(
                    "soap:Client",
                    f"operation {fn.__name__!r} is missing argument {name!r}",
                )
        return kwargs

    def _serialize_author_result(self, name: str, result) -> Element:
        ns = self.service_cls.SERVICE_NS
        if isinstance(result, Element) and result.tag.local == f"{name}Response":
            return result
        response = Element(QName(ns, f"{name}Response"))
        if result is not None:
            response.append(to_typed_element(QName(ns, f"{name}Result"), result))
        return response


def deploy(
    service_cls: Type[ServiceSkeleton],
    machine,
    path: str,
    store: Optional[BlobResourceStore] = None,
    perf: Optional[PerfConfig] = None,
) -> WrapperService:
    """Run the WSRF.NET tooling: wrap *service_cls* and host it in IIS.

    Passing a :class:`~repro.perf.PerfConfig` opts this service into the
    hot-path performance layer (state caching + write elision); the
    default ``perf=None`` keeps the unoptimized Fig. 1 pipeline.
    """
    return WrapperService(service_cls, machine, path, store=store, perf=perf)
