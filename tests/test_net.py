"""Tests for the simulated network fabric."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net import (
    DeliveryError,
    Network,
    NetworkParams,
    PortInUse,
    Uri,
    UriError,
)
from repro.sim import Environment


class TestUri:
    @pytest.mark.parametrize(
        "text,scheme,host,port,path",
        [
            ("http://node1:80/FSS", "http", "node1", 80, "/FSS"),
            ("http://node1/FSS", "http", "node1", 80, "/FSS"),
            ("soap.tcp://client-3:9000/files", "soap.tcp", "client-3", 9000, "/files"),
            ("soap.tcp://client-3", "soap.tcp", "client-3", 8081, "/"),
            ("HTTP://N1/x", "http", "N1", 80, "/x"),
        ],
    )
    def test_parse_network_uris(self, text, scheme, host, port, path):
        uri = Uri.parse(text)
        assert (uri.scheme, uri.host, uri.port, uri.path) == (scheme, host, port, path)
        assert uri.is_network

    def test_local_scheme(self):
        uri = Uri.parse("local://c:\\data\\file1")
        assert uri.scheme == "local"
        assert uri.path == "c:\\data\\file1"
        assert not uri.is_network

    def test_job_scheme(self):
        uri = Uri.parse("job1://output2")
        assert uri.scheme == "job1"
        assert uri.path == "output2"
        assert not uri.is_network

    @pytest.mark.parametrize(
        "bad",
        ["no-scheme", "http://", "http://host:notaport/x", "http://host:0/x", "://x"],
    )
    def test_malformed_rejected(self, bad):
        with pytest.raises(UriError):
            Uri.parse(bad)

    def test_unparse_roundtrip(self):
        for text in [
            "http://node1:80/FSS",
            "soap.tcp://c:9000/f",
            "local://tmp/x",
            "job2://out",
        ]:
            assert Uri.parse(Uri.parse(text).unparse()) == Uri.parse(text)


class _EchoServer:
    """Echoes the payload back, optionally with a fixed service delay."""

    def __init__(self, env, delay=0.0, log=None):
        self.env = env
        self.delay = delay
        self.log = log if log is not None else []

    def handle(self, payload, ctx):
        self.log.append((self.env.now, payload, ctx))
        if self.delay:
            yield self.env.timeout(self.delay)
        return f"echo:{payload}"


def _fabric(n_hosts=2, params=None):
    env = Environment()
    net = Network(env, params=params)
    hosts = [net.add_host(f"node{i}") for i in range(n_hosts)]
    return env, net, hosts


def _run(env, gen):
    proc = env.process(gen)
    env.run(until=proc)
    return proc.value


class TestRequestResponse:
    def test_roundtrip_payload(self):
        env, net, (a, b) = _fabric()
        b.bind(80, _EchoServer(env))
        reply = _run(env, net.request("node0", "http://node1:80/svc", "hello"))
        assert reply == "echo:hello"
        assert env.now > 0

    def test_unknown_host_rejected(self):
        env, net, _ = _fabric()
        with pytest.raises(DeliveryError, match="unknown host"):
            _run(env, net.request("node0", "http://ghost/x", "m"))

    def test_connection_refused(self):
        env, net, _ = _fabric()
        with pytest.raises(DeliveryError, match="refused"):
            _run(env, net.request("node0", "http://node1:81/x", "m"))

    def test_down_host(self):
        env, net, (a, b) = _fabric()
        b.bind(80, _EchoServer(env))
        b.down = True
        with pytest.raises(DeliveryError, match="down"):
            _run(env, net.request("node0", "http://node1/x", "m"))

    def test_partition_and_heal(self):
        env, net, (a, b) = _fabric()
        b.bind(80, _EchoServer(env))
        net.partition("node0", "node1")
        with pytest.raises(DeliveryError, match="partition"):
            _run(env, net.request("node0", "http://node1/x", "m"))
        net.heal("node0", "node1")
        assert _run(env, net.request("node0", "http://node1/x", "m")) == "echo:m"

    def test_non_network_uri_rejected(self):
        env, net, _ = _fabric()
        with pytest.raises(DeliveryError):
            _run(env, net.request("node0", "local://c:/file", "m"))

    def test_server_delay_adds_to_latency(self):
        env1, net1, (_, b1) = _fabric()
        b1.bind(80, _EchoServer(env1, delay=0.0))
        _run(env1, net1.request("node0", "http://node1/x", "m"))
        fast = env1.now

        env2, net2, (_, b2) = _fabric()
        b2.bind(80, _EchoServer(env2, delay=0.5))
        _run(env2, net2.request("node0", "http://node1/x", "m"))
        assert env2.now == pytest.approx(fast + 0.5, rel=1e-6)

    def test_large_payload_takes_longer(self):
        env1, net1, (_, b1) = _fabric()
        b1.bind(80, _EchoServer(env1))
        _run(env1, net1.request("node0", "http://node1/x", "m"))
        small = env1.now

        env2, net2, (_, b2) = _fabric()
        b2.bind(80, _EchoServer(env2))
        _run(env2, net2.request("node0", "http://node1/x", "m" * 1_000_000))
        assert env2.now > small + 0.05  # ≥ 1MB at 12.5MB/s each way


class TestOneWay:
    def test_sender_does_not_wait_for_handler(self):
        env, net, (a, b) = _fabric()
        log = []
        b.bind(80, _EchoServer(env, delay=10.0, log=log))

        def sender(env):
            yield from net.send_one_way("node0", "http://node1/x", "note")
            return env.now

        sent_at = _run(env, sender(env))
        assert sent_at < 1.0  # returned long before the 10 s handler finished
        env.run()
        assert len(log) == 1

    def test_handler_exception_does_not_reach_sender(self):
        env, net, (a, b) = _fabric()

        class Bad:
            def handle(self, payload, ctx):
                yield env.timeout(0)
                raise RuntimeError("server-side boom")

        b.bind(80, Bad())

        def sender(env):
            yield from net.send_one_way("node0", "http://node1/x", "note")
            return "sent ok"

        assert _run(env, sender(env)) == "sent ok"
        # Draining the schedule surfaces the handler's failure.
        with pytest.raises(RuntimeError, match="boom"):
            env.run()

    def test_one_way_ctx_flag(self):
        env, net, (a, b) = _fabric()
        log = []
        b.bind(80, _EchoServer(env, log=log))
        _run(env, net.send_one_way("node0", "http://node1/x", "n"))
        env.run()
        assert log[0][2].one_way is True


class TestSoapTcpSessions:
    def test_second_message_skips_handshake(self):
        env, net, (a, b) = _fabric()
        b.bind(9000, _EchoServer(env))

        def pair(env):
            t0 = env.now
            yield from net.request("node0", "soap.tcp://node1:9000/x", "m")
            first = env.now - t0
            t1 = env.now
            yield from net.request("node0", "soap.tcp://node1:9000/x", "m")
            second = env.now - t1
            return first, second

        first, second = _run(env, pair(env))
        assert second < first
        assert first - second == pytest.approx(
            net.params.soaptcp_connect_s + net.params.latency_s, rel=1e-6
        )

    def test_http_pays_handshake_every_time(self):
        env, net, (a, b) = _fabric()
        b.bind(80, _EchoServer(env))

        def pair(env):
            t0 = env.now
            yield from net.request("node0", "http://node1/x", "m")
            first = env.now - t0
            t1 = env.now
            yield from net.request("node0", "http://node1/x", "m")
            return first, env.now - t1

        first, second = _run(env, pair(env))
        assert first == pytest.approx(second, rel=1e-9)

    def test_drop_tcp_sessions_forces_reconnect(self):
        env, net, (a, b) = _fabric()
        b.bind(9000, _EchoServer(env))

        def scenario(env):
            yield from net.request("node0", "soap.tcp://node1:9000/x", "m")
            net.drop_tcp_sessions("node1")
            t = env.now
            yield from net.request("node0", "soap.tcp://node1:9000/x", "m")
            return env.now - t

        after_drop = _run(env, scenario(env))
        assert after_drop > net.params.soaptcp_connect_s


class TestNicSerialization:
    def test_concurrent_sends_queue_fifo(self):
        """Two simultaneous 1 MB sends from one host take ~2x one send."""
        payload = "x" * 1_000_000

        def one_transfer_time():
            env, net, (a, b) = _fabric()
            b.bind(80, _EchoServer(env))
            _run(env, net.send_one_way("node0", "http://node1/x", payload))
            return env.now  # sender completion (excludes receiver parse)

        solo = one_transfer_time()

        env, net, (a, b) = _fabric()
        b.bind(80, _EchoServer(env))
        done = []

        def sender(env):
            yield from net.send_one_way("node0", "http://node1/x", payload)
            done.append(env.now)

        env.process(sender(env))
        env.process(sender(env))
        env.run()
        # The second send queues behind the first on the NIC, so it finishes
        # one full wire-transfer later (XML CPU costs overlap, wire does not).
        wire = net.params.transfer_time(len(payload), net.params.http_overhead_B)
        assert max(done) - solo >= wire * 0.9


class TestStats:
    def test_counters(self):
        env, net, (a, b) = _fabric()
        b.bind(80, _EchoServer(env))
        _run(env, net.request("node0", "http://node1/x", "hello", category="job"))
        assert net.stats.messages == 2  # request + response
        assert net.stats.by_scheme["http"] == 2
        assert net.stats.by_category["job"] == 2
        assert net.stats.bytes > len("hello")

    def test_reset(self):
        env, net, (a, b) = _fabric()
        b.bind(80, _EchoServer(env))
        _run(env, net.request("node0", "http://node1/x", "hello"))
        net.stats.reset()
        assert net.stats.messages == 0 and net.stats.bytes == 0


class TestHost:
    def test_duplicate_host_rejected(self):
        env = Environment()
        net = Network(env)
        net.add_host("n")
        with pytest.raises(ValueError):
            net.add_host("n")

    def test_port_in_use(self):
        env, net, (a, _) = _fabric()
        a.bind(80, _EchoServer(env))
        with pytest.raises(PortInUse):
            a.bind(80, _EchoServer(env))
        a.unbind(80)
        a.bind(80, _EchoServer(env))

    def test_bind_requires_handler(self):
        env, net, (a, _) = _fabric()
        with pytest.raises(TypeError):
            a.bind(80, object())


class TestTransferTimeProperties:
    @given(size=st.integers(min_value=0, max_value=10**8))
    def test_transfer_time_monotone(self, size):
        p = NetworkParams()
        assert p.transfer_time(size + 1, 0) > p.transfer_time(size, 0) - 1e-12
        assert p.transfer_time(size, 0) >= 0

    @given(size=st.integers(min_value=1, max_value=10**7))
    def test_soaptcp_beats_http_per_message_overhead(self, size):
        p = NetworkParams()
        assert p.transfer_time(size, p.soaptcp_overhead_B) < p.transfer_time(
            size, p.http_overhead_B
        )


class TestFaultInjection:
    """Link-level fault injection (repro.net.faults)."""

    def test_request_drop_raises_delivery_error(self):
        env, net, (a, b) = _fabric()
        b.bind(80, _EchoServer(env))
        net.inject_faults(drop_probability=1.0, seed=1)
        with pytest.raises(DeliveryError, match="dropped on link"):
            _run(env, net.request("node0", "http://node1/x", "m"))
        assert net.stats.drops >= 1
        assert net.stats.faults.get("drop", 0) >= 1
        assert net.stats.drops_by_link.get(("node0", "node1"), 0) >= 1

    def test_one_way_drop_is_silent(self):
        env, net, (a, b) = _fabric()
        log = []
        b.bind(80, _EchoServer(env, log=log))
        net.inject_faults(drop_probability=1.0, seed=1)

        def sender(env):
            yield from net.send_one_way("node0", "http://node1/x", "note")
            return "returned"

        assert _run(env, sender(env)) == "returned"
        env.run()
        assert log == []  # lost without any error at the sender
        assert net.stats.drops >= 1

    def test_zero_probability_draws_nothing(self):
        """p=0 must not consume RNG draws, so adding lossless links to a
        scenario cannot perturb the fault sequence elsewhere."""
        env, net, (a, b) = _fabric()
        b.bind(80, _EchoServer(env))
        injector = net.inject_faults(drop_probability=0.0, seed=5)
        _run(env, net.request("node0", "http://node1/x", "m"))
        assert injector.draws == 0 and injector.drops == 0

    def test_deterministic_given_seed(self):
        def drop_pattern(seed):
            env, net, (a, b) = _fabric()
            b.bind(80, _EchoServer(env))
            net.inject_faults(drop_probability=0.5, seed=seed)
            pattern = []
            for _ in range(20):
                try:
                    _run(env, net.request("node0", "http://node1/x", "m"))
                    pattern.append(0)
                except DeliveryError:
                    pattern.append(1)
            return pattern

        assert drop_pattern(7) == drop_pattern(7)
        assert drop_pattern(7) != drop_pattern(8)

    def test_loopback_exempt(self):
        env, net, (a, b) = _fabric()
        a.bind(80, _EchoServer(env))
        net.inject_faults(drop_probability=1.0, seed=1)
        reply = _run(env, net.request("node0", "http://node0:80/x", "m"))
        assert reply == "echo:m"

    def test_extra_latency_applied(self):
        env1, net1, (_, b1) = _fabric()
        b1.bind(80, _EchoServer(env1))
        _run(env1, net1.request("node0", "http://node1/x", "m"))
        base = env1.now

        env2, net2, (_, b2) = _fabric()
        b2.bind(80, _EchoServer(env2))
        net2.inject_faults(extra_latency_s=0.25, seed=1)
        _run(env2, net2.request("node0", "http://node1/x", "m"))
        # Every link traversal (handshake legs included) pays the extra
        # latency, so the round trip grows by at least two of them.
        assert env2.now >= base + 0.5

    def test_per_link_plan_overrides_default(self):
        from repro.net import LinkFaultPlan

        env, net, hosts = _fabric(n_hosts=3)
        hosts[1].bind(80, _EchoServer(env))
        hosts[2].bind(80, _EchoServer(env))
        injector = net.inject_faults(drop_probability=0.0, seed=3)
        injector.set_link("node0", "node2", LinkFaultPlan(drop_probability=1.0))
        assert _run(env, net.request("node0", "http://node1/x", "m")) == "echo:m"
        with pytest.raises(DeliveryError, match="dropped"):
            _run(env, net.request("node0", "http://node2/x", "m"))
        injector.clear_link("node0", "node2")
        assert _run(env, net.request("node0", "http://node2/x", "m")) == "echo:m"

    def test_clear_faults(self):
        env, net, (a, b) = _fabric()
        b.bind(80, _EchoServer(env))
        net.inject_faults(drop_probability=1.0, seed=1)
        net.clear_faults()
        assert _run(env, net.request("node0", "http://node1/x", "m")) == "echo:m"

    def test_bulk_transfer_exempt_from_drops(self):
        env, net, (a, b) = _fabric()
        net.inject_faults(drop_probability=1.0, seed=1)

        def xfer(env):
            yield from net.bulk_transfer("node0", "node1", "http", 10_000)
            return "ok"

        assert _run(env, xfer(env)) == "ok"

    def test_plan_validation(self):
        from repro.net import LinkFaultPlan

        with pytest.raises(ValueError):
            LinkFaultPlan(drop_probability=1.5)
        with pytest.raises(ValueError):
            LinkFaultPlan(drop_probability=-0.1)
        with pytest.raises(ValueError):
            LinkFaultPlan(extra_latency_s=-1.0)


class TestNetworkStatsReset:
    def test_reset_zeroes_every_field(self):
        """reset() must zero ALL fields, including ones added later.

        The old implementation hand-listed fields; a counter added to the
        dataclass without a matching reset line would silently survive
        and corrupt benchmark deltas.  This touches every field via the
        dataclass machinery so the test itself cannot go stale either.
        """
        import dataclasses

        from repro.net.network import NetworkStats

        stats = NetworkStats()
        for f in dataclasses.fields(stats):
            value = getattr(stats, f.name)
            if isinstance(value, dict):
                key = ("a", "b") if f.name == "drops_by_link" else "k"
                value[key] = 7
            else:
                setattr(stats, f.name, 7)
        assert all(
            getattr(stats, f.name) for f in dataclasses.fields(stats)
        ), "every field should be non-zero before reset"

        stats.reset()
        for f in dataclasses.fields(stats):
            value = getattr(stats, f.name)
            if isinstance(value, dict):
                assert value == {}, f"dict field {f.name} survived reset"
            else:
                assert value == 0, f"field {f.name} survived reset"

    def test_reset_preserves_defaultdict_behaviour(self):
        from repro.net.network import NetworkStats

        stats = NetworkStats()
        stats.record("http", 10, "rpc")
        stats.reset()
        stats.record("http", 5, "rpc")  # defaultdicts must still work
        assert stats.by_scheme["http"] == 1
        assert stats.messages == 1
