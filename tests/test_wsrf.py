"""Tests for the WSRF core: programming model, wrapper pipeline, port types.

The fixture service is the paper's Fig. 2 example (MyServ) translated to
the Python attribute model, deployed on a simulated machine and driven
through real SOAP envelopes over the simulated network.
"""

import pytest

from repro.net import Network
from repro.osim import Machine, MachineParams
from repro.sim import Environment
from repro.soap import SoapFault
from repro.wsrf import (
    GetMultipleResourcePropertiesPortType,
    GetResourcePropertyPortType,
    ImmediateResourceTerminationPortType,
    InvalidResourcePropertyQNameFault,
    InvalidQueryExpressionFault,
    QueryResourcePropertiesPortType,
    Resource,
    ResourceProperty,
    ResourceUnknownFault,
    ScheduledResourceTerminationPortType,
    ServiceSkeleton,
    SetResourcePropertiesPortType,
    UnableToSetTerminationTimeFault,
    WebMethod,
    WSRFPortType,
    WsrfClient,
    deploy,
    generate_wsdl,
)
from repro.wsrf.basefaults import BaseFault, UnableToModifyResourcePropertyFault
from repro.wsrf.lifetime import CURRENT_TIME_RP, TERMINATION_TIME_RP
from repro.wsrf.wsdl import wsdl_operations, wsdl_resource_properties
from repro.xmlx import NS, Element, QName

UVA = NS.UVACG


@WSRFPortType(
    GetResourcePropertyPortType,
    GetMultipleResourcePropertiesPortType,
    QueryResourcePropertiesPortType,
    SetResourcePropertiesPortType,
    ImmediateResourceTerminationPortType,
    ScheduledResourceTerminationPortType,
)
class MyServ(ServiceSkeleton):
    """The Fig. 2 example service, with a settable property added."""

    some_data = Resource(default="")
    counter = Resource(default=0)

    @ResourceProperty
    @property
    def MyData(self):
        return f"At {self.env.now} the string is {self.some_data}"

    def _get_mutable(self):
        return self.some_data

    def _set_mutable(self, value):
        self.some_data = value

    Mutable = ResourceProperty(property(_get_mutable, _set_mutable))

    @WebMethod(requires_resource=False)
    def CreateExample(self, initial: str = "") -> object:
        rid = self.create_resource(some_data=initial)
        return self.epr_for(rid)

    @WebMethod
    def MyMethod(self) -> int:
        self.counter = self.counter + 1
        return self.counter

    @WebMethod
    def Append(self, suffix: str) -> str:
        self.some_data = self.some_data + suffix
        return self.some_data

    @WebMethod
    def Boom(self):
        raise ValueError("author-code exploded")

    @WebMethod
    def SlowEcho(self, text: str) -> str:
        yield self.env.timeout(0.5)
        return text

    destroyed_log = []

    def wsrf_on_destroy(self):
        MyServ.destroyed_log.append(self.resource_id)


@pytest.fixture()
def grid():
    env = Environment()
    net = Network(env)
    machine = Machine(net, "node1", params=MachineParams())
    wrapper = deploy(MyServ, machine, "MyServ")
    client_host = net.add_host("client")
    client = WsrfClient(net, "client")
    MyServ.destroyed_log = []
    return env, net, machine, wrapper, client


def run(env, gen):
    proc = env.process(gen)
    env.run(until=proc)
    return proc.value


def make_resource(env, wrapper, client, initial="hello"):
    return run(
        env,
        client.call(wrapper.service_epr(), UVA, "CreateExample", {"initial": initial}),
    )


class TestProgrammingModel:
    def test_factory_method_returns_epr(self, grid):
        env, net, machine, wrapper, client = grid
        epr = make_resource(env, wrapper, client)
        assert epr.address == wrapper.address
        assert epr.get(QName(UVA, "ResourceID")) is not None

    def test_state_persists_across_invocations(self, grid):
        env, net, machine, wrapper, client = grid
        epr = make_resource(env, wrapper, client)
        assert run(env, client.call(epr, UVA, "MyMethod")) == 1
        assert run(env, client.call(epr, UVA, "MyMethod")) == 2
        assert run(env, client.call(epr, UVA, "MyMethod")) == 3

    def test_resources_isolated(self, grid):
        env, net, machine, wrapper, client = grid
        epr_a = make_resource(env, wrapper, client, "a")
        epr_b = make_resource(env, wrapper, client, "b")
        run(env, client.call(epr_a, UVA, "Append", {"suffix": "-x"}))
        assert run(env, client.call(epr_a, UVA, "Append", {"suffix": ""})) == "a-x"
        assert run(env, client.call(epr_b, UVA, "Append", {"suffix": ""})) == "b"

    def test_method_with_args_and_defaults(self, grid):
        env, net, machine, wrapper, client = grid
        epr = run(env, client.call(wrapper.service_epr(), UVA, "CreateExample"))
        assert run(env, client.call(epr, UVA, "Append", {"suffix": "zz"})) == "zz"

    def test_missing_argument_faults(self, grid):
        env, net, machine, wrapper, client = grid
        epr = make_resource(env, wrapper, client)
        with pytest.raises(SoapFault, match="missing argument"):
            run(env, client.call(epr, UVA, "Append"))

    def test_unknown_operation_faults(self, grid):
        env, net, machine, wrapper, client = grid
        epr = make_resource(env, wrapper, client)
        with pytest.raises(SoapFault, match="no operation"):
            run(env, client.call(epr, UVA, "Nonexistent"))

    def test_author_exception_becomes_fault(self, grid):
        env, net, machine, wrapper, client = grid
        epr = make_resource(env, wrapper, client)
        with pytest.raises(SoapFault, match="author-code exploded"):
            run(env, client.call(epr, UVA, "Boom"))
        assert wrapper.faults_returned == 1

    def test_coroutine_method_consumes_time(self, grid):
        env, net, machine, wrapper, client = grid
        epr = make_resource(env, wrapper, client)
        before = env.now
        assert run(env, client.call(epr, UVA, "SlowEcho", {"text": "hi"})) == "hi"
        assert env.now - before > 0.5

    def test_resource_required_fault_without_rid(self, grid):
        env, net, machine, wrapper, client = grid
        with pytest.raises(ResourceUnknownFault):
            run(env, client.call(wrapper.service_epr(), UVA, "MyMethod"))

    def test_unknown_resource_fault(self, grid):
        env, net, machine, wrapper, client = grid
        bogus = wrapper.epr_for("no-such-id")
        with pytest.raises(ResourceUnknownFault):
            run(env, client.call(bogus, UVA, "MyMethod"))

    def test_direct_construction_has_no_context(self):
        serv = MyServ()
        with pytest.raises(RuntimeError, match="no invocation context"):
            _ = serv.resource_id

    def test_deploy_requires_skeleton_subclass(self, grid):
        env, net, machine, wrapper, client = grid

        class NotAService:
            pass

        with pytest.raises(TypeError):
            deploy(NotAService, machine, "Bad")


class TestResourceProperties:
    def test_get_resource_property(self, grid):
        env, net, machine, wrapper, client = grid
        epr = make_resource(env, wrapper, client, "fig2")
        value = run(env, client.get_resource_property(epr, QName(UVA, "MyData")))
        assert "the string is fig2" in value
        assert "At " in value  # the Fig. 2 getter embeds the time

    def test_get_unknown_rp_faults(self, grid):
        env, net, machine, wrapper, client = grid
        epr = make_resource(env, wrapper, client)
        with pytest.raises(InvalidResourcePropertyQNameFault):
            run(env, client.get_resource_property(epr, QName(UVA, "Nope")))

    def test_get_multiple(self, grid):
        env, net, machine, wrapper, client = grid
        epr = make_resource(env, wrapper, client, "m")
        values = run(
            env,
            client.get_multiple_resource_properties(
                epr, [QName(UVA, "MyData"), QName(UVA, "Mutable")]
            ),
        )
        assert values[QName(UVA, "Mutable")] == "m"
        assert "the string is m" in values[QName(UVA, "MyData")]

    def test_query_resource_properties(self, grid):
        env, net, machine, wrapper, client = grid
        epr = make_resource(env, wrapper, client, "queryme")
        hits = run(env, client.query_resource_properties(epr, "//Mutable/text()"))
        assert hits == ["queryme"]

    def test_query_bad_xpath_faults(self, grid):
        env, net, machine, wrapper, client = grid
        epr = make_resource(env, wrapper, client)
        with pytest.raises(InvalidQueryExpressionFault):
            run(env, client.query_resource_properties(epr, "///"))

    def test_set_resource_properties_update(self, grid):
        env, net, machine, wrapper, client = grid
        epr = make_resource(env, wrapper, client, "old")
        run(
            env,
            client.set_resource_properties(epr, update={QName(UVA, "Mutable"): "new"}),
        )
        assert run(env, client.get_resource_property(epr, QName(UVA, "Mutable"))) == "new"

    def test_set_readonly_rp_faults(self, grid):
        env, net, machine, wrapper, client = grid
        epr = make_resource(env, wrapper, client)
        with pytest.raises(UnableToModifyResourcePropertyFault):
            run(
                env,
                client.set_resource_properties(epr, update={QName(UVA, "MyData"): "x"}),
            )

    def test_set_delete_assigns_none(self, grid):
        env, net, machine, wrapper, client = grid
        epr = make_resource(env, wrapper, client, "will-vanish")
        run(env, client.set_resource_properties(epr, delete=[QName(UVA, "Mutable")]))
        assert run(env, client.get_resource_property(epr, QName(UVA, "Mutable"))) is None


class TestLifetime:
    def test_destroy_then_unknown(self, grid):
        env, net, machine, wrapper, client = grid
        epr = make_resource(env, wrapper, client)
        run(env, client.destroy(epr))
        assert MyServ.destroyed_log  # author hook ran
        with pytest.raises(ResourceUnknownFault):
            run(env, client.call(epr, UVA, "MyMethod"))

    def test_scheduled_termination(self, grid):
        env, net, machine, wrapper, client = grid
        wrapper.start_sweeper(period=0.5)
        epr = make_resource(env, wrapper, client)
        new_time = run(env, client.set_termination_time(epr, env.now + 3.0))
        assert new_time == pytest.approx(env.now + 3.0, abs=0.2)
        # Still alive now...
        assert run(env, client.call(epr, UVA, "MyMethod")) == 1
        env.run(until=env.now + 5.0)
        with pytest.raises(ResourceUnknownFault):
            run(env, client.call(epr, UVA, "MyMethod"))
        assert MyServ.destroyed_log

    def test_termination_time_rp(self, grid):
        env, net, machine, wrapper, client = grid
        epr = make_resource(env, wrapper, client)
        assert run(env, client.get_resource_property(epr, TERMINATION_TIME_RP)) is None
        run(env, client.set_termination_time(epr, 99.0))
        assert run(env, client.get_resource_property(epr, TERMINATION_TIME_RP)) == 99.0
        current = run(env, client.get_resource_property(epr, CURRENT_TIME_RP))
        assert current == pytest.approx(env.now, abs=0.5)

    def test_unset_termination_time(self, grid):
        env, net, machine, wrapper, client = grid
        epr = make_resource(env, wrapper, client)
        run(env, client.set_termination_time(epr, 99.0))
        assert run(env, client.set_termination_time(epr, None)) is None
        assert run(env, client.get_resource_property(epr, TERMINATION_TIME_RP)) is None

    def test_past_termination_time_faults(self, grid):
        env, net, machine, wrapper, client = grid
        epr = make_resource(env, wrapper, client)
        env.run(until=10.0)
        with pytest.raises(UnableToSetTerminationTimeFault):
            run(env, client.set_termination_time(epr, 1.0))

    def test_destroy_unknown_resource_faults(self, grid):
        env, net, machine, wrapper, client = grid
        with pytest.raises(ResourceUnknownFault):
            run(env, client.destroy(wrapper.epr_for("ghost")))


class TestFaultTransport:
    def test_typed_fault_reconstructed_with_metadata(self, grid):
        env, net, machine, wrapper, client = grid
        bogus = wrapper.epr_for("missing")
        try:
            run(env, client.call(bogus, UVA, "MyMethod"))
            raise AssertionError("expected a fault")
        except ResourceUnknownFault as fault:
            assert "missing" in fault.description
            assert fault.timestamp >= 0.0

    def test_fault_chain_roundtrip(self):
        inner = BaseFault(description="root cause", timestamp=1.0)
        outer = ResourceUnknownFault(
            description="wrapper", timestamp=2.0, error_code="E42", cause=inner
        )
        again = BaseFault.from_detail_element(outer.to_detail_element())
        assert isinstance(again, ResourceUnknownFault)
        chain = again.chain()
        assert len(chain) == 2
        assert chain[1].description == "root cause"
        assert again.error_code == "E42"


class TestStateStoreIntegration:
    def test_no_save_when_unchanged(self, grid):
        env, net, machine, wrapper, client = grid
        epr = make_resource(env, wrapper, client, "same")
        saves_before = wrapper.store.saves
        run(env, client.get_resource_property(epr, QName(UVA, "Mutable")))
        assert wrapper.store.saves == saves_before  # read-only op: no save

    def test_save_when_changed(self, grid):
        env, net, machine, wrapper, client = grid
        epr = make_resource(env, wrapper, client)
        saves_before = wrapper.store.saves
        run(env, client.call(epr, UVA, "MyMethod"))
        assert wrapper.store.saves == saves_before + 1

    def test_db_time_charged_on_load(self, grid):
        env, net, machine, wrapper, client = grid
        epr = make_resource(env, wrapper, client)
        t0 = env.now
        run(env, client.get_resource_property(epr, QName(UVA, "Mutable")))
        assert env.now - t0 >= machine.params.db_access_s


class TestWsdl:
    def test_wsdl_lists_operations_and_rps(self, grid):
        env, net, machine, wrapper, client = grid
        doc = generate_wsdl(wrapper)
        ops = wsdl_operations(doc)
        assert "MyMethod" in ops["MyServPortType"]
        assert "CreateExample" in ops["MyServPortType"]
        assert "GetResourceProperty" in ops["GetResourcePropertyPortType"]
        assert "Destroy" in ops["ImmediateResourceTerminationPortType"]
        rps = wsdl_resource_properties(doc)
        assert QName(UVA, "MyData") in rps
        assert TERMINATION_TIME_RP in rps

    def test_wsdl_address_matches_deployment(self, grid):
        env, net, machine, wrapper, client = grid
        doc = generate_wsdl(wrapper)
        locations = [
            el.get("location")
            for el in doc.iter(QName(NS.WSDL, "address"))
        ]
        assert locations == [wrapper.address]


class TestSpecConformanceDetails:
    def test_get_multiple_with_no_properties_faults(self, grid):
        env, net, machine, wrapper, client = grid
        epr = make_resource(env, wrapper, client)
        from repro.wsrf.porttypes import GET_MULTIPLE_RP

        with pytest.raises(InvalidResourcePropertyQNameFault, match="named no"):
            run(env, client.invoke(epr, Element(GET_MULTIPLE_RP)))

    def test_set_insert_behaves_like_update_on_fixed_schema(self, grid):
        env, net, machine, wrapper, client = grid
        epr = make_resource(env, wrapper, client, "old")
        from repro.soap import to_typed_element
        from repro.wsrf.porttypes import SET_RP

        body = Element(SET_RP)
        insert = body.subelement(QName(NS.WSRF_RP, "Insert"))
        insert.append(to_typed_element(QName(UVA, "Mutable"), "inserted"))
        run(env, client.invoke(epr, body))
        value = run(env, client.get_resource_property(epr, QName(UVA, "Mutable")))
        assert value == "inserted"

    def test_set_with_unknown_change_element_faults(self, grid):
        env, net, machine, wrapper, client = grid
        epr = make_resource(env, wrapper, client)
        from repro.wsrf.porttypes import SET_RP
        from repro.wsrf.basefaults import UnableToModifyResourcePropertyFault

        body = Element(SET_RP)
        body.subelement(QName(NS.WSRF_RP, "Replace"))  # not a spec verb here
        with pytest.raises(UnableToModifyResourcePropertyFault):
            run(env, client.invoke(epr, body))

    def test_malformed_qname_in_get_rp_faults(self, grid):
        env, net, machine, wrapper, client = grid
        epr = make_resource(env, wrapper, client)
        from repro.wsrf.porttypes import GET_RP

        with pytest.raises(InvalidResourcePropertyQNameFault):
            run(env, client.invoke(epr, Element(GET_RP, text="   ")))

    def test_response_relates_to_request(self, grid):
        """WS-Addressing: the response's RelatesTo must echo the request
        MessageID (checked at the raw envelope level)."""
        env, net, machine, wrapper, client = grid
        epr = make_resource(env, wrapper, client)
        from repro.soap import SoapEnvelope
        from repro.wsa import AddressingHeaders

        headers = AddressingHeaders(to_epr=epr, action=f"{UVA}/MyMethod")
        request = SoapEnvelope(headers, Element(QName(UVA, "MyMethod")))

        def call(env):
            raw = yield from net.request("client", epr.address, request.serialize())
            return SoapEnvelope.deserialize(raw)

        response = run(env, call(env))
        assert response.addressing.relates_to == headers.message_id
        assert response.addressing.action == f"{UVA}/MyMethodResponse"
