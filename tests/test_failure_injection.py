"""Failure-injection tests: the testbed under partial failure.

The paper's testbed ran on a real campus network where machines reboot
and links drop.  These tests inject failures into the simulated fabric
and assert the system degrades the way a message-based architecture
should: faults surface as DeliveryErrors/SoapFaults at the caller,
unaffected machines keep working, and one-way messages are lost silently
(the documented WS-Notification delivery semantics).
"""

import pytest

from repro.gridapp import FileRef, JobSpec, Testbed
from repro.gridapp.execution_service import parse_job_event
from repro.net import DeliveryError
from repro.osim.programs import make_compute_program
from repro.soap import SoapFault
from repro.xmlx import NS, QName

UVA = NS.UVACG


@pytest.fixture()
def testbed():
    tb = Testbed(n_machines=3, seed=31)
    tb.programs.register(make_compute_program("quick", 1.0, outputs={"o": b"1"}))
    tb.programs.register(make_compute_program("slow", 60.0, outputs={"o": b"1"}))
    return tb


def _one_job(client, tb, program="quick"):
    spec = client.new_job_set()
    exe = client.add_program_binary(tb.programs.get(program))
    spec.add(JobSpec(name="j1", executable=FileRef(exe, "job.exe")))
    return spec


class TestHostFailures:
    def test_scheduler_host_down_faults_submission(self, testbed):
        client = testbed.make_client()
        testbed.central.host.down = True
        with pytest.raises(DeliveryError, match="down"):
            testbed.run(client.submit(_one_job(client, testbed)))

    def test_down_machine_not_used_after_nis_catalog_reflects_it(self, testbed):
        """Take a grid node down: job sets still complete on the others."""
        victim = testbed.machines[2]
        victim.host.down = True
        # Remove it from the catalog the way an admin would (its
        # utilization service can no longer be heard from anyway).
        group_rid = testbed.node_info.nis_group_rid
        state = testbed.node_info.store.load("NodeInfo", group_rid)
        key = QName(NS.WSRF_SG, "entry_ids")
        entries = state[key]
        kept = []
        for rid in entries:
            est = testbed.node_info.store.load("NodeInfo", rid)
            content = est.get(QName(NS.WSRF_SG, "content"))
            from repro.gridapp.node_info import parse_processor_content

            if parse_processor_content(content)["name"] != victim.name:
                kept.append(rid)
        state[key] = kept
        testbed.node_info.store.save("NodeInfo", group_rid, state)

        client = testbed.make_client()
        outcome, jobset_epr, _ = testbed.run_job_set(client, _one_job(client, testbed))
        assert outcome == "completed"
        rid = jobset_epr.get(QName(UVA, "ResourceID"))
        placement = testbed.scheduler.store.load("Scheduler", rid)[
            QName(UVA, "job_machine")
        ]
        assert placement["j1"] != victim.name

    def test_partition_between_scheduler_and_es(self, testbed):
        """Partition the chosen node from central mid-submission: the
        dispatch faults and the Scheduler marks the job set failed."""
        client = testbed.make_client()
        # Partition every grid node from central so any dispatch fails.
        for machine in testbed.machines:
            testbed.network.partition("uvacg-central", machine.name)

        def scenario():
            jobset_epr, topic = yield from client.submit(_one_job(client, testbed))
            outcome = yield from client.wait_for_completion(topic)
            return outcome, jobset_epr

        outcome, jobset_epr = testbed.run(scenario())
        assert outcome == "failed"
        status = testbed.run(
            client.soap.get_resource_property(jobset_epr, QName(UVA, "Status"))
        )
        assert status == "Failed"

    def test_healing_partition_restores_service(self, testbed):
        client = testbed.make_client()
        for machine in testbed.machines:
            testbed.network.partition("uvacg-central", machine.name)
        outcome, _, _ = testbed.run_job_set(client, _one_job(client, testbed))
        assert outcome == "failed"
        for machine in testbed.machines:
            testbed.network.heal("uvacg-central", machine.name)
        outcome, _, _ = testbed.run_job_set(client, _one_job(client, testbed))
        assert outcome == "completed"


class TestLostNotifications:
    def test_client_listener_down_does_not_break_the_jobset(self, testbed):
        """Broker -> client notifications are one-way; if the client's
        listener is unreachable the job set still completes (the
        Scheduler's own subscription drives progress)."""
        client = testbed.make_client()
        spec = _one_job(client, testbed)

        def scenario():
            jobset_epr, topic = yield from client.submit(spec)
            # The client goes away (its listener port unbinds).
            client.listener.close()
            yield testbed.env.timeout(30.0)
            status = yield from client.soap.get_resource_property(
                jobset_epr, QName(UVA, "Status")
            )
            return status

        # Undelivered one-way notifications surface as failed detached
        # processes when the schedule drains; the scheduler must still
        # have driven the job set to completion.
        try:
            status = testbed.run(scenario())
        except DeliveryError:
            pytest.fail("lost client listener must not fault the testbed flow")
        assert status == "Completed"


class TestJobLevelFailures:
    def test_missing_input_file_fails_job(self, testbed):
        """The executable references a client file that does not exist:
        staging faults, the job never starts, the job set fails."""
        client = testbed.make_client()
        spec = client.new_job_set()
        exe = client.add_program_binary(testbed.programs.get("quick"))
        spec.add(
            JobSpec(
                name="j1",
                executable=FileRef(exe, "job.exe"),
                inputs=[FileRef("local://c:/data/ghost.dat", "in.dat")],
            )
        )

        def scenario():
            jobset_epr, topic = yield from client.submit(spec)
            yield testbed.env.timeout(30.0)
            progress = yield from client.soap.get_resource_property(
                jobset_epr, QName(UVA, "Progress")
            )
            return progress

        progress = testbed.run(scenario())
        # The upload faulted server-side; the job cannot have completed.
        assert progress["done"] == 0

    def test_unregistered_program_fails_jobset(self, testbed):
        client = testbed.make_client()
        spec = client.new_job_set()
        exe_url = client.add_local_file("c:/data/mystery.exe",
                                        b"#!uva-program:never-registered\n")
        spec.add(JobSpec(name="j1", executable=FileRef(exe_url, "job.exe")))
        outcome, _, _ = testbed.run_job_set(client, spec)
        assert outcome == "failed"

    def test_failed_job_reports_spawn_detail(self, testbed):
        client = testbed.make_client(username="wrong", password="creds")
        spec = _one_job(client, testbed)

        def scenario():
            jobset_epr, topic = yield from client.submit(spec)
            outcome = yield from client.wait_for_completion(topic)
            return outcome

        assert testbed.run(scenario()) == "failed"
        testbed.settle()
        exited = [
            parse_job_event(n.payload)
            for n in client.listener.received
            if parse_job_event(n.payload).get("kind") == "JobExited"
        ]
        assert exited and exited[0]["exit_code"] == -2
        assert "authentication" in exited[0].get("detail", "").lower()

    def test_killing_machine_midjob_leaves_job_running_state(self, testbed):
        """A node dies while its job runs: the job set never completes,
        and the job's last known status remains Running (the §5 coupling
        problem: the client's view can go stale)."""
        client = testbed.make_client()
        spec = _one_job(client, testbed, program="slow")

        def scenario():
            jobset_epr, topic = yield from client.submit(spec)
            yield testbed.env.timeout(10.0)
            # Find where it runs, and kill that machine's power.
            rid = jobset_epr.get(QName(UVA, "ResourceID"))
            state = testbed.scheduler.store.load("Scheduler", rid)
            where = state[QName(UVA, "job_machine")]["j1"]
            machine = next(m for m in testbed.machines if m.name == where)
            machine.host.down = True
            for process in machine.procspawn.processes:
                process.kill()  # power loss: processes die with the host
            yield testbed.env.timeout(30.0)
            status = yield from client.soap.get_resource_property(
                jobset_epr, QName(UVA, "Status")
            )
            return status

        # The job's exit notification cannot escape the dead host, so
        # the scheduler still believes the set is running.
        status = testbed.run(scenario())
        assert status == "Running"


class TestRetryPolicyMath:
    """Unit tests for the RetryPolicy backoff schedule (repro.net.retry)."""

    def test_exponential_backoff_without_jitter(self):
        from repro.net import RetryPolicy

        policy = RetryPolicy(
            max_attempts=5, base_delay_s=0.1, backoff_factor=2.0,
            max_delay_s=10.0, jitter=0.0,
        )
        delays = [policy.delay_for(n) for n in (1, 2, 3, 4)]
        assert delays == pytest.approx([0.1, 0.2, 0.4, 0.8])

    def test_delay_capped_at_max(self):
        from repro.net import RetryPolicy

        policy = RetryPolicy(
            max_attempts=10, base_delay_s=1.0, backoff_factor=3.0,
            max_delay_s=5.0, jitter=0.0,
        )
        assert policy.delay_for(8) == pytest.approx(5.0)

    def test_jitter_stays_within_band_and_is_deterministic(self):
        import numpy as np

        from repro.net import RetryPolicy

        policy = RetryPolicy(
            max_attempts=4, base_delay_s=1.0, backoff_factor=1.0,
            max_delay_s=10.0, jitter=0.25,
        )
        delays = [
            policy.delay_for(1, np.random.default_rng(9)) for _ in range(50)
        ]
        assert all(0.75 <= d <= 1.25 for d in delays)
        replay = [
            policy.delay_for(1, np.random.default_rng(9)) for _ in range(50)
        ]
        assert delays == replay

    def test_validation(self):
        from repro.net import RetryPolicy

        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay_s=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=2.0)

    def test_disabled_variant_is_single_attempt(self):
        from repro.net import RetryPolicy

        assert RetryPolicy(max_attempts=7).disabled().max_attempts == 1


class TestWithRetry:
    """The retry driver coroutine against a simulated clock."""

    def _env(self):
        from repro.sim import Environment

        return Environment()

    def test_returns_after_transient_failures(self):
        from repro.net import DeliveryError, RetryPolicy
        from repro.net.retry import with_retry

        env = self._env()
        calls = []

        def attempt():
            calls.append(env.now)
            if len(calls) < 3:
                raise DeliveryError("flaky")
            return "payload"
            yield  # pragma: no cover - makes this a generator

        policy = RetryPolicy(
            max_attempts=5, base_delay_s=1.0, backoff_factor=2.0, jitter=0.0
        )
        proc = env.process(with_retry(env, policy, attempt))
        env.run(until=proc)
        assert proc.value == "payload"
        assert len(calls) == 3
        # Backoff: attempts at t=0, t=1, t=1+2.
        assert calls == pytest.approx([0.0, 1.0, 3.0])

    def test_exhausted_attempts_raise_last_error(self):
        from repro.net import DeliveryError, RetryPolicy
        from repro.net.retry import with_retry

        env = self._env()
        calls = []

        def attempt():
            calls.append(env.now)
            raise DeliveryError("always down")
            yield  # pragma: no cover

        policy = RetryPolicy(max_attempts=3, base_delay_s=0.5, jitter=0.0)
        proc = env.process(with_retry(env, policy, attempt))
        with pytest.raises(DeliveryError, match="always down"):
            env.run(until=proc)
        assert len(calls) == 3

    def test_per_call_timeout_abandons_slow_attempt(self):
        from repro.net import CallTimeout, RetryPolicy
        from repro.net.retry import with_retry

        env = self._env()
        calls = []

        def attempt():
            calls.append(env.now)
            if len(calls) == 1:
                yield env.timeout(100.0)  # server never answers in time
                return "too late"
            yield env.timeout(0.1)
            return "fast"

        policy = RetryPolicy(
            max_attempts=3, base_delay_s=1.0, jitter=0.0, timeout_s=5.0
        )
        proc = env.process(with_retry(env, policy, attempt))
        env.run(until=proc)
        assert proc.value == "fast"
        # Second attempt starts at timeout (5s) + backoff (1s).
        assert calls == pytest.approx([0.0, 6.0])
        env.run()  # the abandoned attempt must not blow up the schedule

    def test_timeout_exhaustion_raises_call_timeout(self):
        from repro.net import CallTimeout, RetryPolicy
        from repro.net.retry import with_retry

        env = self._env()

        def attempt():
            yield env.timeout(100.0)
            return "never"

        policy = RetryPolicy(
            max_attempts=2, base_delay_s=1.0, jitter=0.0, timeout_s=2.0
        )
        proc = env.process(with_retry(env, policy, attempt))
        with pytest.raises(CallTimeout):
            env.run(until=proc)

    def test_non_retryable_exception_propagates_immediately(self):
        from repro.net import RetryPolicy
        from repro.net.retry import with_retry

        env = self._env()
        calls = []

        def attempt():
            calls.append(env.now)
            raise SoapFault("soap:Server", "application fault")
            yield  # pragma: no cover

        policy = RetryPolicy(max_attempts=5, base_delay_s=1.0, jitter=0.0)
        proc = env.process(with_retry(env, policy, attempt))
        with pytest.raises(SoapFault):
            env.run(until=proc)
        assert len(calls) == 1


class TestWatchdogRedispatch:
    """FT layer: the Scheduler survives an ES dying mid-run."""

    def _ft_testbed(self):
        from repro.gridapp import FaultToleranceConfig
        from repro.net import RetryPolicy

        policy = RetryPolicy(
            max_attempts=4, base_delay_s=0.2, max_delay_s=2.0, timeout_s=30.0
        )
        tb = Testbed(
            n_machines=3,
            seed=31,
            retry_policy=policy,
            fault_tolerance=FaultToleranceConfig(
                watchdog_period=5.0, stuck_after=60.0
            ),
        )
        tb.programs.register(
            make_compute_program("slow", 60.0, outputs={"o": b"1"})
        )
        return tb

    def test_job_redispatched_when_machine_dies_midrun(self):
        tb = self._ft_testbed()
        client = tb.make_client()
        spec = _one_job(client, tb, program="slow")

        def scenario():
            jobset_epr, topic = yield from client.submit(spec)
            yield tb.env.timeout(10.0)
            rid = jobset_epr.get(QName(UVA, "ResourceID"))
            state = tb.scheduler.store.load("Scheduler", rid)
            where = state[QName(UVA, "job_machine")]["j1"]
            machine = next(m for m in tb.machines if m.name == where)
            machine.host.down = True
            for process in machine.procspawn.processes:
                process.kill()  # power loss
            outcome = yield from client.poll_until_complete(
                jobset_epr, period=5.0, give_up_after=500.0
            )
            return outcome, jobset_epr, topic, where

        outcome, jobset_epr, topic, victim = tb.run(scenario())
        assert outcome == "completed"
        rid = jobset_epr.get(QName(UVA, "ResourceID"))
        state = tb.scheduler.store.load("Scheduler", rid)
        assert state[QName(UVA, "job_machine")]["j1"] != victim
        assert state[QName(UVA, "job_attempts")]["j1"] == 2
        # The recovery is visible in the trace (step 11)...
        recoveries = tb.trace.events_for_step(11)
        assert recoveries and "j1" in recoveries[0].detail
        # ... and announced on the job set's topic as a typed event.
        tb.settle()
        from repro.gridapp import build_report

        report = build_report(client.listener.received, topic)
        assert report.total_recoveries >= 1
        assert report.jobs["j1"].recoveries[0].from_machine == victim

    def test_recovery_budget_exhaustion_fails_the_set(self):
        """Every machine dies: re-dispatch runs out of candidates and the
        set fails instead of hanging forever."""
        tb = self._ft_testbed()
        client = tb.make_client()
        spec = _one_job(client, tb, program="slow")

        def scenario():
            jobset_epr, topic = yield from client.submit(spec)
            yield tb.env.timeout(10.0)
            for machine in tb.machines:
                machine.host.down = True
                for process in machine.procspawn.processes:
                    process.kill()
            outcome = yield from client.poll_until_complete(
                jobset_epr, period=5.0, give_up_after=1000.0
            )
            return outcome

        assert tb.run(scenario()) == "failed"

    def test_ft_disabled_preserves_fail_fast(self):
        """Without a FaultToleranceConfig the §5 stale-view behaviour of
        the seed testbed is untouched (cf. TestJobLevelFailures)."""
        tb = Testbed(n_machines=3, seed=31)
        tb.programs.register(
            make_compute_program("slow2", 60.0, outputs={"o": b"1"})
        )
        client = tb.make_client()
        spec = _one_job(client, tb, program="slow2")

        def scenario():
            jobset_epr, topic = yield from client.submit(spec)
            yield tb.env.timeout(10.0)
            rid = jobset_epr.get(QName(UVA, "ResourceID"))
            state = tb.scheduler.store.load("Scheduler", rid)
            where = state[QName(UVA, "job_machine")]["j1"]
            machine = next(m for m in tb.machines if m.name == where)
            machine.host.down = True
            for process in machine.procspawn.processes:
                process.kill()
            yield tb.env.timeout(60.0)
            status = yield from client.soap.get_resource_property(
                jobset_epr, QName(UVA, "Status")
            )
            return status

        assert tb.run(scenario()) == "Running"
