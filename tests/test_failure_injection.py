"""Failure-injection tests: the testbed under partial failure.

The paper's testbed ran on a real campus network where machines reboot
and links drop.  These tests inject failures into the simulated fabric
and assert the system degrades the way a message-based architecture
should: faults surface as DeliveryErrors/SoapFaults at the caller,
unaffected machines keep working, and one-way messages are lost silently
(the documented WS-Notification delivery semantics).
"""

import pytest

from repro.gridapp import FileRef, JobSpec, Testbed
from repro.gridapp.execution_service import parse_job_event
from repro.net import DeliveryError
from repro.osim.programs import make_compute_program
from repro.soap import SoapFault
from repro.wsrf.basefaults import BaseFault
from repro.xmlx import NS, QName

UVA = NS.UVACG


@pytest.fixture()
def testbed():
    tb = Testbed(n_machines=3, seed=31)
    tb.programs.register(make_compute_program("quick", 1.0, outputs={"o": b"1"}))
    tb.programs.register(make_compute_program("slow", 60.0, outputs={"o": b"1"}))
    return tb


def _one_job(client, tb, program="quick"):
    spec = client.new_job_set()
    exe = client.add_program_binary(tb.programs.get(program))
    spec.add(JobSpec(name="j1", executable=FileRef(exe, "job.exe")))
    return spec


class TestHostFailures:
    def test_scheduler_host_down_faults_submission(self, testbed):
        client = testbed.make_client()
        testbed.central.host.down = True
        with pytest.raises(DeliveryError, match="down"):
            testbed.run(client.submit(_one_job(client, testbed)))

    def test_down_machine_not_used_after_nis_catalog_reflects_it(self, testbed):
        """Take a grid node down: job sets still complete on the others."""
        victim = testbed.machines[2]
        victim.host.down = True
        # Remove it from the catalog the way an admin would (its
        # utilization service can no longer be heard from anyway).
        group_rid = testbed.node_info.nis_group_rid
        state = testbed.node_info.store.load("NodeInfo", group_rid)
        key = QName(NS.WSRF_SG, "entry_ids")
        entries = state[key]
        kept = []
        for rid in entries:
            est = testbed.node_info.store.load("NodeInfo", rid)
            content = est.get(QName(NS.WSRF_SG, "content"))
            from repro.gridapp.node_info import parse_processor_content

            if parse_processor_content(content)["name"] != victim.name:
                kept.append(rid)
        state[key] = kept
        testbed.node_info.store.save("NodeInfo", group_rid, state)

        client = testbed.make_client()
        outcome, jobset_epr, _ = testbed.run_job_set(client, _one_job(client, testbed))
        assert outcome == "completed"
        rid = jobset_epr.get(QName(UVA, "ResourceID"))
        placement = testbed.scheduler.store.load("Scheduler", rid)[
            QName(UVA, "job_machine")
        ]
        assert placement["j1"] != victim.name

    def test_partition_between_scheduler_and_es(self, testbed):
        """Partition the chosen node from central mid-submission: the
        dispatch faults and the Scheduler marks the job set failed."""
        client = testbed.make_client()
        # Partition every grid node from central so any dispatch fails.
        for machine in testbed.machines:
            testbed.network.partition("uvacg-central", machine.name)

        def scenario():
            jobset_epr, topic = yield from client.submit(_one_job(client, testbed))
            outcome = yield from client.wait_for_completion(topic)
            return outcome, jobset_epr

        outcome, jobset_epr = testbed.run(scenario())
        assert outcome == "failed"
        status = testbed.run(
            client.soap.get_resource_property(jobset_epr, QName(UVA, "Status"))
        )
        assert status == "Failed"

    def test_healing_partition_restores_service(self, testbed):
        client = testbed.make_client()
        for machine in testbed.machines:
            testbed.network.partition("uvacg-central", machine.name)
        outcome, _, _ = testbed.run_job_set(client, _one_job(client, testbed))
        assert outcome == "failed"
        for machine in testbed.machines:
            testbed.network.heal("uvacg-central", machine.name)
        outcome, _, _ = testbed.run_job_set(client, _one_job(client, testbed))
        assert outcome == "completed"


class TestLostNotifications:
    def test_client_listener_down_does_not_break_the_jobset(self, testbed):
        """Broker -> client notifications are one-way; if the client's
        listener is unreachable the job set still completes (the
        Scheduler's own subscription drives progress)."""
        client = testbed.make_client()
        spec = _one_job(client, testbed)

        def scenario():
            jobset_epr, topic = yield from client.submit(spec)
            # The client goes away (its listener port unbinds).
            client.listener.close()
            yield testbed.env.timeout(30.0)
            status = yield from client.soap.get_resource_property(
                jobset_epr, QName(UVA, "Status")
            )
            return status

        # Undelivered one-way notifications surface as failed detached
        # processes when the schedule drains; the scheduler must still
        # have driven the job set to completion.
        try:
            status = testbed.run(scenario())
        except DeliveryError:
            pytest.fail("lost client listener must not fault the testbed flow")
        assert status == "Completed"


class TestJobLevelFailures:
    def test_missing_input_file_fails_job(self, testbed):
        """The executable references a client file that does not exist:
        staging faults, the job never starts, the job set fails."""
        client = testbed.make_client()
        spec = client.new_job_set()
        exe = client.add_program_binary(testbed.programs.get("quick"))
        spec.add(
            JobSpec(
                name="j1",
                executable=FileRef(exe, "job.exe"),
                inputs=[FileRef("local://c:/data/ghost.dat", "in.dat")],
            )
        )

        def scenario():
            jobset_epr, topic = yield from client.submit(spec)
            yield testbed.env.timeout(30.0)
            progress = yield from client.soap.get_resource_property(
                jobset_epr, QName(UVA, "Progress")
            )
            return progress

        progress = testbed.run(scenario())
        # The upload faulted server-side; the job cannot have completed.
        assert progress["done"] == 0

    def test_unregistered_program_fails_jobset(self, testbed):
        client = testbed.make_client()
        spec = client.new_job_set()
        exe_url = client.add_local_file("c:/data/mystery.exe",
                                        b"#!uva-program:never-registered\n")
        spec.add(JobSpec(name="j1", executable=FileRef(exe_url, "job.exe")))
        outcome, _, _ = testbed.run_job_set(client, spec)
        assert outcome == "failed"

    def test_failed_job_reports_spawn_detail(self, testbed):
        client = testbed.make_client(username="wrong", password="creds")
        spec = _one_job(client, testbed)

        def scenario():
            jobset_epr, topic = yield from client.submit(spec)
            outcome = yield from client.wait_for_completion(topic)
            return outcome

        assert testbed.run(scenario()) == "failed"
        testbed.settle()
        exited = [
            parse_job_event(n.payload)
            for n in client.listener.received
            if parse_job_event(n.payload).get("kind") == "JobExited"
        ]
        assert exited and exited[0]["exit_code"] == -2
        assert "authentication" in exited[0].get("detail", "").lower()

    def test_killing_machine_midjob_leaves_job_running_state(self, testbed):
        """A node dies while its job runs: the job set never completes,
        and the job's last known status remains Running (the §5 coupling
        problem: the client's view can go stale)."""
        client = testbed.make_client()
        spec = _one_job(client, testbed, program="slow")

        def scenario():
            jobset_epr, topic = yield from client.submit(spec)
            yield testbed.env.timeout(10.0)
            # Find where it runs, and kill that machine's power.
            rid = jobset_epr.get(QName(UVA, "ResourceID"))
            state = testbed.scheduler.store.load("Scheduler", rid)
            where = state[QName(UVA, "job_machine")]["j1"]
            machine = next(m for m in testbed.machines if m.name == where)
            machine.host.down = True
            for process in machine.procspawn.processes:
                process.kill()  # power loss: processes die with the host
            yield testbed.env.timeout(30.0)
            status = yield from client.soap.get_resource_property(
                jobset_epr, QName(UVA, "Status")
            )
            return status

        # The job's exit notification cannot escape the dead host, so
        # the scheduler still believes the set is running.
        status = testbed.run(scenario())
        assert status == "Running"
