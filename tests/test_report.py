"""Tests for the client-side job-set report (text Gantt + summary)."""

import pytest

from repro.gridapp import FileRef, JobSpec, Testbed
from repro.gridapp.report import build_report, render_gantt, render_summary
from repro.osim.programs import make_compute_program


@pytest.fixture()
def finished_run():
    tb = Testbed(n_machines=3, seed=41)
    tb.programs.register(make_compute_program("first", 4.0, outputs={"out": b"1"}))
    tb.programs.register(
        make_compute_program("second", 2.0, outputs={"fin": b"2"},
                             required_inputs=["prev"])
    )
    client = tb.make_client()
    spec = client.new_job_set()
    exe1 = client.add_program_binary(tb.programs.get("first"))
    exe2 = client.add_program_binary(tb.programs.get("second"))
    spec.add(JobSpec(name="alpha", executable=FileRef(exe1, "job.exe"), outputs=["out"]))
    spec.add(JobSpec(name="beta", executable=FileRef(exe2, "job.exe"),
                     inputs=[FileRef("alpha://out", "prev")], outputs=["fin"]))
    outcome, _, topic = tb.run_job_set(client, spec)
    tb.settle()
    assert outcome == "completed"
    return tb, client, topic


class TestBuildReport:
    def test_timeline_fields(self, finished_run):
        tb, client, topic = finished_run
        report = build_report(client.listener.received, topic)
        assert report.outcome == "completed"
        assert set(report.jobs) == {"alpha", "beta"}
        alpha, beta = report.jobs["alpha"], report.jobs["beta"]
        for job in (alpha, beta):
            assert job.created_at <= job.started_at <= job.exited_at
            assert job.exit_code == 0
            assert job.outcome == "ok"
            assert job.staging_s >= 0 and job.running_s > 0
        # beta depends on alpha: it is created only after alpha exits.
        assert beta.created_at >= alpha.exited_at
        assert report.makespan_s is not None and report.makespan_s > 0

    def test_machine_hint_extracted(self, finished_run):
        tb, client, topic = finished_run
        report = build_report(client.listener.received, topic)
        assert all(j.machine_hint.startswith("node") for j in report.jobs.values())

    def test_other_topics_ignored(self, finished_run):
        tb, client, topic = finished_run
        report = build_report(client.listener.received, "jobset-9999")
        assert report.jobs == {} and report.outcome == "running"


class TestRendering:
    def test_gantt_shape(self, finished_run):
        tb, client, topic = finished_run
        report = build_report(client.listener.received, topic)
        text = render_gantt(report, width=40)
        lines = text.splitlines()
        assert topic in lines[0] and "completed" in lines[0]
        alpha_line = next(l for l in lines if "alpha" in l)
        beta_line = next(l for l in lines if "beta" in l)
        assert "#" in alpha_line and "#" in beta_line
        # Sequencing shows up in the bars: beta's run starts after
        # alpha's run ends (first '#' of beta right of last '#' of alpha).
        a_bar = alpha_line.split("|")[1]
        b_bar = beta_line.split("|")[1]
        assert a_bar.rstrip().rfind("#") <= b_bar.find("#")

    def test_gantt_empty(self):
        from repro.gridapp.report import JobSetReport

        assert "no job events" in render_gantt(JobSetReport(topic="t"))

    def test_summary_lists_all_jobs(self, finished_run):
        tb, client, topic = finished_run
        report = build_report(client.listener.received, topic)
        text = render_summary(report)
        assert "alpha" in text and "beta" in text and "makespan" in text

    def test_failed_job_marked(self):
        tb = Testbed(n_machines=2, seed=43)
        tb.programs.register(make_compute_program("bad", 0.5, exit_code=7))
        client = tb.make_client()
        spec = client.new_job_set()
        exe = client.add_program_binary(tb.programs.get("bad"))
        spec.add(JobSpec(name="doomed", executable=FileRef(exe, "job.exe")))
        outcome, _, topic = tb.run_job_set(client, spec)
        tb.settle()
        assert outcome == "failed"
        report = build_report(client.listener.received, topic)
        assert report.outcome == "failed"
        assert report.jobs["doomed"].outcome == "exit=7"
        assert "X" in render_gantt(report) or "exit=7" in render_gantt(report)
