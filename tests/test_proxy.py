"""Tests for WSDL-driven proxy generation."""

import pytest

from repro.net import Network
from repro.osim import Machine
from repro.sim import Environment
from repro.wsrf import (
    GetMultipleResourcePropertiesPortType,
    GetResourcePropertyPortType,
    ImmediateResourceTerminationPortType,
    QueryResourcePropertiesPortType,
    Resource,
    ResourceProperty,
    ResourceUnknownFault,
    ScheduledResourceTerminationPortType,
    ServiceSkeleton,
    WebMethod,
    WSRFPortType,
    WsrfClient,
    deploy,
    generate_wsdl,
)
from repro.wsrf.proxy import ServiceProxy, build_proxy
from repro.xmlx import NS, QName

UVA = NS.UVACG


@WSRFPortType(
    GetResourcePropertyPortType,
    GetMultipleResourcePropertiesPortType,
    QueryResourcePropertiesPortType,
    ImmediateResourceTerminationPortType,
    ScheduledResourceTerminationPortType,
)
class Thermostat(ServiceSkeleton):
    setpoint = Resource(default=20.0)

    @ResourceProperty
    @property
    def Setpoint(self) -> float:
        return self.setpoint

    @WebMethod(requires_resource=False)
    def Create(self):
        return self.epr_for(self.create_resource())

    @WebMethod
    def Adjust(self, delta: float) -> float:
        self.setpoint = self.setpoint + delta
        return self.setpoint


@pytest.fixture()
def fabric():
    env = Environment()
    net = Network(env)
    machine = Machine(net, "server")
    wrapper = deploy(Thermostat, machine, "Thermo")
    net.add_host("client")
    client = WsrfClient(net, "client")
    wsdl = generate_wsdl(wrapper)
    return env, wrapper, client, wsdl


def run(env, gen):
    proc = env.process(gen)
    env.run(until=proc)
    return proc.value


class TestProxy:
    def test_author_method_call(self, fabric):
        env, wrapper, client, wsdl = fabric
        epr = run(env, client.call(wrapper.service_epr(), UVA, "Create"))
        proxy = build_proxy(client, wsdl, epr)
        assert run(env, proxy.Adjust(delta=1.5)) == 21.5
        assert run(env, proxy.Adjust(delta=-0.5)) == 21.0

    def test_spec_operations_bound(self, fabric):
        env, wrapper, client, wsdl = fabric
        epr = run(env, client.call(wrapper.service_epr(), UVA, "Create"))
        proxy = build_proxy(client, wsdl, epr)
        assert run(env, proxy.GetResourceProperty(QName(UVA, "Setpoint"))) == 20.0
        hits = run(env, proxy.QueryResourceProperties("//Setpoint/text()"))
        assert hits == ["20.0"]
        new_time = run(env, proxy.SetTerminationTime(500.0))
        assert new_time == 500.0
        run(env, proxy.Destroy())
        with pytest.raises(ResourceUnknownFault):
            run(env, proxy.Adjust(delta=1.0))

    def test_factory_via_service_level_proxy(self, fabric):
        env, wrapper, client, wsdl = fabric
        service_proxy = build_proxy(client, wsdl, wrapper.service_epr())
        epr = run(env, service_proxy.Create())
        resource_proxy = service_proxy.at(epr)
        assert run(env, resource_proxy.Adjust(delta=2.0)) == 22.0
        assert resource_proxy.epr == epr

    def test_unknown_operation_rejected_client_side(self, fabric):
        env, wrapper, client, wsdl = fabric
        proxy = build_proxy(client, wsdl, wrapper.service_epr())
        with pytest.raises(AttributeError, match="no operation 'Melt'"):
            proxy.Melt

    def test_advertised_rps_listed(self, fabric):
        env, wrapper, client, wsdl = fabric
        proxy = build_proxy(client, wsdl, wrapper.service_epr())
        assert QName(UVA, "Setpoint") in proxy.advertised_resource_properties

    def test_operations_enumeration(self, fabric):
        env, wrapper, client, wsdl = fabric
        proxy = build_proxy(client, wsdl, wrapper.service_epr())
        ops = proxy.operations()
        assert "Adjust" in ops and "GetResourceProperty" in ops and "Destroy" in ops

    def test_repr(self, fabric):
        env, wrapper, client, wsdl = fabric
        proxy = build_proxy(client, wsdl, wrapper.service_epr())
        assert "ServiceProxy" in repr(proxy)
