"""Application-level WS-ResourceLifetime: cleaning up job directories.

WSRF's scheduled destruction exists exactly for this: working
directories outlive their jobs so clients can fetch outputs, then get
reaped without further interaction.  The client sets a termination time
on each directory WS-Resource; the FSS's lifetime sweeper destroys the
resource when it expires and (via the author destroy hook we add here in
the test's subclass-free form) the files with it.
"""

import pytest

from repro.gridapp import FileRef, JobSpec, Testbed
from repro.gridapp.execution_service import parse_job_event
from repro.osim.programs import make_compute_program
from repro.wsrf.basefaults import ResourceUnknownFault
from repro.wsrf.lifetime import TERMINATION_TIME_RP
from repro.xmlx import NS

UVA = NS.UVACG


@pytest.fixture()
def testbed():
    tb = Testbed(n_machines=2, seed=17)
    tb.programs.register(make_compute_program("tiny", 0.5, outputs={"out": b"r"}))
    # Start lifetime sweepers on every FSS (deployment-time decision).
    for fss in tb.fss.values():
        fss.start_sweeper(period=1.0)
    return tb


def _run_one(tb, client):
    spec = client.new_job_set()
    exe = client.add_program_binary(tb.programs.get("tiny"))
    spec.add(JobSpec(name="j1", executable=FileRef(exe, "job.exe"), outputs=["out"]))
    outcome, jobset_epr, topic = tb.run_job_set(client, spec)
    assert outcome == "completed"
    tb.settle(2.0)
    dir_epr = next(
        parse_job_event(n.payload)["dir_epr"]
        for n in client.listener.received
        if parse_job_event(n.payload).get("kind") == "JobCreated"
    )
    return dir_epr


class TestDirectoryLifetime:
    def test_scheduled_cleanup_after_fetch(self, testbed):
        client = testbed.make_client()
        dir_epr = _run_one(testbed, client)

        def scenario():
            # Fetch the result, then give the directory 10 more seconds.
            content = yield from client.fetch_output(dir_epr, "out")
            assert content.to_bytes() == b"r"
            new_time = yield from client.soap.set_termination_time(
                dir_epr, testbed.env.now + 10.0
            )
            assert new_time == pytest.approx(testbed.env.now + 10.0, abs=0.1)
            # Still accessible before expiry...
            names = yield from client.list_output_dir(dir_epr)
            assert "out" in names
            yield testbed.env.timeout(15.0)
            return "done"

        testbed.run(scenario())
        # ...gone after: the WS-Resource no longer resolves.
        with pytest.raises(ResourceUnknownFault):
            testbed.run(client.list_output_dir(dir_epr))

    def test_unreaped_directory_survives(self, testbed):
        client = testbed.make_client()
        dir_epr = _run_one(testbed, client)
        testbed.settle(60.0)  # no termination time was ever set
        names = testbed.run(client.list_output_dir(dir_epr))
        assert "out" in names

    def test_termination_time_visible_as_rp(self, testbed):
        client = testbed.make_client()
        dir_epr = _run_one(testbed, client)

        def scenario():
            yield from client.soap.set_termination_time(dir_epr, 1000.0)
            when = yield from client.soap.get_resource_property(
                dir_epr, TERMINATION_TIME_RP
            )
            return when

        assert testbed.run(scenario()) == 1000.0

    def test_immediate_destroy_also_works(self, testbed):
        client = testbed.make_client()
        dir_epr = _run_one(testbed, client)
        testbed.run(client.soap.destroy(dir_epr))
        with pytest.raises(ResourceUnknownFault):
            testbed.run(client.list_output_dir(dir_epr))


class TestMultiClientSoak:
    """Several scientists sharing the grid concurrently — the workload
    the campus grid exists for.  Exercises lock serialization, broker
    fan-out, NIS feedback and cross-client isolation all at once."""

    def test_three_clients_six_jobsets(self, testbed):
        tb = testbed
        clients = [tb.make_client() for _ in range(3)]
        results = []

        def one_client(client, n_sets):
            outcomes = []
            for _ in range(n_sets):
                spec = client.new_job_set()
                exe = client.add_program_binary(tb.programs.get("tiny"))
                spec.add(JobSpec(name="solo", executable=FileRef(exe, "job.exe"),
                                 outputs=["out"]))
                outcome, _, topic = yield from client.run_job_set(spec)
                outcomes.append((topic, outcome))
            results.append(outcomes)

        procs = [tb.env.process(one_client(c, 2)) for c in clients]
        for proc in procs:
            tb.env.run(until=proc)
        assert len(results) == 3
        all_topics = [t for outcomes in results for t, _ in outcomes]
        assert len(set(all_topics)) == 6  # every job set got its own topic
        assert all(o == "completed" for outcomes in results for _, o in outcomes)

    def test_clients_only_see_their_own_topics(self, testbed):
        tb = testbed
        alice, bob = tb.make_client(), tb.make_client()

        def submit(client):
            spec = client.new_job_set()
            exe = client.add_program_binary(tb.programs.get("tiny"))
            spec.add(JobSpec(name="solo", executable=FileRef(exe, "job.exe")))
            return client.run_job_set(spec)

        pa = tb.env.process(submit(alice))
        pb = tb.env.process(submit(bob))
        tb.env.run(until=pa)
        tb.env.run(until=pb)
        tb.settle()
        _, _, topic_a = pa.value
        _, _, topic_b = pb.value
        assert topic_a != topic_b
        assert all(n.topic.startswith(topic_a) for n in alice.listener.received)
        assert all(n.topic.startswith(topic_b) for n in bob.listener.received)
