"""Tier-2 wsrfcheck: the runtime happens-before + lockset sanitizer.

Proof layers:

- **Clean suites**: the Fig. 3 listener run, a 20%-drop chaos run and a
  host-bounce restart run all execute sanitized with zero reports — and
  byte-identical traces/obs exports to the unsanitized control, so the
  hooks observe without perturbing (the ``env.prof`` contract).
- **Both tiers catch the same bug**: the deliberately-racy LOCK001
  fixture (``tests/analysis_fixtures/races.py``) is flagged statically
  by LOCK001 *and*, when driven live against a deployed wrapper, by the
  dynamic lockset; its lock-taking twin is clean both ways.
- **The other two checkers**: a lock-order inversion that never
  deadlocks in this schedule is still reported from its acquisition
  edges; a genuinely reentrant dispatch is named while the run hangs.
- **Happens-before mechanics**: spawn edges order a parent's writes
  before its child's; unrelated processes racing on a bare store row
  are reported.
"""

import sys

import pytest

from repro.analysis import analyze_paths
from repro.analysis.sanitizer import RaceSanitizer
from repro.db import BlobResourceStore
from repro.gridapp import FaultToleranceConfig, FileRef, JobSpec, Testbed
from repro.net import Network, RetryPolicy
from repro.osim import Machine, MachineParams
from repro.osim.programs import make_compute_program
from repro.sim import Environment
from repro.sim.sync import Lock
from repro.soap import SoapEnvelope
from repro.wsa import AddressingHeaders
from repro.wsrf import Resource, ServiceSkeleton, WebMethod, WsrfClient, deploy
from repro.xmlx import NS, Element, QName

from tests.test_analysis import FIXTURES, REPO_ROOT

sys.path.insert(0, str(FIXTURES.parent))
from analysis_fixtures.races import (  # noqa: E402
    start_safe_sweeper,
    start_unsafe_sweeper,
)

UVA = NS.UVACG
PAYLOAD = b"sanitizer payload"

POLICY = RetryPolicy(
    max_attempts=8, base_delay_s=0.5, backoff_factor=2.0,
    max_delay_s=3.0, timeout_s=30.0,
)
FT = FaultToleranceConfig(watchdog_period=5.0, stuck_after=20.0)


def _trace(tb):
    return [(e.at, e.step, e.actor, e.detail) for e in tb.trace.events]


def _fig3(sanitize, **kwargs):
    tb = Testbed(n_machines=4, seed=11, sanitize=sanitize, **kwargs)
    tb.programs.register(
        make_compute_program("work", 2.0, outputs={"out.dat": PAYLOAD})
    )
    client = tb.make_client()
    spec = client.new_job_set()
    exe = client.add_program_binary(tb.programs.get("work"))
    for i in range(4):
        spec.add(JobSpec(name=f"j{i}", executable=FileRef(exe, "job.exe")))
    outcome, _, _ = tb.run_job_set(client, spec)
    tb.settle()
    return tb, outcome


def _polled(sanitize, *, drop=0.0, bounce=None):
    tb = Testbed(
        n_machines=4, seed=11, machine_speeds=[1.0] * 4,
        retry_policy=POLICY, fault_tolerance=FT, broker_redelivery=POLICY,
        sanitize=sanitize,
    )
    if drop:
        tb.network.inject_faults(drop_probability=drop, seed=3)
    if bounce is not None:
        host, at = bounce
        tb.restart_host(host, at=at, down_for=3.0)
    tb.programs.register(
        make_compute_program("work", 2.0, outputs={"out.dat": PAYLOAD})
    )
    client = tb.make_client()
    spec = client.new_job_set()
    exe = client.add_program_binary(tb.programs.get("work"))
    for i in range(6):
        spec.add(JobSpec(name=f"job{i:02d}", executable=FileRef(exe, "job.exe")))
    outcome, _, _ = tb.run(
        client.run_job_set_polled(spec, period=3.0, give_up_after=2000.0)
    )
    tb.settle()
    return tb, outcome


class TestCleanSuites:
    """The shipped grid races nowhere the sanitizer can see."""

    def test_fig3_clean_with_identical_trace_and_obs(self):
        tb_off, out_off = _fig3(False, observability=True)
        tb_on, out_on = _fig3(True, observability=True)
        assert out_off == out_on == "completed"
        assert tb_off.san is None
        assert tb_on.san.accesses_checked > 0
        tb_on.san.assert_clean()
        # Observation only: the sanitized run is indistinguishable.
        assert _trace(tb_off) == _trace(tb_on)
        assert tb_off.obs.export_json() == tb_on.obs.export_json()

    def test_chaos_run_clean(self):
        tb_off, out_off = _polled(False, drop=0.2)
        tb_on, out_on = _polled(True, drop=0.2)
        assert out_off == out_on == "completed"
        assert tb_on.network.stats.drops > 0
        tb_on.san.assert_clean()
        assert _trace(tb_off) == _trace(tb_on)

    def test_restart_run_clean(self):
        """Bouncing the central host exercises the recovery barrier:
        wsrf_recover's writes and post-restart dispatches must not be
        reported against the dead boot's accesses."""
        tb_off, out_off = _polled(False, bounce=("uvacg-central", 6.0))
        tb_on, out_on = _polled(True, bounce=("uvacg-central", 6.0))
        assert out_off == out_on == "completed"
        assert tb_on.scheduler.restarts == 1
        tb_on.san.assert_clean()
        assert _trace(tb_off) == _trace(tb_on)

    def test_federated_fig3_clean(self):
        """A federated Fig. 3 run — aggregator refreshes, cross-zone
        dispatch and the broker uplink included — is sanitizer-clean,
        and the hooks stay observation-only (identical trace/export).
        The aggregator's read-refresh-serve cycle is the path at risk:
        it rewrites entry rows outside a requires_resource dispatch,
        which is exactly the shape the lockset checker flags unless the
        entry's own resource lock is held (as NIS ReportUtilization
        does)."""
        from repro.gridapp import FederationConfig

        def _run(sanitize):
            tb = Testbed(
                n_machines=2, seed=11, sanitize=sanitize, observability=True,
                federation=FederationConfig(
                    n_zones=2, max_queued_per_machine=1, staleness_s=0.0,
                ),
            )
            tb.programs.register(
                make_compute_program("work", 2.0, outputs={"out.dat": PAYLOAD})
            )
            fed = tb.make_federated_client()
            spec = fed.new_job_set()
            exe = fed.add_program_binary(tb.programs.get("work"))
            for i in range(4):
                spec.add(JobSpec(name=f"j{i}", executable=FileRef(exe, "job.exe")))
            outcome, _, _ = tb.run(
                fed.run_job_set_polled(spec, give_up_after=600.0)
            )
            tb.settle()
            return tb, outcome

        tb_off, out_off = _run(False)
        tb_on, out_on = _run(True)
        assert out_off == out_on == "completed"
        # staleness_s=0 forces a NIS re-fetch + entry rewrite on every
        # aggregator read; the tight queue cap forces aggregator reads.
        assert tb_on.aggregator.catalog_refreshes > 0
        crossed = sum(
            getattr(z.scheduler, "cross_zone_dispatches", 0)
            for z in tb_on.zones
        )
        assert crossed > 0
        assert tb_on.san.accesses_checked > 0
        tb_on.san.assert_clean()
        assert _trace(tb_off) == _trace(tb_on)
        assert tb_off.obs.export_json() == tb_on.obs.export_json()


# -- the racy fixture, caught by both tiers ----------------------------------------


class CounterService(ServiceSkeleton):
    count = Resource(default=0)

    @WebMethod(requires_resource=False)
    def Create(self):
        return self.epr_for(self.create_resource())

    @WebMethod
    def Bump(self) -> int:
        self.count = self.count + 1
        return self.count


def _counter_fabric():
    env = Environment()
    san = RaceSanitizer(env)
    net = Network(env)
    machine = Machine(net, "server", params=MachineParams(db_access_s=0.01))
    wrapper = deploy(CounterService, machine, "Counter")
    net.add_host("client")
    client = WsrfClient(net, "client")
    return env, san, wrapper, client


def _drive_sweeper(start_sweeper):
    """One resource, locked Bump dispatches every 0.7 s, plus the
    fixture's background sweeper rewriting every row each second."""
    env, san, wrapper, client = _counter_fabric()
    proc = env.process(client.call(wrapper.service_epr(), UVA, "Create"))
    env.run(until=proc)
    epr = proc.value
    start_sweeper(env, wrapper)

    def traffic(env):
        for _ in range(5):
            yield env.timeout(0.7)
            yield from client.call(epr, UVA, "Bump")

    tproc = env.process(traffic(env))
    env.run(until=tproc)
    env.run(until=env.now + 1.0)
    return san


class TestRacyFixtureBothTiers:
    def test_static_tier_flags_unsafe_sweeper(self):
        report = analyze_paths(
            [str(FIXTURES / "races.py")], rules=["LOCK001"], root=REPO_ROOT
        )
        symbols = {f.symbol for f in report.findings}
        assert any(s.startswith("start_unsafe_sweeper") for s in symbols)
        assert not any(s.startswith("start_safe_sweeper") for s in symbols)

    def test_dynamic_tier_flags_unsafe_sweeper_live(self):
        san = _drive_sweeper(start_unsafe_sweeper)
        races = [r for r in san.reports if r.kind == "data-race"]
        assert races, "the unlocked sweeper must race the locked dispatch"
        assert "sweeper" in races[0].detail
        assert "Counter" in races[0].key
        with pytest.raises(AssertionError, match="data-race"):
            san.assert_clean()

    def test_dynamic_tier_clean_on_safe_sweeper(self):
        san = _drive_sweeper(start_safe_sweeper)
        assert san.accesses_checked > 0
        san.assert_clean()
        assert san.summary() == {}


# -- lock-order inversion -----------------------------------------------------------


class TestLockOrderInversion:
    def _nested(self, env, first, second, delay):
        def holder(env):
            yield env.timeout(delay)
            yield first.acquire()
            yield second.acquire()
            yield env.timeout(0.1)
            second.release()
            first.release()

        return env.process(holder(env))

    def test_opposite_orders_reported_without_deadlocking(self):
        """A→B at t=0 and B→A at t=1 never contend in this schedule;
        the edge cycle is still a latent deadlock and is reported."""
        env = Environment()
        san = RaceSanitizer(env)
        a, b = Lock(env), Lock(env)
        san.label_lock(a, "A")
        san.label_lock(b, "B")
        self._nested(env, a, b, 0.0)
        self._nested(env, b, a, 1.0)
        env.run()
        kinds = san.summary()
        assert kinds == {"lock-order-inversion": 1}
        assert "A" in san.reports[0].key and "B" in san.reports[0].key

    def test_consistent_order_clean(self):
        env = Environment()
        san = RaceSanitizer(env)
        a, b = Lock(env), Lock(env)
        self._nested(env, a, b, 0.0)
        self._nested(env, a, b, 1.0)
        env.run()
        san.assert_clean()


# -- dispatch reentrancy ------------------------------------------------------------


class NesterService(ServiceSkeleton):
    count = Resource(default=0)

    @WebMethod(requires_resource=False)
    def Create(self):
        return self.epr_for(self.create_resource())

    @WebMethod
    def Touch(self) -> str:
        return "ok"

    @WebMethod
    def Recurse(self):
        # Re-dispatch Touch against our own resource from inside its
        # dispatch: the non-reentrant resource mutex deadlocks here.
        wrapper = self.wsrf.wrapper
        envelope = SoapEnvelope(
            AddressingHeaders(to_epr=self.wsrf.my_epr(), action=f"{UVA}/Touch"),
            Element(QName(UVA, "Touch")),
        )
        result = yield from wrapper._dispatch(
            envelope, self.wsrf.resource_id, None
        )
        return result


class TestDispatchReentrancy:
    def test_reentrant_dispatch_named_while_run_hangs(self):
        env = Environment()
        san = RaceSanitizer(env)
        net = Network(env)
        machine = Machine(net, "server", params=MachineParams(db_access_s=0.01))
        wrapper = deploy(NesterService, machine, "Nester")
        net.add_host("client")
        client = WsrfClient(net, "client")
        proc = env.process(client.call(wrapper.service_epr(), UVA, "Create"))
        env.run(until=proc)
        env.process(client.call(proc.value, UVA, "Recurse"))
        env.run(until=10.0)  # the inner acquire never returns
        assert san.summary() == {"dispatch-reentrancy": 1}
        report = san.reports[0]
        assert "Nester" in report.key
        assert "deadlocks" in report.detail


# -- happens-before mechanics -------------------------------------------------------


class TestHappensBefore:
    def _bare(self):
        env = Environment()
        san = RaceSanitizer(env)
        store = BlobResourceStore()
        san.instrument_store(store, owner="m")
        store.create("S", "row", {})
        return env, san, store

    def test_spawn_edge_orders_parent_before_child(self):
        env, san, store = self._bare()

        def child(env):
            yield env.timeout(0.5)
            store.save("S", "row", {"by": "child"})

        def parent(env):
            yield env.timeout(1.0)
            store.save("S", "row", {"by": "parent"})
            env.process(child(env))

        env.process(parent(env))
        env.run()
        san.assert_clean()

    def test_unrelated_writers_race(self):
        env, san, store = self._bare()

        def writer(env, who, delay):
            yield env.timeout(delay)
            store.save("S", "row", {"by": who})

        env.process(writer(env, "one", 1.0))
        env.process(writer(env, "two", 2.0))
        env.run()
        assert san.summary() == {"data-race": 1}
        assert san.reports[0].key == "m:S/row"

    def test_common_lock_serializes_writers(self):
        env, san, store = self._bare()
        lock = Lock(env)

        def writer(env, who, delay):
            yield env.timeout(delay)
            yield lock.acquire()
            try:
                store.save("S", "row", {"by": who})
            finally:
                lock.release()

        env.process(writer(env, "one", 1.0))
        env.process(writer(env, "two", 2.0))
        env.run()
        san.assert_clean()

    def test_setup_writes_precede_the_run(self):
        """Top-level writes between runs are a barrier: every process
        in the next run is ordered after them (no false positives from
        testbed assembly)."""
        env, san, store = self._bare()
        store.save("S", "row", {"by": "setup"})

        def writer(env):
            yield env.timeout(1.0)
            store.save("S", "row", {"by": "proc"})

        env.process(writer(env))
        env.run()
        san.assert_clean()

    def test_sanitize_off_is_absent(self):
        env = Environment()
        assert env.san is None
        tb = Testbed(n_machines=1, seed=11)
        assert tb.san is None and tb.env.san is None

    def test_assert_clean_lists_every_report(self):
        env, san, store = self._bare()

        def writer(env, who, delay):
            yield env.timeout(delay)
            store.save("S", "row", {"by": who})

        for i, delay in enumerate([1.0, 2.0, 3.0]):
            env.process(writer(env, f"w{i}", delay))
        env.run()
        with pytest.raises(AssertionError) as err:
            san.assert_clean()
        assert str(len(san.reports)) in str(err.value)
