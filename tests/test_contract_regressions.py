"""Regression tests for the contract bugs wsrfcheck surfaced.

``python -m repro.analysis`` (the wsrfcheck linter) flagged four real
defects on its first run over ``src/repro``; each test here pins the
fix so the bug stays fixed even if the rule is later tuned:

- WSRF001: ``ReportUtilization`` was invoked one-way by the Processor
  Utilization service but not declared ``one_way=True``, so the WSDL
  advertised a request/response operation whose response every caller
  silently discarded.
- WSRF003: the GT4 Execution Service raised plain ``SecurityError``
  (not a ``BaseFault``), turning authentication failures into untyped
  ``soap:Server`` strings clients could not reconstruct.
- SIM002 (x2): the lifetime sweeper and the notification producer's
  redelivery process both destroyed WS-Resources without taking the
  per-resource lock, racing in-flight load-modify-save handlers.
"""

import pytest

from repro.gridapp.node_info import NodeInfoService
from repro.gt4 import LinuxMachine
from repro.net import Network, RetryPolicy
from repro.osim import Machine, MachineParams
from repro.sim import Environment
from repro.wsn import (
    NotificationListener,
    NotificationProducerPortType,
    SubscriptionManagerPortType,
    attach_notification_producer,
)
from repro.wsrf import (
    AuthenticationFault,
    Resource,
    ServiceSkeleton,
    WebMethod,
    WSRFPortType,
    WsrfClient,
    deploy,
    generate_wsdl,
)
from repro.xmlx import NS, QName

UVA = NS.UVACG
RESOURCE_ID = QName(UVA, "ResourceID")


def run(env, gen):
    proc = env.process(gen)
    env.run(until=proc)
    return proc.value


# -- WSRF001: ReportUtilization one-way drift ---------------------------------------


class TestReportUtilizationOneWay:
    def test_declared_one_way(self):
        meta = NodeInfoService.ReportUtilization.__web_method__
        assert meta["one_way"] is True

    def test_wsdl_has_no_output_message(self):
        env = Environment()
        net = Network(env)
        machine = Machine(net, "central", params=MachineParams())
        wrapper = deploy(NodeInfoService, machine, "NodeInfo")
        doc = generate_wsdl(wrapper)
        ops = {
            op.get("name"): op
            for pt in doc.findall(QName(NS.WSDL, "portType"))
            for op in pt.findall(QName(NS.WSDL, "operation"))
        }
        assert "ReportUtilization" in ops
        assert ops["ReportUtilization"].find(QName(NS.WSDL, "output")) is None
        # Sibling request/response op keeps its output message.
        assert ops["GetProcessors"].find(QName(NS.WSDL, "output")) is not None


# -- WSRF003: GT4 authentication failures must be typed faults ----------------------


class TestGt4AuthenticationFault:
    def _grid(self):
        env = Environment()
        net = Network(env)
        machine = LinuxMachine(net, "linux-a")
        from repro.gt4.execution import Gt4ExecutionService

        wrapper = deploy(Gt4ExecutionService, machine, "Execution")
        net.add_host("client")
        client = WsrfClient(net, "client")
        return env, machine, wrapper, client

    def test_missing_security_header_is_reconstructible_fault(self):
        env, machine, wrapper, client = self._grid()
        run_args = {
            "job_name": "j1",
            "executable": "job.exe",
            "files": [],
            "topic": "js/j1",
        }
        with pytest.raises(AuthenticationFault, match="wsse:Security"):
            run(env, client.call(wrapper.service_epr(), UVA, "Run", run_args))

    def test_fault_carries_timestamp_and_description(self):
        env, machine, wrapper, client = self._grid()
        try:
            run(
                env,
                client.call(
                    wrapper.service_epr(),
                    UVA,
                    "Run",
                    {"job_name": "j", "executable": "e", "files": [], "topic": "t"},
                ),
            )
        except AuthenticationFault as fault:
            assert "wsse:Security" in fault.description
        else:
            pytest.fail("expected AuthenticationFault")


# -- SIM002: destroys must hold the per-resource lock -------------------------------


@WSRFPortType(NotificationProducerPortType, SubscriptionManagerPortType)
class TinyServ(ServiceSkeleton):
    data = Resource(default=0)

    @WebMethod(requires_resource=False)
    def Create(self):
        return self.epr_for(self.create_resource(data=1))


class TestSweeperHoldsResourceLock:
    def test_expiry_waits_for_lock_holder(self):
        env = Environment()
        net = Network(env)
        machine = Machine(net, "node1", params=MachineParams())
        wrapper = deploy(TinyServ, machine, "Tiny")
        net.add_host("client")
        client = WsrfClient(net, "client")

        epr = run(env, client.call(wrapper.service_epr(), UVA, "Create"))
        rid = epr.get(RESOURCE_ID)
        wrapper.set_termination_time(rid, env.now + 1.0)
        wrapper.start_sweeper(period=0.5)

        lock = wrapper.resource_lock(rid)
        lock.acquire()  # an in-flight handler owns the resource
        env.run(until=env.now + 3.0)  # well past the termination time
        assert wrapper.store.exists(wrapper.service_name, rid), (
            "sweeper destroyed the resource out from under the lock holder"
        )

        lock.release()
        env.run(until=env.now + 2.0)
        assert not wrapper.store.exists(wrapper.service_name, rid)


class TestRedeliveryDropHoldsResourceLock:
    def test_subscription_destroy_waits_for_lock_holder(self):
        env = Environment()
        net = Network(env)
        machine = Machine(net, "producer-node", params=MachineParams())
        wrapper = deploy(TinyServ, machine, "Tiny")
        producer = attach_notification_producer(wrapper)
        producer.redelivery_policy = RetryPolicy(
            max_attempts=2, base_delay_s=0.2, backoff_factor=1.0,
            max_delay_s=0.2, jitter=0.0,
        )
        net.add_host("watcher")
        listener = NotificationListener(net, "watcher")
        net.add_host("client")
        client = WsrfClient(net, "client")

        sub_epr = run(
            env, client.subscribe(wrapper.service_epr(), listener.epr, "t/e")
        )
        sub_rid = sub_epr.get(RESOURCE_ID)
        net.host("watcher").down = True

        lock = wrapper.resource_lock(sub_rid)
        lock.acquire()  # e.g. an Unsubscribe handler mid load-modify-save
        from repro.xmlx import Element

        wrapper.publish("t/e", Element(QName(UVA, "E"), text="x"))
        env.run()  # drain: redelivery exhausts, drop path blocks on the lock
        assert sub_rid in producer.subscriptions
        assert wrapper.store.exists(wrapper.service_name, sub_rid), (
            "redelivery drop destroyed the subscription under the lock holder"
        )

        lock.release()
        env.run()
        assert not wrapper.store.exists(wrapper.service_name, sub_rid)
