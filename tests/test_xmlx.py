"""Unit and property tests for the XML infoset."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.xmlx import (
    NS,
    Element,
    QName,
    XmlParseError,
    XPathError,
    parse,
    to_string,
    xpath_select,
)


class TestQName:
    def test_two_arg_form(self):
        q = QName("http://ns", "local")
        assert q.uri == "http://ns" and q.local == "local"

    def test_clark_notation(self):
        q = QName("{http://ns}local")
        assert q.uri == "http://ns" and q.local == "local"
        assert q.clark() == "{http://ns}local"

    def test_unqualified(self):
        q = QName("plain")
        assert q.uri == "" and q.local == "plain"
        assert q.clark() == "plain"

    def test_equality_and_hash(self):
        assert QName("http://a", "x") == QName("{http://a}x")
        assert hash(QName("http://a", "x")) == hash(QName("{http://a}x"))
        assert QName("http://a", "x") != QName("http://b", "x")

    def test_string_comparison(self):
        assert QName("http://a", "x") == "{http://a}x"

    def test_immutable(self):
        q = QName("a")
        with pytest.raises(AttributeError):
            q.local = "b"

    def test_empty_local_rejected(self):
        with pytest.raises(ValueError):
            QName("http://ns", "")

    def test_malformed_clark_rejected(self):
        with pytest.raises(ValueError):
            QName("{unclosed")


class TestElement:
    def test_subelement_builder(self):
        root = Element("root")
        child = root.subelement("{http://ns}child", text="hi")
        assert root.find(QName("http://ns", "child")) is child
        assert child.text == "hi"

    def test_find_returns_first(self):
        root = Element("r")
        a1 = root.subelement("a", text="1")
        root.subelement("a", text="2")
        assert root.find("a") is a1
        assert [e.text for e in root.findall("a")] == ["1", "2"]

    def test_require_raises_on_missing(self):
        root = Element("r")
        with pytest.raises(KeyError):
            root.require("missing")

    def test_attributes(self):
        el = Element("e", attrib={"a": "1", QName("http://ns", "b"): "2"})
        assert el.get("a") == "1"
        assert el.get(QName("http://ns", "b")) == "2"
        assert el.get("zzz") is None
        el.set("c", 3)
        assert el.get("c") == "3"

    def test_iter_depth_first(self):
        root = Element("r")
        a = root.subelement("a")
        a.subelement("b")
        root.subelement("b")
        tags = [e.tag.local for e in root.iter()]
        assert tags == ["r", "a", "b", "b"]
        assert len(list(root.iter("b"))) == 2

    def test_full_text_includes_tails(self):
        root = parse("<r>one<c>two</c>three</r>")
        assert root.full_text() == "onetwothree"

    def test_copy_is_deep(self):
        root = Element("r")
        root.subelement("a", text="x")
        clone = root.copy()
        clone.children[0].text = "changed"
        assert root.children[0].text == "x"
        assert root.equals(root.copy())

    def test_equals_structural(self):
        a = parse("<r x='1'><c>t</c></r>")
        b = parse('<r x="1"><c>t</c></r>')
        c = parse("<r x='2'><c>t</c></r>")
        assert a.equals(b)
        assert not a.equals(c)

    def test_append_type_checked(self):
        with pytest.raises(TypeError):
            Element("r").append("not an element")

    def test_child_text(self):
        root = parse("<r><name>fred</name></r>")
        assert root.child_text("name") == "fred"
        assert root.child_text("missing", "dflt") == "dflt"

    def test_size_bytes_positive(self):
        assert Element("r").size_bytes() > 0


class TestWriterParser:
    def test_roundtrip_simple(self):
        root = Element(QName(NS.SOAP, "Envelope"))
        body = root.subelement(QName(NS.SOAP, "Body"))
        body.subelement(QName(NS.UVACG, "Run"), text="job-1")
        text = to_string(root)
        again = parse(text)
        assert again.equals(root)

    def test_preferred_prefixes_used(self):
        root = Element(QName(NS.SOAP, "Envelope"))
        text = to_string(root)
        assert "soap:Envelope" in text and f'xmlns:soap="{NS.SOAP}"' in text

    def test_escaping(self):
        root = Element("r", text='<&">')
        root.set("a", 'va"l<')
        again = parse(to_string(root))
        assert again.text == '<&">'
        assert again.get("a") == 'va"l<'

    def test_xml_declaration(self):
        text = to_string(Element("r"), xml_declaration=True)
        assert text.startswith("<?xml")

    def test_parse_namespaces_default_and_prefixed(self):
        text = (
            '<root xmlns="http://d" xmlns:p="http://p">'
            '<child p:attr="v"/><p:other/></root>'
        )
        root = parse(text)
        assert root.tag == QName("http://d", "root")
        child = root.children[0]
        assert child.tag == QName("http://d", "child")
        assert child.get(QName("http://p", "attr")) == "v"
        assert root.children[1].tag == QName("http://p", "other")

    def test_unprefixed_attribute_has_no_namespace(self):
        root = parse('<r xmlns="http://d" a="1"/>')
        assert root.get(QName("", "a")) == "1"

    def test_nested_scope_override(self):
        root = parse('<r xmlns="http://a"><c xmlns="http://b"><d/></c></r>')
        assert root.children[0].children[0].tag.uri == "http://b"

    def test_entities_and_charrefs(self):
        root = parse("<r>&lt;&amp;&gt;&#65;&#x42;</r>")
        assert root.text == "<&>AB"

    def test_cdata(self):
        root = parse("<r><![CDATA[<not-parsed/>]]></r>")
        assert root.text == "<not-parsed/>"

    def test_comments_and_pis_ignored(self):
        root = parse("<?xml version='1.0'?><!-- c --><r><!-- x -->t<?pi d?></r>")
        assert root.text == "t"

    def test_unbound_prefix_rejected(self):
        with pytest.raises(XmlParseError):
            parse("<p:r/>")

    def test_mismatched_end_tag_rejected(self):
        with pytest.raises(XmlParseError, match="mismatched"):
            parse("<a><b></a></b>")

    def test_unterminated_rejected(self):
        with pytest.raises(XmlParseError):
            parse("<a><b></b>")

    def test_duplicate_attribute_rejected(self):
        with pytest.raises(XmlParseError, match="duplicate"):
            parse('<a xmlns:p="http://x" p:z="1" p:z="2"/>')

    def test_doctype_rejected(self):
        with pytest.raises(XmlParseError, match="DTD"):
            parse("<!DOCTYPE foo><foo/>")

    def test_trailing_content_rejected(self):
        with pytest.raises(XmlParseError, match="after document root"):
            parse("<a/><b/>")

    def test_unknown_entity_rejected(self):
        with pytest.raises(XmlParseError, match="unknown entity"):
            parse("<a>&bogus;</a>")


_local_names = st.text(
    alphabet=st.sampled_from("abcdefghijklmnop"), min_size=1, max_size=8
)
_texts = st.text(
    alphabet=st.sampled_from("abc <>&\"'\n\tzA1"), min_size=0, max_size=20
)


@st.composite
def _elements(draw, depth=0):
    tag = QName("http://t", draw(_local_names))
    el = Element(tag)
    el.text = draw(_texts)
    for name in draw(st.lists(_local_names, max_size=3, unique=True)):
        el.set(QName("http://a", name), draw(_texts))
    if depth < 3:
        for child in draw(st.lists(_elements(depth=depth + 1), max_size=3)):
            el.append(child)
            child.tail = draw(_texts)
    return el


class TestRoundtripProperties:
    @given(_elements())
    def test_write_parse_roundtrip(self, element):
        text = to_string(element)
        parsed = parse(text)
        # Root tails are not serialized; clear before comparing.
        element = element.copy()
        element.tail = ""
        assert parsed.equals(element)

    @given(_texts)
    def test_text_escaping_roundtrip(self, text):
        el = Element("r", text=text)
        assert parse(to_string(el)).text == text


class TestXPath:
    @pytest.fixture()
    def doc(self):
        return parse(
            """
            <props xmlns="http://rp" xmlns:j="http://jobs">
              <j:job id="1"><status>Running</status><cpu>2.5</cpu></j:job>
              <j:job id="2"><status>Exited</status><cpu>9.0</cpu></j:job>
              <j:job id="3"><status>Running</status><cpu>0.1</cpu></j:job>
              <owner>wasson</owner>
            </props>
            """
        )

    def test_child_path(self, doc):
        jobs = xpath_select(doc, "job")
        assert len(jobs) == 3

    def test_absolute_path(self, doc):
        owners = xpath_select(doc, "/props/owner/text()")
        assert owners == ["wasson"]

    def test_descendant_path(self, doc):
        statuses = xpath_select(doc, "//status/text()")
        assert statuses == ["Running", "Exited", "Running"]

    def test_prefixed_name_test(self, doc):
        jobs = xpath_select(doc, "j:job", namespaces={"j": "http://jobs"})
        assert len(jobs) == 3

    def test_unbound_prefix_raises(self, doc):
        with pytest.raises(XPathError):
            xpath_select(doc, "q:job")

    def test_attribute_step(self, doc):
        ids = xpath_select(doc, "job/@id")
        assert ids == ["1", "2", "3"]

    def test_positional_predicate(self, doc):
        second = xpath_select(doc, "job[2]/status/text()")
        assert second == ["Exited"]

    def test_equality_predicate_on_child(self, doc):
        running = xpath_select(doc, "job[status='Running']/@id")
        assert running == ["1", "3"]

    def test_equality_predicate_on_attr(self, doc):
        job = xpath_select(doc, "job[@id='2']/cpu/text()")
        assert job == ["9.0"]

    def test_existence_predicate(self, doc):
        assert len(xpath_select(doc, "job[status]")) == 3
        assert xpath_select(doc, "job[missing]") == []

    def test_wildcard(self, doc):
        assert len(xpath_select(doc, "*")) == 4

    def test_dot_equality_predicate(self, doc):
        assert xpath_select(doc, "owner[.='wasson']") != []
        assert xpath_select(doc, "owner[.='nobody']") == []

    def test_chained_predicates(self, doc):
        first_running = xpath_select(doc, "job[status='Running'][1]/@id")
        assert first_running == ["1"]

    def test_empty_expression_rejected(self, doc):
        with pytest.raises(XPathError):
            xpath_select(doc, "   ")

    def test_trailing_slash_rejected(self, doc):
        with pytest.raises(XPathError):
            xpath_select(doc, "job/")

    def test_root_name_mismatch_empty(self, doc):
        assert xpath_select(doc, "/other/owner") == []

    def test_descendant_absolute(self, doc):
        assert xpath_select(doc, "//cpu/text()") == ["2.5", "9.0", "0.1"]
